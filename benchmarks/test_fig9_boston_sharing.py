"""Fig. 9 — sharing dispatch CDFs on the Boston workload.

The Boston counterpart of Fig. 8; same expected ordering with smaller
absolute dissatisfaction values (compact service area).
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure


def test_fig9_boston_sharing(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.04), seed=2017, hours=(6.0, 12.0))
    result = benchmark.pedantic(lambda: run_figure("fig9", scale), rounds=1, iterations=1)
    figure_report_sink("fig9", result.report)

    summaries = result.summaries
    stable_worst_td = max(
        summaries[n]["mean_taxi_dissatisfaction"] for n in ("STD-P", "STD-T")
    )
    for baseline in ("RAII", "SARP"):
        assert stable_worst_td < summaries[baseline]["mean_taxi_dissatisfaction"]
    assert all(s["shared_ride_fraction"] > 0 for s in summaries.values())
