"""Fig. 6 — Boston non-sharing averages vs. number of taxis.

Sweeps paper-scale fleet sizes 100..300 and prints the three average
metrics per algorithm.  Expected shapes (paper Section VI-C): fewer
taxis → larger delays and higher passenger dissatisfaction for all
algorithms; NSTD-P/NSTD-T's taxi-dissatisfaction advantage grows as
taxis become scarce (drivers get to choose among many requests).
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure
from repro.experiments.figures import FIG6_TAXI_COUNTS


def test_fig6_fleet_size_sweep(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.04), seed=2017, hours=(7.0, 11.0))
    result = benchmark.pedantic(lambda: run_figure("fig6", scale), rounds=1, iterations=1)
    figure_report_sink("fig6", result.report)

    delays = result.series["mean_dispatch_delay_min"]
    for name, values in delays.items():
        assert len(values) == len(FIG6_TAXI_COUNTS)
        # Fig. 6(a): fewer taxis, larger average dispatch delay.
        assert values[-1] <= values[0] + 1e-6, name

    # Fig. 6(c): the stable dispatchers' taxi-side advantage holds at
    # every fleet size and is present at the scarcest one.
    td = result.series["mean_taxi_dissatisfaction"]
    for index in range(len(FIG6_TAXI_COUNTS)):
        stable = min(td["NSTD-P"][index], td["NSTD-T"][index])
        assert stable < td["Greedy"][index]
    assert min(td["NSTD-P"][0], td["NSTD-T"][0]) < td["MCBM"][0]
