"""Fig. 7 — Boston non-sharing averages across the clock.

Simulates a full Boston day and buckets the three metrics by hour of
request.  Expected shape (paper Section VI-C): pronounced stress around
the 9 am and 6 pm commute peaks — larger average dispatch delay and
higher passenger dissatisfaction when demand outruns the fleet.
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure


def test_fig7_clock_time_profile(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.04), seed=2017)
    result = benchmark.pedantic(lambda: run_figure("fig7", scale), rounds=1, iterations=1)
    figure_report_sink("fig7", result.report)

    delays = result.series["mean_dispatch_delay_min"]
    for name, by_hour in delays.items():
        assert len(by_hour) == 24
        # Rush-hour stress: the 8-10 am window must be slower than the
        # overnight trough (3-5 am) for every algorithm that serves both.
        morning = max(by_hour[8:11])
        night = min(by_hour[3:6])
        assert morning >= night, name
