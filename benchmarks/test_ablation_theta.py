"""Ablation: the sharing threshold θ.

The paper fixes θ = 5 km; this ablation sweeps θ and reports how the
feasible-group count, packed-ride fraction, and mean passenger
dissatisfaction respond.  Expected: larger θ admits more groups and
raises the shared fraction, trading passenger detour pain for fleet
capacity.
"""

import numpy as np

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.core import DispatchConfig, SimulationConfig
from repro.dispatch import std_p
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.packing import enumerate_feasible_groups
from repro.simulation import Simulator
from repro.trace import boston_profile

THETAS = (1.0, 2.5, 5.0, 10.0)


def run_theta_sweep():
    oracle = EuclideanDistance()
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_factor(0.02), seed=9, hours=(7.0, 10.0))
    fleet, requests = build_workload(profile, scale)
    scaled = profile.scaled(scale.factor)
    base_sim = city_simulation_config(scaled)
    space = scaled.space_scale
    rows = []
    for theta_paper_km in THETAS:
        theta = theta_paper_km * space  # paper-km -> scaled length units
        dispatch = DispatchConfig(
            alpha=1.0,
            beta=1.0,
            theta_km=theta,
            passenger_threshold_km=base_sim.dispatch.passenger_threshold_km,
            taxi_threshold_km=base_sim.dispatch.taxi_threshold_km,
        )
        sim_config = SimulationConfig(
            frame_length_s=base_sim.frame_length_s,
            taxi_speed_kmh=base_sim.taxi_speed_kmh,
            passenger_patience_s=base_sim.passenger_patience_s,
            horizon_s=base_sim.horizon_s,
            dispatch=dispatch,
        )
        # Feasible groups over one representative batch of 40 requests.
        batch = requests[:40]
        groups = enumerate_feasible_groups(
            batch, oracle, dispatch, pairing_radius_km=2.0 * theta
        )
        dispatcher = std_p(oracle, dispatch, pairing_radius_km=2.0 * theta)
        result = Simulator(dispatcher, oracle, sim_config).run(fleet, requests)
        summary = result.summary()
        rows.append(
            [
                theta_paper_km,
                len(groups),
                summary["shared_ride_fraction"],
                summary["mean_passenger_dissatisfaction"],
                summary["mean_taxi_dissatisfaction"],
            ]
        )
    return rows


def test_ablation_theta(benchmark, figure_report_sink):
    rows = benchmark.pedantic(run_theta_sweep, rounds=1, iterations=1)
    report = "== Ablation — sharing threshold theta (STD-P, Boston) ==\n" + format_table(
        ["theta_km", "feasible_groups", "shared_frac", "mean_pd", "mean_td"], rows
    )
    figure_report_sink("ablation_theta", report)
    group_counts = [row[1] for row in rows]
    # More permissive theta admits at least as many groups.
    assert all(a <= b for a, b in zip(group_counts, group_counts[1:]))
