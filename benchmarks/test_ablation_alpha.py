"""Ablation: the driver trade-off coefficient α.

α weighs the fare pay-off against the deadhead cost in the driver's
preference order (the paper fixes α = 1).  Expected: the *reported*
dissatisfaction value falls as α grows by construction; the interesting
signal is how the induced matching changes — larger α makes drivers
chase long fares, raising passenger pickup distances.
"""

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.core import DispatchConfig, SimulationConfig
from repro.dispatch import nstd_p
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace import boston_profile

ALPHAS = (0.0, 0.5, 1.0, 2.0)


def run_alpha_sweep():
    oracle = EuclideanDistance()
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_factor(0.04), seed=13, hours=(7.0, 10.0))
    fleet, requests = build_workload(profile, scale)
    base = city_simulation_config(profile.scaled(scale.factor))
    rows = []
    for alpha in ALPHAS:
        dispatch = DispatchConfig(
            alpha=alpha,
            beta=1.0,
            theta_km=base.dispatch.theta_km,
            passenger_threshold_km=base.dispatch.passenger_threshold_km,
            taxi_threshold_km=base.dispatch.taxi_threshold_km,
        )
        sim_config = SimulationConfig(
            frame_length_s=base.frame_length_s,
            taxi_speed_kmh=base.taxi_speed_kmh,
            passenger_patience_s=base.passenger_patience_s,
            horizon_s=base.horizon_s,
            dispatch=dispatch,
        )
        result = Simulator(nstd_p(oracle, dispatch), oracle, sim_config).run(fleet, requests)
        summary = result.summary()
        rows.append(
            [
                alpha,
                summary["service_rate"],
                summary["mean_dispatch_delay_min"],
                summary["mean_passenger_dissatisfaction"],
                summary["mean_taxi_dissatisfaction"],
            ]
        )
    return rows


def test_ablation_alpha(benchmark, figure_report_sink):
    rows = benchmark.pedantic(run_alpha_sweep, rounds=1, iterations=1)
    report = "== Ablation — driver coefficient alpha (NSTD-P, Boston) ==\n" + format_table(
        ["alpha", "service_rate", "mean_delay_min", "mean_pd", "mean_td"], rows
    )
    figure_report_sink("ablation_alpha", report)
    # The reported driver score shrinks with alpha by construction.
    td = [row[4] for row in rows]
    assert all(a >= b for a, b in zip(td, td[1:]))
