"""Ablation: the batching frame length.

The paper fixes one-minute frames.  Longer frames pool more requests
per dispatch round — better matches, worse baseline latency; shorter
frames dispatch eagerly.  This sweep quantifies the trade-off for the
stable dispatcher.
"""

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.core import SimulationConfig
from repro.dispatch import nstd_p
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace import boston_profile

FRAME_LENGTHS_S = (30.0, 60.0, 120.0, 300.0)


def run_frame_sweep():
    oracle = EuclideanDistance()
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_factor(0.04), seed=17, hours=(7.0, 10.0))
    fleet, requests = build_workload(profile, scale)
    base = city_simulation_config(profile.scaled(scale.factor))
    rows = []
    for frame_s in FRAME_LENGTHS_S:
        sim_config = SimulationConfig(
            frame_length_s=frame_s,
            taxi_speed_kmh=base.taxi_speed_kmh,
            passenger_patience_s=base.passenger_patience_s,
            horizon_s=base.horizon_s,
            dispatch=base.dispatch,
        )
        result = Simulator(nstd_p(oracle, base.dispatch), oracle, sim_config).run(
            fleet, requests
        )
        summary = result.summary()
        rows.append(
            [
                frame_s,
                summary["service_rate"],
                summary["mean_dispatch_delay_min"],
                summary["mean_passenger_dissatisfaction"],
                summary["mean_taxi_dissatisfaction"],
            ]
        )
    return rows


def test_ablation_frame_length(benchmark, figure_report_sink):
    rows = benchmark.pedantic(run_frame_sweep, rounds=1, iterations=1)
    report = "== Ablation — batching frame length (NSTD-P, Boston) ==\n" + format_table(
        ["frame_s", "service_rate", "mean_delay_min", "mean_pd", "mean_td"], rows
    )
    figure_report_sink("ablation_frame_length", report)
    # The frame quantum lower-bounds delay: a 300 s frame cannot beat the
    # 30 s frame's minimum wait.
    delays = {row[0]: row[2] for row in rows}
    assert delays[300.0] >= delays[30.0] - 1e-6
