"""Fig. 4 — non-sharing dispatch CDFs on the New York workload.

Regenerates the three panels (dispatch delay, passenger dissatisfaction,
taxi dissatisfaction) for NSTD-P, NSTD-T, Greedy, MCBM and MMCM over a
scaled New York day.  The paper's qualitative findings to look for in
the printed tables:

* all algorithms deliver most dispatches within a few frames, with
  Greedy/MCBM fastest (panel a);
* Greedy and NSTD-P lead the passenger-dissatisfaction CDF; MMCM's
  curve is compressed under a common cap (panel b);
* NSTD-P/NSTD-T dominate taxi dissatisfaction by a wide margin
  (panel c).
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure


def test_fig4_new_york_nonsharing(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.02), seed=2017)
    result = benchmark.pedantic(lambda: run_figure("fig4", scale), rounds=1, iterations=1)
    figure_report_sink("fig4", result.report)

    summaries = result.summaries
    assert set(summaries) == {"NSTD-P", "NSTD-T", "Greedy", "MCBM", "MMCM"}
    # Headline shape: the stable dispatchers win the taxi side.
    stable_worst = max(
        summaries[name]["mean_taxi_dissatisfaction"] for name in ("NSTD-P", "NSTD-T")
    )
    assert stable_worst < summaries["Greedy"]["mean_taxi_dissatisfaction"]
