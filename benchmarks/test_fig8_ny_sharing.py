"""Fig. 8 — sharing dispatch CDFs on the New York workload.

Regenerates the sharing evaluation: STD-P, STD-T (Algorithm 3) against
RAII, SARP and the ILP heuristic.  Expected shape (paper Section VI-D):
unlike the non-sharing case, the stable packed dispatchers clearly
outperform every baseline on **all three** metrics — RAII's index is
information-lossy and SARP's insertion order locks in early mistakes.
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure


def test_fig8_new_york_sharing(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.015), seed=2017, hours=(6.0, 12.0))
    result = benchmark.pedantic(lambda: run_figure("fig8", scale), rounds=1, iterations=1)
    figure_report_sink("fig8", result.report)

    summaries = result.summaries
    assert set(summaries) == {"STD-P", "STD-T", "RAII", "SARP", "ILP"}
    stable_worst_td = max(
        summaries[n]["mean_taxi_dissatisfaction"] for n in ("STD-P", "STD-T")
    )
    stable_worst_pd = max(
        summaries[n]["mean_passenger_dissatisfaction"] for n in ("STD-P", "STD-T")
    )
    for baseline in ("RAII", "SARP"):
        assert stable_worst_td < summaries[baseline]["mean_taxi_dissatisfaction"]
        assert stable_worst_pd < summaries[baseline]["mean_passenger_dissatisfaction"]
    # Sharing actually happens under every policy.
    assert all(s["shared_ride_fraction"] > 0 for s in summaries.values())
