"""Paper-scale city-day benchmark: cold vs warm-start NSTD-P.

Runs the full NYC city-day (scale_factor 1.0, the paper's 24-hour
trace shape) end to end through the simulation engine twice — the
stateless cold dispatcher and the warm-start dispatcher that carries
solver state across frames — asserts the two runs are bit-identical in
everything but wall clock, and writes machine-readable
``BENCH_cityday.json`` at the repo root.
``scripts/check_bench_regression.py --suite cityday`` compares that
file against the committed baseline in
``benchmarks/BENCH_cityday_baseline.json``.

The headline row times the *whole* simulation (engine + dispatch), not
just the dispatcher: warm start must pay for itself against every
shared overhead to count.  Per-frame dispatcher totals and the warm
telemetry (hit rate, fallbacks, rebuild fraction) ride along as row
extras.

Smoke mode (``BENCH_SMOKE=1``, used by ``scripts/run_benchmarks.sh
--smoke`` and CI) shrinks the workload to a two-hour 2% slice, skips
the speedup floor (tiny frames are all noise), and writes the artifact
under ``benchmarks/output/`` so the committed baseline never sees
smoke numbers.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import (
    ExperimentScale,
    build_workload,
    city_simulation_config,
    environment_metadata,
)
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()
REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
BENCH_JSON = (
    REPO_ROOT / "benchmarks" / "output" / "BENCH_cityday_smoke.json"
    if SMOKE
    else REPO_ROOT / "BENCH_cityday.json"
)
SCALE_FACTOR = 0.02 if SMOKE else 1.0
HOURS = (17.0, 19.0) if SMOKE else None
REPEATS = 1 if SMOKE else 3
SEED = 7
MIN_WARM_SPEEDUP = 1.5


class TestCityDayBenchmark:
    """Full-scale city-day timings, emitted as ``BENCH_cityday.json``."""

    def test_cityday_json(self):
        profile = nyc_profile()
        scale = ExperimentScale(factor=SCALE_FACTOR, seed=SEED, hours=HOURS)
        sim_config = city_simulation_config(profile.scaled(scale.factor))
        fleet, day_requests = build_workload(profile, scale)

        def run_city_day(warm):
            """One full simulated day; returns (result, e2e wall ms)."""
            dispatcher = NSTDDispatcher(
                ORACLE,
                sim_config.dispatch,
                optimize_for="passenger",
                warm_start=warm,
            )
            simulator = Simulator(dispatcher, ORACLE, sim_config)
            start = time.perf_counter()
            result = simulator.run(fleet, day_requests)
            return result, (time.perf_counter() - start) * 1e3

        result_cold, first_cold_ms = run_city_day(False)
        result_warm, first_warm_ms = run_city_day(True)

        # Warm start must be indistinguishable from cold in everything
        # but wall clock: same outcomes, same assignments, same
        # headline metrics, across the full benchmark trace.
        assert result_cold.summary() == result_warm.summary()
        assert [
            (o.request_id, o.taxi_id, o.dispatch_time_s) for o in result_cold.outcomes
        ] == [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in result_warm.outcomes]
        assert [
            (a.taxi_id, a.request_ids) for a in result_cold.assignments
        ] == [(a.taxi_id, a.request_ids) for a in result_warm.assignments]

        warm_perf = result_warm.perf_stats()
        assert warm_perf.get("warm_frames", 0) > 0
        assert warm_perf.get("cold_frames", 0) >= 1
        if not SMOKE:
            # The deterministic seed-7 trace never trips a fallback;
            # one appearing here means a warm precondition broke.
            assert warm_perf.get("warm_fallbacks", 0) == 0

        # Best-of-N whole-simulation runs per mode (best, not mean, to
        # shed scheduler noise; the first runs above count as rep one).
        best_cold = (result_cold, first_cold_ms)
        best_warm = (result_warm, first_warm_ms)
        for _ in range(REPEATS - 1):
            best_cold = min(best_cold, run_city_day(False), key=lambda r: r[1])
            best_warm = min(best_warm, run_city_day(True), key=lambda r: r[1])

        rows = {}

        def record(name, result, e2e_ms, *, baseline=None, extra=None):
            perf = result.perf_stats()
            rows[name] = {
                "ms": round(e2e_ms, 4),
                "total_dispatch_ms": round(perf["total_dispatch_ms"], 4),
                "frames": int(perf["frames"]),
                "active_frames": int(perf["active_frames"]),
                "p50_dispatch_ms": round(perf["p50_dispatch_ms"], 4),
                "p95_dispatch_ms": round(perf["p95_dispatch_ms"], 4),
                "frames_over_budget": int(perf["frames_over_budget"]),
                "service_rate": round(result.service_rate, 6),
            }
            if baseline is not None:
                rows[name]["speedup_vs_cold"] = round(rows[baseline]["ms"] / e2e_ms, 3)
            if extra:
                rows[name].update(extra)

        record("cityday_nstd_p_cold", *best_cold)
        warm_best_perf = best_warm[0].perf_stats()
        record(
            "cityday_nstd_p_warm",
            *best_warm,
            baseline="cityday_nstd_p_cold",
            extra={
                "warm_frames": int(warm_best_perf.get("warm_frames", 0)),
                "cold_frames": int(warm_best_perf.get("cold_frames", 0)),
                "warm_fallbacks": int(warm_best_perf.get("warm_fallbacks", 0)),
                "warm_hit_rate": round(warm_best_perf.get("warm_hit_rate", 0.0), 4),
                "warm_rebuild_fraction": round(
                    warm_best_perf.get("warm_rebuild_fraction", math.nan), 4
                ),
            },
        )

        payload = {
            "schema": "bench-cityday/1",
            "source": "benchmarks/test_cityday.py::TestCityDayBenchmark",
            "environment": environment_metadata(),
            "workload": {
                "profile": "new-york",
                "scale_factor": SCALE_FACTOR,
                "hours": list(HOURS) if HOURS else None,
                "seed": SEED,
                "n_taxis": len(fleet),
                "n_requests": len(day_requests),
                "algorithm": "NSTD-P",
                "oracle": "EuclideanDistance",
                "repeats": REPEATS,
                "smoke": SMOKE,
                "headline": "cityday_nstd_p_warm",
            },
            "kernels": rows,
        }
        BENCH_JSON.parent.mkdir(exist_ok=True)
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print()
        print(json.dumps(payload, indent=2))

        # The tentpole's acceptance bar: at paper scale the warm-start
        # city-day beats the cold one ≥1.5x end to end.  Smoke frames
        # are a few dozen requests each, all fixed overhead, so the
        # floor only applies to the full-scale run.
        if not SMOKE:
            assert rows["cityday_nstd_p_warm"]["speedup_vs_cold"] >= MIN_WARM_SPEEDUP
