"""Paper-scale city-day benchmark: cold vs warm vs sharded-warm NSTD-P.

Runs the full NYC city-day (scale_factor 1.0, the paper's 24-hour
trace shape) end to end through the simulation engine several times —
the stateless cold dispatcher, the warm-start dispatcher that carries
solver state across frames, the spatially sharded warm dispatcher
that decomposes each frame into θ-ball connected components, and the
event-driven streaming engine in its epoch-equals-frame equivalence
mode — asserts all runs are bit-identical in everything but wall
clock, and writes machine-readable ``BENCH_cityday.json`` at the repo
root.
``scripts/check_bench_regression.py --suite cityday`` compares that
file against the committed baseline in
``benchmarks/BENCH_cityday_baseline.json``.

The headline row times the *whole* simulation (engine + dispatch), not
just the dispatcher: warm start must pay for itself against every
shared overhead to count.  Per-frame dispatcher totals and the warm
telemetry (hit rate, fallbacks, rebuild fraction) ride along as row
extras.

Smoke mode (``BENCH_SMOKE=1``, used by ``scripts/run_benchmarks.sh
--smoke`` and CI) shrinks the workload to a two-hour 2% slice, skips
the speedup floor (tiny frames are all noise), and writes the artifact
under ``benchmarks/output/`` so the committed baseline never sees
smoke numbers.
"""

import json
import math
import os
import time
from pathlib import Path

from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import (
    ExperimentScale,
    build_workload,
    city_simulation_config,
    environment_metadata,
)
from repro.geometry import EuclideanDistance
from repro.resilience import DEFAULT_AUDIT_RATE, StabilityAuditor
from repro.simulation import Simulator
from repro.streaming import StreamingEngine
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()
REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
BENCH_JSON = (
    REPO_ROOT / "benchmarks" / "output" / "BENCH_cityday_smoke.json"
    if SMOKE
    else REPO_ROOT / "BENCH_cityday.json"
)
BASELINE_JSON = REPO_ROOT / "benchmarks" / "BENCH_cityday_baseline.json"
SCALE_FACTOR = 0.02 if SMOKE else 1.0
HOURS = (17.0, 19.0) if SMOKE else None
REPEATS = 1 if SMOKE else 3
SEED = 7
MIN_WARM_SPEEDUP = 1.5
#: The sharded acceptance floor is measured against the warm headline
#: *recorded in the committed baseline* (the pre-sharding release), not
#: the fresh warm run in this file: the baseline number is the fixed
#: reference the sharding layer was built to beat, while same-run warm
#: timings drift with machine state.  Both ratios are recorded.
MIN_SHARDED_SPEEDUP = 1.25


class TestCityDayBenchmark:
    """Full-scale city-day timings, emitted as ``BENCH_cityday.json``."""

    def test_cityday_json(self):
        profile = nyc_profile()
        scale = ExperimentScale(factor=SCALE_FACTOR, seed=SEED, hours=HOURS)
        sim_config = city_simulation_config(profile.scaled(scale.factor))
        fleet, day_requests = build_workload(profile, scale)

        def run_city_day(warm, sharded=False, audited=False):
            """One full simulated day; returns (result, e2e wall ms)."""
            dispatcher = NSTDDispatcher(
                ORACLE,
                sim_config.dispatch,
                optimize_for="passenger",
                warm_start=warm,
                sharded=sharded,
            )
            auditor = StabilityAuditor(rate=DEFAULT_AUDIT_RATE) if audited else None
            simulator = Simulator(dispatcher, ORACLE, sim_config, auditor=auditor)
            start = time.perf_counter()
            result = simulator.run(fleet, day_requests)
            return result, (time.perf_counter() - start) * 1e3

        def assert_identical(reference, candidate):
            """Bit-identity in everything but wall clock: same headline
            metrics, same outcomes, same assignments, across the full
            benchmark trace."""
            assert reference.summary() == candidate.summary()
            assert [
                (o.request_id, o.taxi_id, o.dispatch_time_s) for o in reference.outcomes
            ] == [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in candidate.outcomes]
            assert [
                (a.taxi_id, a.request_ids) for a in reference.assignments
            ] == [(a.taxi_id, a.request_ids) for a in candidate.assignments]

        result_cold, first_cold_ms = run_city_day(False)
        result_warm, first_warm_ms = run_city_day(True)
        result_sharded, first_sharded_ms = run_city_day(True, sharded=True)

        # Both accelerated modes must be indistinguishable from the cold
        # global solve before any of them is timed.
        assert_identical(result_cold, result_warm)
        assert_identical(result_cold, result_sharded)

        warm_perf = result_warm.perf_stats()
        assert warm_perf.get("warm_frames", 0) > 0
        assert warm_perf.get("cold_frames", 0) >= 1
        sharded_perf = result_sharded.perf_stats()
        assert sharded_perf.get("warm_frames", 0) > 0
        if not SMOKE:
            # The deterministic seed-7 trace never trips a fallback;
            # one appearing here means a warm precondition broke.
            assert warm_perf.get("warm_fallbacks", 0) == 0
            assert sharded_perf.get("warm_fallbacks", 0) == 0
            assert sharded_perf.get("shards_degraded", 0) == 0

        # Best-of-N whole-simulation runs per mode (best, not mean, to
        # shed scheduler noise; the first runs above count as rep one).
        best_cold = (result_cold, first_cold_ms)
        best_warm = (result_warm, first_warm_ms)
        best_sharded = (result_sharded, first_sharded_ms)
        for _ in range(REPEATS - 1):
            best_cold = min(best_cold, run_city_day(False), key=lambda r: r[1])
            best_warm = min(best_warm, run_city_day(True), key=lambda r: r[1])
            best_sharded = min(best_sharded, run_city_day(True, sharded=True), key=lambda r: r[1])

        rows = {}

        def record(name, result, e2e_ms, *, baseline=None, extra=None):
            perf = result.perf_stats()
            rows[name] = {
                "ms": round(e2e_ms, 4),
                "total_dispatch_ms": round(perf["total_dispatch_ms"], 4),
                "frames": int(perf["frames"]),
                "active_frames": int(perf["active_frames"]),
                "p50_dispatch_ms": round(perf["p50_dispatch_ms"], 4),
                "p95_dispatch_ms": round(perf["p95_dispatch_ms"], 4),
                "frames_over_budget": int(perf["frames_over_budget"]),
                "service_rate": round(result.service_rate, 6),
            }
            if baseline is not None:
                rows[name]["speedup_vs_cold"] = round(rows[baseline]["ms"] / e2e_ms, 3)
            if extra:
                rows[name].update(extra)

        record("cityday_nstd_p_cold", *best_cold)
        warm_best_perf = best_warm[0].perf_stats()
        record(
            "cityday_nstd_p_warm",
            *best_warm,
            baseline="cityday_nstd_p_cold",
            extra={
                "warm_frames": int(warm_best_perf.get("warm_frames", 0)),
                "cold_frames": int(warm_best_perf.get("cold_frames", 0)),
                "warm_fallbacks": int(warm_best_perf.get("warm_fallbacks", 0)),
                "warm_hit_rate": round(warm_best_perf.get("warm_hit_rate", 0.0), 4),
                "warm_rebuild_fraction": round(
                    warm_best_perf.get("warm_rebuild_fraction", math.nan), 4
                ),
            },
        )

        # The sharded row records two ratios: ``speedup_vs_warm`` against
        # the warm run measured in this same file (same machine state,
        # but both sides drift together), and ``speedup_vs_warm_headline``
        # against the warm headline recorded in the committed baseline —
        # the fixed pre-sharding reference the acceptance floor guards.
        sharded_best_perf = best_sharded[0].perf_stats()
        sharded_extra = {
            "warm_frames": int(sharded_best_perf.get("warm_frames", 0)),
            "cold_frames": int(sharded_best_perf.get("cold_frames", 0)),
            "warm_fallbacks": int(sharded_best_perf.get("warm_fallbacks", 0)),
            "shard_decomposed_frames": int(
                sharded_best_perf.get("shard_decomposed_frames", 0)
            ),
            "shard_count_mean": round(sharded_best_perf.get("shard_count_mean", 0.0), 4),
            "largest_shard_fraction": round(
                sharded_best_perf.get("largest_shard_fraction", math.nan), 4
            ),
            "cross_shard_pairs_avoided": int(
                sharded_best_perf.get("cross_shard_pairs_avoided", 0)
            ),
            "shards_degraded": int(sharded_best_perf.get("shards_degraded", 0)),
            "speedup_vs_warm": round(best_warm[1] / best_sharded[1], 3),
        }
        warm_headline_ms = None
        if not SMOKE and BASELINE_JSON.exists():
            baseline_payload = json.loads(BASELINE_JSON.read_text())
            baseline_row = baseline_payload.get("kernels", {}).get("cityday_nstd_p_warm")
            if baseline_row is not None:
                warm_headline_ms = float(baseline_row["ms"])
        if warm_headline_ms is not None:
            sharded_extra["speedup_vs_warm_headline"] = round(
                warm_headline_ms / best_sharded[1], 3
            )
        record(
            "cityday_nstd_p_sharded_warm",
            *best_sharded,
            baseline="cityday_nstd_p_cold",
            extra=sharded_extra,
        )

        # Warm run with the runtime stability auditor riding along at its
        # default sampling rate: still bit-identical (audits either pass
        # or heal to the same matching), zero divergences on the honest
        # trace, and the sampled re-verification stays within its 5%
        # overhead budget.  One rep — the row documents the audit cost
        # envelope, not a best-of race.
        result_audited, audited_ms = run_city_day(True, audited=True)
        assert_identical(result_cold, result_audited)
        audited_perf = result_audited.perf_stats()
        assert audited_perf["audit_divergences"] == 0
        assert audited_perf["audit_healed"] == 0
        record(
            "cityday_nstd_p_warm_audited",
            result_audited,
            audited_ms,
            baseline="cityday_nstd_p_cold",
            extra={
                "audit_rate": round(DEFAULT_AUDIT_RATE, 6),
                "frames_audited": int(audited_perf["frames_audited"]),
                "audit_divergences": int(audited_perf["audit_divergences"]),
                "audit_ms": round(audited_perf["audit_ms"], 4),
                "audit_overhead_fraction": round(
                    audited_perf["audit_overhead_fraction"], 6
                ),
            },
        )
        if not SMOKE:
            assert audited_perf["frames_audited"] > 0
            assert audited_perf["audit_overhead_fraction"] < 0.05

        # Event-driven streaming engine in its equivalence mode (epoch
        # length = frame length, warm per-zone matchers): must be
        # bit-identical to the cold batch run before any timing counts.
        def run_streaming():
            engine = StreamingEngine(ORACLE, sim_config)
            start = time.perf_counter()
            result = engine.run(fleet, day_requests)
            return result, (time.perf_counter() - start) * 1e3

        result_streaming, first_streaming_ms = run_streaming()
        assert_identical(result_cold, result_streaming)
        streaming_perf_check = result_streaming.perf_stats()
        assert streaming_perf_check.get("warm_frames", 0) > 0
        assert streaming_perf_check.get("zone_groups_degraded", 0) == 0
        if not SMOKE:
            assert streaming_perf_check.get("warm_fallbacks", 0) == 0
        best_streaming = (result_streaming, first_streaming_ms)
        for _ in range(REPEATS - 1):
            best_streaming = min(best_streaming, run_streaming(), key=lambda r: r[1])
        streaming_best_perf = best_streaming[0].perf_stats()
        record(
            "cityday_nstd_p_streaming",
            *best_streaming,
            baseline="cityday_nstd_p_cold",
            extra={
                "events_processed": int(streaming_best_perf["events_processed"]),
                "events_per_epoch": round(streaming_best_perf["events_per_epoch"], 4),
                "epochs_run": int(streaming_best_perf["epochs_run"]),
                "boundary_reconciliations": int(
                    streaming_best_perf["boundary_reconciliations"]
                ),
                "zone_groups_mean": round(
                    streaming_best_perf.get("zone_groups_mean", 0.0), 4
                ),
                "zone_groups_degraded": int(
                    streaming_best_perf.get("zone_groups_degraded", 0)
                ),
                "zones_active_max": int(streaming_best_perf["zones_active_max"]),
                "zone_queue_depth_max": int(
                    streaming_best_perf["zone_queue_depth_max"]
                ),
                "zone_km": round(streaming_best_perf.get("zone_km", 0.0), 4),
                "warm_frames": int(streaming_best_perf.get("warm_frames", 0)),
                "cold_frames": int(streaming_best_perf.get("cold_frames", 0)),
                "warm_fallbacks": int(streaming_best_perf.get("warm_fallbacks", 0)),
                "warm_hit_rate": round(
                    streaming_best_perf.get("warm_hit_rate", 0.0), 4
                ),
            },
        )

        payload = {
            "schema": "bench-cityday/1",
            "source": "benchmarks/test_cityday.py::TestCityDayBenchmark",
            "environment": environment_metadata(),
            "workload": {
                "profile": "new-york",
                "scale_factor": SCALE_FACTOR,
                "hours": list(HOURS) if HOURS else None,
                "seed": SEED,
                "n_taxis": len(fleet),
                "n_requests": len(day_requests),
                "algorithm": "NSTD-P",
                "oracle": "EuclideanDistance",
                "repeats": REPEATS,
                "smoke": SMOKE,
                "headline": "cityday_nstd_p_sharded_warm",
                # Shard configuration of the headline run: the sharded
                # rows above are single-worker (serial per-shard solves);
                # ``shard_workers`` is the opt-in multi-process knob and
                # is deliberately off for headline timings.
                "sharded": True,
                "shard_workers": None,
            },
            "kernels": rows,
        }
        BENCH_JSON.parent.mkdir(exist_ok=True)
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print()
        print(json.dumps(payload, indent=2))

        # Acceptance bars, full scale only (smoke frames are a few dozen
        # requests each, all fixed overhead): the warm-start city-day
        # beats the cold one ≥1.5x end to end, and the sharded warm run
        # beats the committed pre-sharding warm headline ≥1.25x.
        if not SMOKE:
            assert rows["cityday_nstd_p_warm"]["speedup_vs_cold"] >= MIN_WARM_SPEEDUP
            sharded_row = rows["cityday_nstd_p_sharded_warm"]
            assert "speedup_vs_warm_headline" in sharded_row, (
                f"no warm headline found in {BASELINE_JSON}"
            )
            assert sharded_row["speedup_vs_warm_headline"] >= MIN_SHARDED_SPEEDUP
