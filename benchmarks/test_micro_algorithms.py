"""Micro-benchmarks of the core algorithmic kernels.

Times the primitives that dominate a dispatch frame: preference
construction, deferred acceptance, stable-matching enumeration, the
bipartite matchers, group feasibility enumeration, set packing, and the
90-sequence exhaustive route search.

``TestKernelSpeedups`` additionally times the batched distance kernels
against the retained scalar reference at the paper's frame scale (700
taxis) and writes machine-readable ``BENCH_kernels.json`` at the repo
root; ``scripts/check_bench_regression.py`` compares that file against
the committed baseline in ``benchmarks/BENCH_kernels_baseline.json``.
"""

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch.nonsharing.mincost import build_cost_matrix
from repro.experiments import environment_metadata
from repro.geometry import EuclideanDistance, Point, oracle_pairwise
from repro.matching import (
    all_stable_matchings,
    build_nonsharing_table,
    deferred_acceptance,
    min_cost_matching,
    minimax_matching,
)
from repro.matching.preferences import build_nonsharing_table_reference
from repro.packing import enumerate_feasible_groups, local_search_packing
from repro.routing import optimal_shared_route

ORACLE = EuclideanDistance()
REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"


def frame(seed, n_taxis, n_requests, spread=6.0):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, spread, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, spread, 2)), Point(*rng.normal(0, spread, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


class TestMatchingKernels:
    def test_bench_preference_table_200x100(self, benchmark):
        taxis, requests = frame(0, 100, 200)
        config = DispatchConfig()
        table = benchmark(build_nonsharing_table, taxis, requests, ORACLE, config)
        assert len(table.proposer_prefs) == 200

    def test_bench_deferred_acceptance_200x100(self, benchmark):
        taxis, requests = frame(1, 100, 200)
        table = build_nonsharing_table(taxis, requests, ORACLE, DispatchConfig())
        matching = benchmark(deferred_acceptance, table)
        assert matching.size == 100

    def test_bench_enumeration_8x8(self, benchmark):
        taxis, requests = frame(2, 8, 8)
        table = build_nonsharing_table(taxis, requests, ORACLE, DispatchConfig())
        matchings = benchmark(all_stable_matchings, table)
        assert len(matchings) >= 1

    def test_bench_min_cost_matching_200x100(self, benchmark):
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0, 20, size=(200, 100))
        pairs = benchmark(min_cost_matching, matrix)
        assert len(pairs) == 100

    def test_bench_minimax_matching_100x60(self, benchmark):
        rng = np.random.default_rng(4)
        matrix = rng.uniform(0, 20, size=(100, 60))
        pairs = benchmark(minimax_matching, matrix)
        assert len(pairs) == 60


class TestSharingKernels:
    def test_bench_route_search_three_riders(self, benchmark):
        rng = np.random.default_rng(5)
        requests = [
            PassengerRequest(i, Point(*rng.normal(0, 2, 2)), Point(*rng.normal(0, 2, 2)))
            for i in range(3)
        ]
        route = benchmark(optimal_shared_route, requests, ORACLE)
        assert len(route.stops) == 6

    def test_bench_feasibility_enumeration_40_requests(self, benchmark):
        _, requests = frame(6, 1, 40, spread=3.0)
        config = DispatchConfig(theta_km=5.0)
        groups = benchmark(
            enumerate_feasible_groups, requests, ORACLE, config
        )
        assert isinstance(groups, list)

    def test_bench_local_search_packing(self, benchmark):
        rng = np.random.default_rng(7)
        sets = [
            frozenset(rng.choice(60, size=int(rng.integers(2, 4)), replace=False).tolist())
            for _ in range(300)
        ]
        result = benchmark(local_search_packing, sets)
        assert result.size >= 1


def _best_ms(fn, *, repeats=3):
    """Best-of-N wall-clock milliseconds (best, not mean, to shed noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best


def _tables_equal(a, b):
    return (
        a.proposer_prefs == b.proposer_prefs
        and a.reviewer_prefs == b.reviewer_prefs
        and a.proposer_scores == b.proposer_scores
        and a.reviewer_scores == b.reviewer_scores
    )


class TestKernelSpeedups:
    """Paper-scale kernel timings, emitted as ``BENCH_kernels.json``.

    The workload is one backlogged NYC-sized frame: 700 idle taxis and
    a 700-request queue (490k candidate pairs) spread over a ~30 km
    city.  The headline row uses a 1.0 km dispatch radius — a 3-minute
    drive at the paper's 20 km/h taxi speed — the operating regime the
    vectorized threshold masking targets; wider-radius and fully
    unthresholded rows are recorded alongside because their speedups
    are necessarily smaller (the table itself grows to O(|T|·|R|)
    Python objects, a cost both paths share).

    Every vectorized result is asserted bit-identical to the scalar
    reference before its timing is recorded, so the JSON never reports
    a speedup for a kernel that changed the answer.
    """

    N_TAXIS = 700
    N_REQUESTS = 700

    def test_kernel_speedups_json(self):
        taxis, requests = frame(11, self.N_TAXIS, self.N_REQUESTS, spread=4.0)
        pairs = len(taxis) * len(requests)
        kernels = {}

        def record(name, ms, *, baseline=None):
            kernels[name] = {
                "ms": round(ms, 4),
                "pairs": pairs,
                "pairs_per_sec": round(pairs / (ms / 1e3), 1),
            }
            if baseline is not None:
                kernels[name]["speedup_vs_scalar"] = round(kernels[baseline]["ms"] / ms, 2)

        # -- preference table at three operating points -------------------
        table_configs = [
            ("radius_1km", DispatchConfig(passenger_threshold_km=1.0, taxi_threshold_km=2.0)),
            ("radius_2km", DispatchConfig(passenger_threshold_km=2.0, taxi_threshold_km=4.0)),
            ("unthresholded", DispatchConfig()),
        ]
        for label, config in table_configs:
            reference = build_nonsharing_table_reference(taxis, requests, ORACLE, config)
            vectorized = build_nonsharing_table(taxis, requests, ORACLE, config)
            assert _tables_equal(reference, vectorized), label
            record(
                f"preference_table_scalar_{label}",
                _best_ms(
                    lambda config=config: build_nonsharing_table_reference(
                        taxis, requests, ORACLE, config
                    )
                ),
            )
            record(
                f"preference_table_vectorized_{label}",
                _best_ms(
                    lambda config=config: build_nonsharing_table(taxis, requests, ORACLE, config)
                ),
                baseline=f"preference_table_scalar_{label}",
            )

        # The grid-pruned engine, for visibility (auto picks the dense
        # engine below ~4M pairs where the full kernel matrix is cheaper
        # than per-request grid gathering).
        pruned_config = table_configs[0][1]
        pruned = build_nonsharing_table(taxis, requests, ORACLE, pruned_config, engine="pruned")
        assert _tables_equal(
            build_nonsharing_table_reference(taxis, requests, ORACLE, pruned_config), pruned
        )
        record(
            "preference_table_pruned_radius_1km",
            _best_ms(
                lambda: build_nonsharing_table(
                    taxis, requests, ORACLE, pruned_config, engine="pruned"
                )
            ),
            baseline="preference_table_scalar_radius_1km",
        )

        # -- raw pairwise kernel ------------------------------------------
        pickups = [r.pickup for r in requests]
        locations = [t.location for t in taxis]

        def scalar_pairwise():
            return [[ORACLE.distance(p, loc) for loc in locations] for p in pickups]

        batch = oracle_pairwise(ORACLE, sources=pickups, targets=locations, exact=True)
        assert np.array_equal(np.asarray(scalar_pairwise()), batch)
        record("pairwise_scalar", _best_ms(scalar_pairwise))
        record(
            "pairwise_euclidean",
            _best_ms(lambda: oracle_pairwise(ORACLE, sources=pickups, targets=locations, exact=True)),
            baseline="pairwise_scalar",
        )

        # -- bipartite cost matrix ----------------------------------------
        threshold = pruned_config.passenger_threshold_km

        def scalar_cost_matrix():
            matrix = np.full((len(requests), len(taxis)), math.inf)
            for j, request in enumerate(requests):
                for i, taxi in enumerate(taxis):
                    if request.passengers > taxi.seats:
                        continue
                    d = ORACLE.distance(taxi.location, request.pickup)
                    if d <= threshold:
                        matrix[j, i] = d
            return matrix

        vec_matrix = build_cost_matrix(taxis, requests, ORACLE, threshold)
        assert np.array_equal(scalar_cost_matrix(), vec_matrix)
        record("cost_matrix_scalar", _best_ms(scalar_cost_matrix))
        record(
            "cost_matrix_batched",
            _best_ms(lambda: build_cost_matrix(taxis, requests, ORACLE, threshold)),
            baseline="cost_matrix_scalar",
        )

        payload = {
            "schema": "bench-kernels/2",
            "source": "benchmarks/test_micro_algorithms.py::TestKernelSpeedups",
            "environment": environment_metadata(),
            "workload": {
                "n_taxis": self.N_TAXIS,
                "n_requests": self.N_REQUESTS,
                "pairs": pairs,
                "oracle": "EuclideanDistance",
                "seed": 11,
                "spread_km": 4.0,
                "headline": "preference_table_vectorized_radius_1km",
            },
            "kernels": kernels,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print()
        print(json.dumps(payload, indent=2))

        # The tentpole's acceptance bar: ≥10× at paper scale.
        assert kernels["preference_table_vectorized_radius_1km"]["speedup_vs_scalar"] >= 10.0
