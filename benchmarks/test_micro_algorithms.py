"""Micro-benchmarks of the core algorithmic kernels.

Times the primitives that dominate a dispatch frame: preference
construction, deferred acceptance, stable-matching enumeration, the
bipartite matchers, group feasibility enumeration, set packing, and the
90-sequence exhaustive route search.
"""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    all_stable_matchings,
    build_nonsharing_table,
    deferred_acceptance,
    min_cost_matching,
    minimax_matching,
)
from repro.packing import enumerate_feasible_groups, local_search_packing
from repro.routing import optimal_shared_route

ORACLE = EuclideanDistance()


def frame(seed, n_taxis, n_requests, spread=6.0):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, spread, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, spread, 2)), Point(*rng.normal(0, spread, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


class TestMatchingKernels:
    def test_bench_preference_table_200x100(self, benchmark):
        taxis, requests = frame(0, 100, 200)
        config = DispatchConfig()
        table = benchmark(build_nonsharing_table, taxis, requests, ORACLE, config)
        assert len(table.proposer_prefs) == 200

    def test_bench_deferred_acceptance_200x100(self, benchmark):
        taxis, requests = frame(1, 100, 200)
        table = build_nonsharing_table(taxis, requests, ORACLE, DispatchConfig())
        matching = benchmark(deferred_acceptance, table)
        assert matching.size == 100

    def test_bench_enumeration_8x8(self, benchmark):
        taxis, requests = frame(2, 8, 8)
        table = build_nonsharing_table(taxis, requests, ORACLE, DispatchConfig())
        matchings = benchmark(all_stable_matchings, table)
        assert len(matchings) >= 1

    def test_bench_min_cost_matching_200x100(self, benchmark):
        rng = np.random.default_rng(3)
        matrix = rng.uniform(0, 20, size=(200, 100))
        pairs = benchmark(min_cost_matching, matrix)
        assert len(pairs) == 100

    def test_bench_minimax_matching_100x60(self, benchmark):
        rng = np.random.default_rng(4)
        matrix = rng.uniform(0, 20, size=(100, 60))
        pairs = benchmark(minimax_matching, matrix)
        assert len(pairs) == 60


class TestSharingKernels:
    def test_bench_route_search_three_riders(self, benchmark):
        rng = np.random.default_rng(5)
        requests = [
            PassengerRequest(i, Point(*rng.normal(0, 2, 2)), Point(*rng.normal(0, 2, 2)))
            for i in range(3)
        ]
        route = benchmark(optimal_shared_route, requests, ORACLE)
        assert len(route.stops) == 6

    def test_bench_feasibility_enumeration_40_requests(self, benchmark):
        _, requests = frame(6, 1, 40, spread=3.0)
        config = DispatchConfig(theta_km=5.0)
        groups = benchmark(
            enumerate_feasible_groups, requests, ORACLE, config
        )
        assert isinstance(groups, list)

    def test_bench_local_search_packing(self, benchmark):
        rng = np.random.default_rng(7)
        sets = [
            frozenset(rng.choice(60, size=int(rng.integers(2, 4)), replace=False).tolist())
            for _ in range(300)
        ]
        result = benchmark(local_search_packing, sets)
        assert result.size >= 1
