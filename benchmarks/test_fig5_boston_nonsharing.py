"""Fig. 5 — non-sharing dispatch CDFs on the Boston workload.

Same panels as Fig. 4 on the compact Boston trace.  Expected shapes:
dissatisfaction values sit lower than New York's (smaller area), and
NSTD-P/NSTD-T are no longer outrun on dispatch delay because they
refuse hopeless far dispatches and let passengers wait for nearby busy
taxis (the paper's Section VI-C discussion).
"""

from benchmarks.conftest import scale_factor
from repro.experiments import ExperimentScale, run_figure


def test_fig5_boston_nonsharing(benchmark, figure_report_sink):
    scale = ExperimentScale(factor=scale_factor(0.05), seed=2017)
    result = benchmark.pedantic(lambda: run_figure("fig5", scale), rounds=1, iterations=1)
    figure_report_sink("fig5", result.report)

    summaries = result.summaries
    stable_worst = max(
        summaries[name]["mean_taxi_dissatisfaction"] for name in ("NSTD-P", "NSTD-T")
    )
    assert stable_worst < summaries["Greedy"]["mean_taxi_dissatisfaction"]
    # Boston's area is smaller than New York's, so its passenger
    # dissatisfaction magnitudes must come out lower at equal scale —
    # verified across figures in EXPERIMENTS.md rather than here.
    assert all(s["service_rate"] > 0.5 for s in summaries.values())
