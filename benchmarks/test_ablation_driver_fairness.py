"""Ablation: how evenly each dispatch policy spreads driver income.

Taxi dissatisfaction (the paper's driver metric) is per-ride; drivers
also care how income distributes across the *fleet*.  This bench runs
the Boston morning under the non-sharing roster and reports per-driver
revenue fairness (Gini, Jain, idle-driver share).
"""

from benchmarks.conftest import scale_factor
from repro.analysis import driver_income_report, format_table
from repro.experiments import ExperimentScale, run_city_experiment
from repro.trace import boston_profile

ALGORITHMS = ("NSTD-P", "NSTD-T", "Greedy", "MCBM", "MMCM")


def run_fairness_comparison():
    scale = ExperimentScale(factor=scale_factor(0.04), seed=31, hours=(7.0, 11.0))
    results = run_city_experiment(boston_profile(), ALGORITHMS, scale)
    return driver_income_report(results)


def test_ablation_driver_fairness(benchmark, figure_report_sink):
    report_data = benchmark.pedantic(run_fairness_comparison, rounds=1, iterations=1)
    rows = [
        [
            name,
            metrics["mean_revenue_km"],
            metrics["revenue_gini"],
            metrics["revenue_jain"],
            metrics["mean_paid_ratio"],
            metrics["idle_driver_share"],
        ]
        for name, metrics in report_data.items()
    ]
    report = "== Ablation — driver income fairness (Boston morning) ==\n" + format_table(
        ["algorithm", "mean_rev_km", "gini", "jain", "paid_ratio", "idle_share"], rows
    )
    figure_report_sink("ablation_driver_fairness", report)

    for name, metrics in report_data.items():
        assert 0.0 <= metrics["revenue_gini"] <= 1.0, name
        assert 0.0 < metrics["revenue_jain"] <= 1.0, name
    # The stable dispatcher keeps drivers' paid-distance efficiency at
    # least as good as Greedy's (it refuses deadhead-heavy rides).
    assert (
        report_data["NSTD-P"]["mean_paid_ratio"]
        >= report_data["Greedy"]["mean_paid_ratio"] - 1e-9
    )
