"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one panel (or one whole figure) of the
paper's evaluation and prints the same rows/series the paper plots.
Workload sizes are laptop-scaled by default; set ``REPRO_BENCH_SCALE``
to raise them (1.0 = paper-sized inputs)::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/ --benchmark-only

Reports are also written to ``benchmarks/output/<figure>.txt`` so the
EXPERIMENTS.md comparison can cite them.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def scale_factor(default: float) -> float:
    """The workload scale, overridable via REPRO_BENCH_SCALE."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    return float(raw)


@pytest.fixture()
def figure_report_sink():
    """Write a figure report to the output directory and echo it."""

    def write(figure_id: str, report: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{figure_id}.txt").write_text(report + "\n")
        print()
        print(report)

    return write
