"""Ablation: the set-packing solver inside Algorithm 3.

DESIGN.md calls out the packer as a swappable design choice.  This
bench compares greedy, local-search (the default, matching the cited
(max|c|+2)/3 regime), and exact branch-and-bound on identical
feasible-group inputs: packed-group counts and wall time.
"""

import time

import numpy as np

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.core import DispatchConfig
from repro.geometry import EuclideanDistance
from repro.packing import (
    enumerate_feasible_groups,
    exact_set_packing,
    greedy_set_packing,
    local_search_packing,
)
from repro.experiments import ExperimentScale, build_workload
from repro.trace import boston_profile


def build_candidate_sets():
    oracle = EuclideanDistance()
    scale = ExperimentScale(factor=scale_factor(0.05), seed=21, hours=(8.0, 9.0))
    _, requests = build_workload(boston_profile(), scale)
    space = boston_profile().scaled(scale.factor).space_scale
    # A tight theta keeps the candidate family small enough that the
    # exact branch-and-bound terminates within its node budget.
    config = DispatchConfig(theta_km=1.0 * space)
    groups = enumerate_feasible_groups(
        requests[:14], oracle, config, pairing_radius_km=4.0 * space
    )
    return [frozenset(g.request_ids) for g in groups]


def run_packer_comparison():
    sets = build_candidate_sets()
    solvers = (
        ("greedy", greedy_set_packing),
        ("local", local_search_packing),
        ("exact", lambda s: exact_set_packing(s, node_limit=5_000_000)),
    )
    rows = []
    for name, solver in solvers:
        started = time.perf_counter()
        try:
            result = solver(sets)
        except Exception:
            rows.append([name, len(sets), -1, -1, -1.0])
            continue
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        rows.append([name, len(sets), result.size, len(result.covered), elapsed_ms])
    return rows


def test_ablation_packers(benchmark, figure_report_sink):
    rows = benchmark.pedantic(run_packer_comparison, rounds=1, iterations=1)
    report = "== Ablation — set-packing solvers (identical inputs) ==\n" + format_table(
        ["packer", "candidate_sets", "packed_groups", "covered_requests", "time_ms"], rows
    )
    figure_report_sink("ablation_packers", report)
    by_name = {row[0]: row[2] for row in rows}
    assert by_name["greedy"] <= by_name["local"]
    if by_name["exact"] >= 0:  # exact solver completed within its node budget
        assert by_name["local"] <= by_name["exact"]
