"""Matching-core benchmarks: dict vs array deferred acceptance.

Times the two deferred-acceptance engines and the two preference
builders at the paper's frame scale (700 NYC taxis against a
700-request backlog), plus one end-to-end NSTD city-day through the
simulation engine, and writes machine-readable ``BENCH_matching.json``
at the repo root.  ``scripts/check_bench_regression.py`` compares that
file against the committed baseline in
``benchmarks/BENCH_matching_baseline.json``.

Every array-engine result is asserted bit-identical to the retained
dict reference — matching *and* proposal/refusal counters — before its
timing is recorded, so the JSON never reports a speedup for an engine
that changed the answer.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import (
    ExperimentScale,
    build_workload,
    city_simulation_config,
    environment_metadata,
)
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    build_nonsharing_arrays,
    build_nonsharing_table,
    deferred_acceptance_arrays,
    deferred_acceptance_dict,
)
from repro.matching.preferences import PreferenceTable
from repro.simulation import Simulator
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()
REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_matching.json"


def frame(seed, n_taxis, n_requests, spread=6.0):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, spread, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, spread, 2)), Point(*rng.normal(0, spread, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


def _best_ms(fn, *, repeats=3):
    """Best-of-N wall-clock milliseconds (best, not mean, to shed noise)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return best


def _fresh_table(table):
    """Re-wrap a table's dicts so lazy rank caches start cold.

    The dict engine builds per-reviewer rank maps on first use and
    memoizes them on the table.  In production every frame sees a brand
    new table, so the honest per-frame cost includes that build; timing
    a warmed table would flatter the dict engine.
    """
    return PreferenceTable(
        proposer_prefs=table.proposer_prefs,
        reviewer_prefs=table.reviewer_prefs,
        validate=False,
    )


class TestMatchingCoreSpeedups:
    """Paper-scale matching timings, emitted as ``BENCH_matching.json``.

    The workload mirrors ``TestKernelSpeedups``: one backlogged
    NYC-sized frame, 700 idle taxis against a 700-request queue over a
    ~30 km city.  Deferred acceptance is timed at two operating points —
    a 1.0 km dispatch radius (sparse lists, the thresholded regime) and
    fully unthresholded (dense 700-entry lists, 490k edges, the paper's
    worst case and the headline row) — plus the whole frame (build +
    match) on each path, and one end-to-end NSTD-P city-day through the
    simulator with the array fast path off (the pre-PR dict engine) and
    on.
    """

    N_TAXIS = 700
    N_REQUESTS = 700

    def test_matching_speedups_json(self):
        taxis, requests = frame(11, self.N_TAXIS, self.N_REQUESTS, spread=4.0)
        pairs = len(taxis) * len(requests)
        rows = {}

        def record(name, ms, *, baseline=None, extra=None):
            rows[name] = {"ms": round(ms, 4)}
            if baseline is not None:
                rows[name]["speedup_vs_dict"] = round(rows[baseline]["ms"] / ms, 2)
            if extra:
                rows[name].update(extra)

        configs = [
            ("radius_1km", DispatchConfig(passenger_threshold_km=1.0, taxi_threshold_km=2.0)),
            ("unthresholded", DispatchConfig()),
        ]

        # -- deferred acceptance, engine vs engine ------------------------
        for label, config in configs:
            table = build_nonsharing_table(taxis, requests, ORACLE, config)
            arrays = build_nonsharing_arrays(taxis, requests, ORACLE, config)

            matching_dict, stats_dict = deferred_acceptance_dict(
                _fresh_table(table), with_stats=True
            )
            matching_array, stats_array = deferred_acceptance_arrays(arrays, with_stats=True)
            assert matching_dict.pairs == matching_array.pairs, label
            assert stats_dict == stats_array, label

            record(
                f"da_dict_{label}",
                _best_ms(lambda table=table: deferred_acceptance_dict(_fresh_table(table))),
                extra={"edges": arrays.n_pairs, "matched": matching_dict.size},
            )
            record(
                f"da_array_{label}",
                _best_ms(lambda arrays=arrays: deferred_acceptance_arrays(arrays)),
                baseline=f"da_dict_{label}",
                extra={"edges": arrays.n_pairs, "matched": matching_array.size},
            )

            # -- the whole frame: build preferences, then match ----------
            record(
                f"frame_total_dict_{label}",
                _best_ms(
                    lambda config=config: deferred_acceptance_dict(
                        build_nonsharing_table(taxis, requests, ORACLE, config)
                    )
                ),
            )
            record(
                f"frame_total_array_{label}",
                _best_ms(
                    lambda config=config: deferred_acceptance_arrays(
                        build_nonsharing_arrays(taxis, requests, ORACLE, config)
                    )
                ),
                baseline=f"frame_total_dict_{label}",
            )

        # -- end-to-end NSTD-P city-day -----------------------------------
        profile = nyc_profile()
        scale = ExperimentScale(factor=0.1, seed=2017, hours=(17.0, 19.0))
        sim_config = city_simulation_config(profile.scaled(scale.factor))
        fleet, day_requests = build_workload(profile, scale)

        def run_city_day(use_arrays):
            dispatcher = NSTDDispatcher(
                ORACLE, sim_config.dispatch, optimize_for="passenger", use_arrays=use_arrays
            )
            simulator = Simulator(dispatcher, ORACLE, sim_config)
            return simulator.run(fleet, day_requests)

        result_dict = run_city_day(False)
        result_array = run_city_day(True)
        # The engines must be indistinguishable in everything but wall
        # clock: same outcomes, same assignments, same headline metrics.
        assert result_dict.summary() == result_array.summary()
        assert [
            (o.request_id, o.taxi_id, o.dispatch_time_s) for o in result_dict.outcomes
        ] == [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in result_array.outcomes]
        assert [
            (a.taxi_id, a.request_ids) for a in result_dict.assignments
        ] == [(a.taxi_id, a.request_ids) for a in result_array.assignments]

        def e2e_row(result):
            perf = result.perf_stats()
            return perf["total_dispatch_ms"], {
                "frames": int(perf["frames"]),
                "active_frames": int(perf["active_frames"]),
                "p50_dispatch_ms": round(perf["p50_dispatch_ms"], 4),
                "p95_dispatch_ms": round(perf["p95_dispatch_ms"], 4),
                "frames_over_budget": int(perf["frames_over_budget"]),
                "service_rate": round(result.service_rate, 6),
            }

        # Best-of-two city-days per engine: the totals aggregate hundreds
        # of frames, so two repeats suffice to shed scheduler noise.
        dict_ms, dict_extra = min(
            (e2e_row(result_dict), e2e_row(run_city_day(False))), key=lambda row: row[0]
        )
        array_ms, array_extra = min(
            (e2e_row(result_array), e2e_row(run_city_day(True))), key=lambda row: row[0]
        )
        record("e2e_nstd_city_day_dict", dict_ms, extra=dict_extra)
        record(
            "e2e_nstd_city_day_array",
            array_ms,
            baseline="e2e_nstd_city_day_dict",
            extra=array_extra,
        )

        payload = {
            "schema": "bench-matching/1",
            "source": "benchmarks/test_matching_core.py::TestMatchingCoreSpeedups",
            "environment": environment_metadata(),
            "workload": {
                "n_taxis": self.N_TAXIS,
                "n_requests": self.N_REQUESTS,
                "pairs": pairs,
                "oracle": "EuclideanDistance",
                "seed": 11,
                "spread_km": 4.0,
                "city_day": {
                    "profile": "new-york",
                    "scale_factor": 0.1,
                    "hours": [17.0, 19.0],
                    "algorithm": "NSTD-P",
                },
                "headline": "da_array_unthresholded",
            },
            "kernels": rows,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
        print()
        print(json.dumps(payload, indent=2))

        # The tentpole's acceptance bar: the array engine beats the dict
        # engine ≥3x on the paper's dense worst-case frame, and the end
        # to-end city-day is no slower than the pre-PR dict path.
        assert rows["da_array_unthresholded"]["speedup_vs_dict"] >= 3.0
        assert rows["e2e_nstd_city_day_array"]["speedup_vs_dict"] >= 1.0
