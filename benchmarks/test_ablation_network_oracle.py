"""Ablation: Euclidean plane vs. a road-network distance oracle.

The paper models the city as a Euclidean surface.  This ablation replays
the same Boston-morning workload with true shortest-path distances on a
street lattice and checks that the comparison's *ordering* — the only
thing the oracle choice could disturb — survives: NSTD still wins the
taxi side, distances grow by the lattice circuity, delays stretch
accordingly.
"""

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.experiments.runners import make_dispatcher
from repro.geometry import EuclideanDistance, Point
from repro.network import grid_city
from repro.simulation import Simulator
from repro.trace import boston_profile

ALGORITHMS = ("NSTD-P", "Greedy", "MCBM")


def build_lattice_for(requests, fleet, block_km):
    xs = [r.pickup.x for r in requests] + [r.dropoff.x for r in requests] + [
        t.location.x for t in fleet
    ]
    ys = [r.pickup.y for r in requests] + [r.dropoff.y for r in requests] + [
        t.location.y for t in fleet
    ]
    span_x = max(xs) - min(xs)
    span_y = max(ys) - min(ys)
    cols = int(span_x / block_km) + 2
    rows = int(span_y / block_km) + 2
    network = grid_city(rows, cols, block_km)
    # grid_city spans from the origin; shift the workload's bounding box
    # onto it by translating all entities.
    offset = Point(-min(xs), -min(ys))
    shifted_requests = [
        type(r)(
            request_id=r.request_id,
            pickup=r.pickup.translate(offset.x, offset.y),
            dropoff=r.dropoff.translate(offset.x, offset.y),
            request_time_s=r.request_time_s,
            passengers=r.passengers,
        )
        for r in requests
    ]
    shifted_fleet = [
        type(t)(taxi_id=t.taxi_id, location=t.location.translate(offset.x, offset.y), seats=t.seats)
        for t in fleet
    ]
    return network, shifted_fleet, shifted_requests


def run_oracle_comparison():
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_factor(0.02), seed=43, hours=(8.0, 10.0))
    fleet, requests = build_workload(profile, scale)
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    block_km = 0.15 * profile.scaled(scale.factor).space_scale / 0.2 + 0.05
    network, net_fleet, net_requests = build_lattice_for(requests, fleet, max(block_km, 0.05))

    rows = []
    results_by_oracle = {}
    for label, oracle, use_fleet, use_requests in (
        ("euclidean", EuclideanDistance(), fleet, requests),
        ("road-grid", network, net_fleet, net_requests),
    ):
        results = {}
        for name in ALGORITHMS:
            dispatcher = make_dispatcher(name, oracle, sim_config.dispatch)
            results[name] = Simulator(dispatcher, oracle, sim_config).run(
                use_fleet, use_requests
            )
        results_by_oracle[label] = results
        for name in ALGORITHMS:
            summary = results[name].summary()
            rows.append(
                [
                    label,
                    name,
                    summary["service_rate"],
                    summary["mean_dispatch_delay_min"],
                    summary["mean_passenger_dissatisfaction"],
                    summary["mean_taxi_dissatisfaction"],
                ]
            )
    return rows, results_by_oracle


def test_ablation_network_oracle(benchmark, figure_report_sink):
    rows, results = benchmark.pedantic(run_oracle_comparison, rounds=1, iterations=1)
    report = "== Ablation — Euclidean vs road-network oracle (Boston morning) ==\n" + format_table(
        ["oracle", "algorithm", "service_rate", "delay_min", "mean_pd", "mean_td"], rows
    )
    figure_report_sink("ablation_network_oracle", report)

    # The headline ordering survives the oracle swap.
    for label in ("euclidean", "road-grid"):
        td = {
            name: results[label][name].summary()["mean_taxi_dissatisfaction"]
            for name in ALGORITHMS
        }
        assert td["NSTD-P"] < td["Greedy"], label
