"""Robustness: the headline ordering across random seeds.

Single-seed figure reproductions can flip on workload noise; this bench
reruns the Boston non-sharing comparison over several seeds and reports
mean ± 95% CI per algorithm, asserting the paper's headline claim —
NSTD beats Greedy on taxi dissatisfaction — on **every** seed.
"""

from benchmarks.conftest import scale_factor
from repro.analysis import format_table, ordering_consistency, summarize_samples
from repro.experiments import ExperimentScale, run_city_experiment
from repro.trace import boston_profile

SEEDS = (11, 23, 37, 41, 59)
ALGORITHMS = ("NSTD-P", "Greedy", "MCBM")


def run_multi_seed():
    """Per-seed summaries for all algorithms on identical workloads."""
    td_series: dict[str, list[float]] = {name: [] for name in ALGORITHMS}
    delay_series: dict[str, list[float]] = {name: [] for name in ALGORITHMS}
    for seed in SEEDS:
        scale = ExperimentScale(factor=scale_factor(0.03), seed=seed, hours=(7.0, 10.0))
        results = run_city_experiment(boston_profile(), ALGORITHMS, scale)
        for name in ALGORITHMS:
            summary = results[name].summary()
            td_series[name].append(summary["mean_taxi_dissatisfaction"])
            delay_series[name].append(summary["mean_dispatch_delay_min"])
    return td_series, delay_series


def test_ablation_seed_robustness(benchmark, figure_report_sink):
    td_series, delay_series = benchmark.pedantic(run_multi_seed, rounds=1, iterations=1)
    rows = []
    for name in ALGORITHMS:
        td = summarize_samples(td_series[name])
        delay = summarize_samples(delay_series[name])
        rows.append([name, td.mean, td.half_width, delay.mean, delay.half_width])
    report = (
        f"== Robustness — {len(SEEDS)} seeds, Boston morning (mean ± 95% CI) ==\n"
        + format_table(["algorithm", "td_mean", "td_ci±", "delay_mean", "delay_ci±"], rows)
    )
    figure_report_sink("ablation_seeds", report)

    # NSTD beats Greedy on taxi dissatisfaction on every single seed.
    for nstd_td, greedy_td in zip(td_series["NSTD-P"], td_series["Greedy"]):
        assert nstd_td < greedy_td
    wins = ordering_consistency(td_series)
    assert wins["Greedy"] == 0.0
