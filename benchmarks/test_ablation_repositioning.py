"""Ablation: idle-taxi repositioning (an extension beyond the paper).

The paper parks idle taxis at their last dropoff.  Cruising back toward
demand attacks the deadhead cost directly; this bench compares parking,
drifting to the city centre, and drifting to the recent-demand centroid
under the stable dispatcher.
"""

from benchmarks.conftest import scale_factor
from repro.analysis import format_table
from repro.dispatch import nstd_p
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance, Point
from repro.simulation import DriftToAnchor, DriftToRecentDemand, Simulator
from repro.trace import boston_profile


def run_repositioning_comparison():
    oracle = EuclideanDistance()
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_factor(0.04), seed=29, hours=(7.0, 12.0))
    fleet, requests = build_workload(profile, scale)
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    policies = (
        ("parked", None),
        ("drift-to-centre", DriftToAnchor(Point(0.0, 0.0))),
        ("drift-to-demand", DriftToRecentDemand(window=60)),
    )
    rows = []
    for label, policy in policies:
        result = Simulator(
            nstd_p(oracle, sim_config.dispatch), oracle, sim_config, repositioning=policy
        ).run(fleet, requests)
        summary = result.summary()
        rows.append(
            [
                label,
                summary["service_rate"],
                summary["mean_dispatch_delay_min"],
                summary["mean_passenger_dissatisfaction"],
                summary["mean_taxi_dissatisfaction"],
            ]
        )
    return rows


def test_ablation_repositioning(benchmark, figure_report_sink):
    rows = benchmark.pedantic(run_repositioning_comparison, rounds=1, iterations=1)
    report = "== Ablation — idle repositioning (NSTD-P, Boston) ==\n" + format_table(
        ["policy", "service_rate", "mean_delay_min", "mean_pd", "mean_td"], rows
    )
    figure_report_sink("ablation_repositioning", report)
    by_label = {row[0]: row for row in rows}
    # Cruising toward demand must not hurt the served fraction.
    assert by_label["drift-to-demand"][1] >= by_label["parked"][1] - 0.02
