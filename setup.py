"""Legacy setup shim.

Allows `pip install -e . --no-use-pep517` in offline environments where
the `wheel` package (needed by the PEP 517 editable path) is missing.
"""
from setuptools import setup

setup()
