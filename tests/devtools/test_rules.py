"""Fixture-driven rule tests.

Every rule has a known-bad fixture that must fire at exact (rule, line)
coordinates and a known-good twin that must stay silent — both under
``tests/devtools/fixtures/``.  The bad fixtures are linted with
``select=[rule]`` so each case isolates its own rule; the good fixtures
are additionally checked against the *full* rule set, so a "good"
example is good under every invariant at once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools import lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (bad fixture, expected finding lines, good fixture)
CASES = [
    ("REP001", "rep001_bad.py", [9, 10, 11], "rep001_good.py"),
    ("REP002", "rep002_bad.py", [9, 10, 11], "rep002_good.py"),
    ("REP003", "rep003_bad.py", [9], "rep003_good.py"),
    ("REP004", "rep004_bad.py", [9, 13], "rep004_good.py"),
    ("REP005", "rep005_bad.py", [11, 12], "rep005_good.py"),
    ("REP006", "rep006_bad.py", [5, 7], "rep006_good.py"),
    ("REP007", "rep007_bad.py", [4, 9, 12], "rep007_good.py"),
    ("REP008", "rep008_bad.py", [17, 36, 44, 60, 66], "rep008_good.py"),
    ("REP009", "rep009_bad.py", [15, 19, 21, 30], "rep009_good.py"),
    ("REP010", "rep010_bad.py", [22, 28], "rep010_good.py"),
]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "rule, bad, lines, good", CASES, ids=[case[0] for case in CASES]
    )
    def test_bad_fixture_flagged_at_exact_lines(self, rule, bad, lines, good):
        report = lint_paths([FIXTURES / bad], select=[rule])
        assert [(f.rule, f.line) for f in report.findings] == [
            (rule, line) for line in lines
        ]
        assert not report.ok
        assert not report.suppressed

    @pytest.mark.parametrize(
        "rule, bad, lines, good", CASES, ids=[case[0] for case in CASES]
    )
    def test_good_fixture_clean_under_all_rules(self, rule, bad, lines, good):
        report = lint_paths([FIXTURES / good])
        assert report.ok, [f.render() for f in report.findings]
        assert not report.suppressed


class TestWallClock:
    def test_resilience_clock_modules_whitelisted(self):
        source = "import time\nelapsed = time.monotonic()\n"
        assert lint_source(source, "src/repro/resilience/budget.py").ok
        assert lint_source(source, "src/repro/resilience/ladder.py").ok
        assert not lint_source(source, "src/repro/simulation/engine.py").ok

    def test_from_import_alias_resolved(self):
        report = lint_source("from time import sleep\nsleep(1.0)\n", "x.py")
        assert [(f.rule, f.line) for f in report.findings] == [("REP001", 2)]


class TestSeededRng:
    def test_submodule_alias_resolved(self):
        report = lint_source(
            "import numpy.random as npr\nx = npr.rand()\n", "x.py"
        )
        assert [(f.rule, f.line) for f in report.findings] == [("REP002", 2)]

    def test_instance_methods_not_flagged(self):
        assert lint_source(
            "import random\nrng = random.Random(7)\nx = rng.random()\n", "x.py"
        ).ok


class TestCheckpointCooperative:
    def test_dispatcher_base_class_detected(self):
        source = (
            "class Mine(Dispatcher):\n"
            "    def dispatch(self, taxis, requests):\n"
            "        for t in taxis:\n"
            "            pass\n"
        )
        report = lint_source(source, "x.py", select=["REP003"])
        assert [(f.rule, f.line) for f in report.findings] == [("REP003", 2)]

    def test_loop_free_dispatch_not_flagged(self):
        source = (
            "class Mine(Dispatcher):\n"
            "    def dispatch(self, taxis, requests):\n"
            "        return None\n"
        )
        assert lint_source(source, "x.py", select=["REP003"]).ok


class TestFloatEquality:
    def test_final_attribute_names_the_quantity(self):
        report = lint_source(
            "def f(trip):\n    return trip.distance_km == 0.0\n", "x.py",
            select=["REP006"],
        )
        assert [(f.rule, f.line) for f in report.findings] == [("REP006", 2)]

    def test_array_size_and_shape_not_flagged(self):
        source = (
            "def f(distances, gap):\n"
            "    return distances.size == 0 or gap.shape != (2, 2)\n"
        )
        assert lint_source(source, "x.py", select=["REP006"]).ok


class TestBatchedSources:
    def test_pr1_swapped_operands_bug_is_caught(self):
        # The exact shape of the PR-1 regression: taxi/pickup operands
        # passed positionally, silently transposing the source rows.
        report = lint_paths([FIXTURES / "rep005_bad.py"], select=["REP005"])
        helper = report.findings[0]
        assert helper.rule == "REP005"
        assert "sources=" in helper.message and "targets=" in helper.message
        assert "oracle_pairwise(oracle, pickups, locations" in helper.snippet

    def test_kwargs_forwarding_skipped(self):
        assert lint_source(
            "def f(oracle, **kw):\n    return oracle.pairwise(**kw)\n", "x.py",
            select=["REP005"],
        ).ok
