"""The ``repro-lint`` command line: formats, selection, exit codes, and
the self-check that the shipped tree lints clean."""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main([str(FIXTURES / "rep001_good.py")]) == 0
        out = capsys.readouterr().out
        assert "0 findings (clean)" in out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "rep006_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "rep006_bad.py:5:8: REP006" in out
        assert "REP006: 2" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "no paths given" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "REP999", str(FIXTURES)]) == 2
        assert "REP999" in capsys.readouterr().err


class TestTextOutput:
    def test_select_limits_rules(self, capsys):
        assert main(["--select", "rep001", str(FIXTURES / "rep002_bad.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_show_suppressed_prints_waivers(self, capsys):
        assert main(["--show-suppressed", str(FIXTURES / "suppressions_ok.py")]) == 0
        out = capsys.readouterr().out
        assert "[suppressed: telemetry only; never feeds a decision]" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 11):
            assert f"REP{number:03d}" in out


class TestJsonOutput:
    def test_json_document_shape(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "rep006_bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"REP006": 2}
        assert [f["line"] for f in payload["findings"]] == [5, 7]
        assert all(f["rule"] == "REP006" for f in payload["findings"])

    def test_json_records_suppressions(self, capsys):
        assert main(["--format", "json", str(FIXTURES / "suppressions_ok.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert [s["suppression_reason"] for s in payload["suppressed"]] == [
            "telemetry only; never feeds a decision",
            "standalone comment covers the next line",
        ]


class TestSarifOutput:
    def test_sarif_document_shape(self, capsys):
        assert main(["--format", "sarif", str(FIXTURES / "rep006_bad.py")]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids[0] == "REP000"
        for number in range(1, 11):
            assert f"REP{number:03d}" in rule_ids

    def test_sarif_results_carry_locations(self, capsys):
        assert main(["--format", "sarif", str(FIXTURES / "rep006_bad.py")]) == 1
        [run] = json.loads(capsys.readouterr().out)["runs"]
        assert [r["ruleId"] for r in run["results"]] == ["REP006", "REP006"]
        region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        uri = run["results"][0]["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"].endswith("rep006_bad.py")

    def test_sarif_marks_suppressions_in_source(self, capsys):
        assert main(["--format", "sarif", str(FIXTURES / "suppressions_ok.py")]) == 0
        [run] = json.loads(capsys.readouterr().out)["runs"]
        suppressed = [r for r in run["results"] if r.get("suppressions")]
        assert suppressed, "waived findings must still appear, marked suppressed"
        for result in suppressed:
            [entry] = result["suppressions"]
            assert entry["kind"] == "inSource"
            assert entry["justification"]
        active = [r for r in run["results"] if not r.get("suppressions")]
        assert active == []

    def test_sarif_clean_run_exits_zero(self, capsys):
        assert main(["--format", "sarif", str(FIXTURES / "rep001_good.py")]) == 0
        [run] = json.loads(capsys.readouterr().out)["runs"]
        assert run["results"] == []


class TestSelfCheck:
    def test_library_tree_lints_clean(self, capsys):
        # The gate the CI runs: the shipped library must carry zero
        # unsuppressed findings under the full rule set.
        assert main([str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 findings (clean)" in out
