"""Suppression-comment semantics: reasoned waivers, mandatory reasons,
standalone coverage, and the unsuppressable meta rule."""

from __future__ import annotations

from pathlib import Path

from repro.devtools import lint_paths, lint_source
from repro.devtools.suppressions import SuppressionIndex

FIXTURES = Path(__file__).parent / "fixtures"


class TestReasonedSuppressions:
    def test_inline_and_standalone_directives_waive(self):
        report = lint_paths([FIXTURES / "suppressions_ok.py"])
        assert report.ok
        assert [(f.rule, f.line) for f in report.suppressed] == [
            ("REP001", 7),
            ("REP001", 12),
        ]

    def test_reasons_recorded_for_audit(self):
        report = lint_paths([FIXTURES / "suppressions_ok.py"])
        reasons = [f.suppression_reason for f in report.suppressed]
        assert reasons == [
            "telemetry only; never feeds a decision",
            "standalone comment covers the next line",
        ]
        assert all("[suppressed:" in f.render() for f in report.suppressed)

    def test_missing_reason_waives_nothing(self):
        report = lint_paths([FIXTURES / "suppressions_bad.py"])
        assert sorted((f.rule, f.line) for f in report.findings) == [
            ("REP000", 7),
            ("REP001", 7),
        ]
        assert not report.suppressed

    def test_multiple_rules_one_directive(self):
        source = (
            "import time\n"
            "import random\n"
            "# repro-lint: disable=REP001,REP002 chaos harness owns both streams\n"
            "x = time.time() + random.random()\n"
        )
        report = lint_source(source, "x.py")
        assert report.ok
        assert sorted(f.rule for f in report.suppressed) == ["REP001", "REP002"]

    def test_directive_does_not_leak_past_next_line(self):
        source = (
            "import time\n"
            "# repro-lint: disable=REP001 covers only the next line\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        report = lint_source(source, "x.py")
        assert [(f.rule, f.line) for f in report.findings] == [("REP001", 4)]
        assert [(f.rule, f.line) for f in report.suppressed] == [("REP001", 3)]

    def test_unrelated_rule_not_waived(self):
        source = "import time\nx = time.time()  # repro-lint: disable=REP006 wrong rule id\n"
        report = lint_source(source, "x.py")
        # The REP001 finding survives, and the directive itself is now
        # reported as stale: REP006 never fires on that line.
        assert [(f.rule, f.line) for f in report.findings] == [
            ("REP000", 2),
            ("REP001", 2),
        ]
        assert "unused suppression" in report.findings[0].message


class TestMetaRule:
    def test_rep000_never_suppressible(self):
        index = SuppressionIndex(
            "x = 1  # repro-lint: disable=REP000 trying to waive the meta rule\n",
            "x.py",
        )
        assert index.lookup("REP000", 1) is None

    def test_syntax_error_reported_as_rep000(self):
        report = lint_source("def oops(:\n", "broken.py")
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule == "REP000"
        assert finding.line == 1
        assert "does not parse" in finding.message
