"""Fixture: reasoned suppressions waive findings and stay auditable."""

import time


def telemetry_stamp() -> float:
    return time.time()  # repro-lint: disable=REP001 telemetry only; never feeds a decision


def frame_start() -> float:
    # repro-lint: disable=REP001 standalone comment covers the next line
    return time.time()
