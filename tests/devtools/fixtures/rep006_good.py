"""Known-good: thresholds and ranks instead of float equality (REP006)."""

import math


def same_spot(dist: float, fare: float, rank: int) -> bool:
    if dist <= 1e-9:
        return True
    if not math.isclose(fare, 1.5):
        return False
    return rank == 0
