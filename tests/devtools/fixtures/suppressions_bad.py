"""Fixture: a suppression without a reason waives nothing (REP000)."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=REP001
