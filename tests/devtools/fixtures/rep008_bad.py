"""Known-bad: durability contracts that drop or strand state (REP008)."""

from typing import Any


class DriftingCounter:
    """Regression shape: the PR-8 forgotten-attribute payload drift."""

    def __init__(self) -> None:
        self.ticks = 0
        self.skipped = 0

    def observe(self, ok: bool) -> None:
        if ok:
            self._tick()
        else:
            self.skipped += 1

    def _tick(self) -> None:
        self.ticks += 1

    def state_payload(self) -> dict[str, Any]:
        return {"ticks": self.ticks}

    def restore_state(self, payload: dict[str, Any]) -> None:
        self.ticks = payload["ticks"]


class OneWay:
    def __init__(self) -> None:
        self.total = 0

    def add(self, amount: int) -> None:
        self.total += amount

    def state_payload(self) -> dict[str, Any]:
        return {"total": self.total}

    def restore_state(self, payload: dict[str, Any]) -> None:
        return None


class StaleExclusion:
    DURABILITY_EXCLUSIONS = {"phantom": "attribute that is never mutated"}

    def __init__(self) -> None:
        self.count = 0

    def bump(self) -> None:
        self.count += 1

    def state_payload(self) -> dict[str, Any]:
        return {"count": self.count}

    def restore_state(self, payload: dict[str, Any]) -> None:
        self.count = payload["count"]


class EmptyReason:
    DURABILITY_EXCLUSIONS = {"scratch": ""}

    def __init__(self) -> None:
        self.scratch = 0

    def touch(self) -> None:
        self.scratch += 1

    def state_payload(self) -> dict[str, Any]:
        return {}

    def restore_state(self, payload: dict[str, Any]) -> None:
        return None
