"""Known-bad: broad handlers swallowing typed budget errors (REP004)."""

from collections.abc import Callable


def run_frame(step: Callable[[], None]) -> str:
    try:
        step()
    except Exception:
        return "swallowed"
    try:
        step()
    except:  # noqa: E722
        return "swallowed"
    return "ok"
