"""Known-bad: unpicklable or state-capturing pool submissions (REP009)."""

import random
from concurrent.futures import ProcessPoolExecutor
from functools import partial


def _work(seed: int) -> int:
    return seed * 2


def fan_out(seeds: list[int]) -> list[int]:
    rng = random.Random(7)

    def closure_worker(seed: int) -> int:
        return int(rng.random() * seed)

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(lambda s: s + 1, seed) for seed in seeds]
        futures.append(pool.submit(closure_worker, seeds[0]))
        futures.append(pool.submit(partial(_work, rng)))
        return [future.result() for future in futures]


class ShardEngine:
    def solve(self, payload: int) -> int:
        return payload

    def run(self, pool: ProcessPoolExecutor, payloads: list[int]) -> list[int]:
        return list(pool.map(self.solve, payloads))
