"""Known-good: operand roles named at every batched call site (REP005)."""

import itertools

from repro.geometry.batch import oracle_pairwise


def pickup_matrix(oracle: object, taxis: list, requests: list) -> object:
    pickups = [r.pickup for r in requests]
    locations = [t.location for t in taxis]
    for a, b in itertools.pairwise(pickups):
        _ = (a, b)
    return oracle_pairwise(oracle, sources=locations, targets=pickups, exact=True)
