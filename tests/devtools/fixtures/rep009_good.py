"""Known-good: module-level, capture-free pool submissions (REP009)."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial


def solve_payload(seed: int, scale: int = 1) -> int:
    return seed * scale


def fan_out(seeds: list[int]) -> list[int]:
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(solve_payload, seed) for seed in seeds]
        futures.append(pool.submit(partial(solve_payload, scale=3), 5))
        results = list(pool.map(solve_payload, seeds))
        return results + [future.result() for future in futures]
