"""Known-good: fully annotated public API (REP007)."""


def build_table(taxis: list[int], requests: list[int]) -> list[int]:
    return taxis + requests


class Table:
    def __init__(self, oracle: object):
        self.oracle = oracle

    def lookup(self, key: int) -> object:
        return self.oracle

    def _internal(self, key):
        return key
