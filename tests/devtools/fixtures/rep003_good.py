"""Known-good: the dispatch loop checkpoints every iteration (REP003)."""

from collections.abc import Sequence


class GreedyDispatcher:
    """Greedy assignment under a cooperative frame deadline."""

    def dispatch(self, taxis: Sequence[int], requests: Sequence[int]) -> list[int]:
        schedule = []
        for taxi in taxis:
            self.checkpoint("greedy:taxi")
            schedule.append(taxi)
        return schedule

    def checkpoint(self, label: str) -> None:
        pass
