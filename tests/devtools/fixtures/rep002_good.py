"""Known-good: every RNG stream is an explicitly seeded instance (REP002)."""

import random

import numpy as np


def draws(seed: int) -> float:
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random() + float(gen.random())
