"""Known-bad: public API without annotations (REP007)."""


def build_table(taxis, requests):
    return list(taxis) + list(requests)


class Table:
    def __init__(self, oracle):
        self.oracle = oracle

    def lookup(self, key: int):
        return self.oracle

    def _internal(self, key):
        return key
