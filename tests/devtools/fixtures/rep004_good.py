"""Known-good: budget errors escape every broad handler (REP004)."""

from collections.abc import Callable

from repro.core.errors import EnumerationBudgetError, FrameBudgetExceededError


def run_frame(step: Callable[[], None]) -> str:
    try:
        step()
    except (FrameBudgetExceededError, EnumerationBudgetError):
        raise
    except Exception:
        return "degraded"
    try:
        step()
    except Exception:
        raise
    return "ok"
