"""Known-bad: a dispatch loop that never checkpoints (REP003)."""

from collections.abc import Sequence


class GreedyDispatcher:
    """Assigns taxis greedily with no cooperative checkpoints."""

    def dispatch(self, taxis: Sequence[int], requests: Sequence[int]) -> list[int]:
        schedule = []
        for taxi in taxis:
            schedule.append(taxi)
        return schedule
