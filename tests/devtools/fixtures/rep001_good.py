"""Known-good: timing flows through the injectable resilience clock (REP001)."""


def frame_elapsed(clock_now: float, start: float) -> float:
    return clock_now - start
