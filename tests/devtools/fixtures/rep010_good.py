"""Known-good: every warm-state input mutation reaches a reset (REP010)."""

from typing import Any


def frame_state_from_cold(frame: dict[str, Any]) -> dict[str, Any]:
    return dict(frame)


class WarmSolver:
    def __init__(self) -> None:
        self._warm_state: dict[str, Any] | None = None
        self.alpha = 1.0
        self.bias = 0.0

    def solve(self, frame: dict[str, Any]) -> dict[str, Any]:
        if self._warm_state is None:
            self._warm_state = frame_state_from_cold(frame)
        return {"alpha": self.alpha, "bias": self.bias, **self._warm_state}

    def set_alpha(self, alpha: float) -> None:
        self.alpha = alpha
        self.reset_warm_state()

    def set_bias(self, bias: float) -> None:
        self._retune(bias)

    def _retune(self, bias: float) -> None:
        self.bias = bias
        self._warm_state = None

    def reset_warm_state(self) -> None:
        self._warm_state = None
