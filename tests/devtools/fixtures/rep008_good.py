"""Known-good: full round-trip plus a reasoned exclusion (REP008)."""

import random
from typing import Any


class DurableCounter:
    """Round-trips mutated counters and declares its derived scratch state."""

    DURABILITY_EXCLUSIONS = {
        "_scratch": "derived per-frame buffer; rebuilt from ticks on first use",
    }

    def __init__(self, seed: int) -> None:
        self.ticks = 0
        self._rng = random.Random(seed)
        self._scratch: list[int] | None = None

    def observe(self) -> None:
        self.ticks += 1
        self._scratch = [self.ticks, int(self._rng.random() * 10)]

    def state_payload(self) -> dict[str, Any]:
        return {"ticks": self.ticks, "rng": list(self._rng.getstate()[1])}

    def restore_state(self, payload: dict[str, Any]) -> None:
        self.ticks = payload["ticks"]
        self._rng.setstate((3, tuple(payload["rng"]), None))
        self._scratch = None
