"""Known-bad: exact float equality on distances and fares (REP006)."""


def same_spot(dist: float, fare: float, rank: int) -> bool:
    if dist == 0.0:
        return True
    if fare != 1.5:
        return False
    return rank == 0
