"""Known-bad: wall-clock reads in algorithm code (REP001)."""

import time
from datetime import datetime
from time import perf_counter


def frame_elapsed(start: float) -> float:
    now = time.time()
    tick = perf_counter()
    stamp = datetime.now()
    return (now - start) + tick + stamp.timestamp()
