"""Known-bad: unseeded global RNG streams (REP002)."""

import random

import numpy as np


def jitter(scale: float) -> float:
    a = random.random()
    b = float(np.random.rand())
    random.seed(13)
    return scale * (a + b)
