"""Known-bad: the PR-1 source-row bug — positional pairwise operands (REP005)."""

from repro.geometry.batch import oracle_pairwise


def pickup_matrix(oracle: object, taxis: list, requests: list) -> tuple:
    pickups = [r.pickup for r in requests]
    locations = [t.location for t in taxis]
    # Swapped roles compile fine positionally: pickups land as the matrix
    # rows where the scalar reference D(taxi, pickup) wants taxis.
    matrix = oracle_pairwise(oracle, pickups, locations, exact=True)
    rows = oracle.pairwise(locations, pickups)
    return matrix, rows
