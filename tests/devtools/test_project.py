"""Project-wide analysis: symbol table, mutation summaries, call graph,
budget-exception fixpoint, and the interprocedural rule tiers."""

from __future__ import annotations

import ast

import pytest

from repro.devtools import lint_source
from repro.devtools.context import FileContext
from repro.devtools.engine import lint_sources
from repro.devtools.project import ProjectContext, module_name_for_path


def _project(*entries: tuple[str, str]) -> ProjectContext:
    contexts = [
        FileContext.build(path, source, ast.parse(source)) for path, source in entries
    ]
    return ProjectContext.build(contexts)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert (
            module_name_for_path("src/repro/matching/sharding.py")
            == "repro.matching.sharding"
        )

    def test_package_init_maps_to_package(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"

    def test_bare_file_uses_stem(self):
        assert module_name_for_path("fixture.py") == "fixture"


class TestMutationSummaries:
    SOURCE = (
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.items = []\n"
        "        self.count = 0\n"
        "    def push(self, item):\n"
        "        self.items.append(item)\n"
        "        self._bump()\n"
        "    def _bump(self):\n"
        "        self.count += 1\n"
        "    def index(self, pairs):\n"
        "        for self.cursor in pairs:\n"
        "            self.table[self.cursor] = 1\n"
    )

    def test_all_mutation_kinds_recorded(self):
        project = _project(("w.py", self.SOURCE))
        widget = project.classes[0]
        assert set(widget.mutations) == {"items", "count", "cursor", "table"}
        kinds = {attr: {s.kind for s in sites} for attr, sites in widget.mutations.items()}
        assert kinds["items"] == {"assign", "call"}  # __init__ assign + .append
        assert kinds["count"] == {"assign", "augassign"}
        assert kinds["cursor"] == {"loop"}
        assert kinds["table"] == {"item"}

    def test_helper_method_mutations_attributed(self):
        project = _project(("w.py", self.SOURCE))
        widget = project.classes[0]
        methods = {s.method for s in widget.mutations["count"]}
        assert methods == {"__init__", "_bump"}

    def test_self_call_closure_reaches_helpers(self):
        project = _project(("w.py", self.SOURCE))
        widget = project.classes[0]
        assert widget.self_call_closure(["push"]) == {"push", "_bump"}
        assert widget.attrs_mutated_in(widget.self_call_closure(["push"])) == {
            "items",
            "count",
        }


class TestCallResolution:
    def test_cross_module_alias_resolved(self):
        helpers = "def solve(x):\n    return x\n"
        user = (
            "from helpers import solve as sv\n"
            "def run(x):\n"
            "    return sv(x)\n"
        )
        project = _project(("helpers.py", helpers), ("user.py", user))
        run = next(fn for fn in project.functions if fn.name == "run")
        [site] = [s for s in run.calls]
        assert not site.unknown
        assert [t.qualname for t in site.targets] == ["solve"]

    def test_unresolved_local_callable_is_unknown(self):
        project = _project(("u.py", "def run(step):\n    return step()\n"))
        run = project.functions[0]
        [site] = run.calls
        assert site.unknown and not site.targets

    def test_stdlib_calls_are_inert(self):
        project = _project(
            ("u.py", "import json\ndef run(x):\n    return json.dumps(x)\n")
        )
        [site] = project.functions[0].calls
        assert not site.unknown and not site.targets


class TestBudgetFixpoint:
    CHAIN = (
        "class FrameBudgetExceededError(Exception):\n"
        "    pass\n"
        "def leaf():\n"
        "    raise FrameBudgetExceededError()\n"
        "def middle():\n"
        "    return leaf()\n"
        "def top():\n"
        "    return middle()\n"
        "def guarded():\n"
        "    try:\n"
        "        return middle()\n"
        "    except FrameBudgetExceededError:\n"
        "        return None\n"
    )

    def test_raise_propagates_transitively(self):
        project = _project(("c.py", self.CHAIN))
        by_name = {fn.name: fn for fn in project.functions}
        for name in ("leaf", "middle", "top"):
            assert project.budget_raises(by_name[name]) == {
                "FrameBudgetExceededError"
            }, name

    def test_named_handler_stops_propagation(self):
        project = _project(("c.py", self.CHAIN))
        by_name = {fn.name: fn for fn in project.functions}
        assert project.budget_raises(by_name["guarded"]) == frozenset()

    def test_bare_reraise_does_not_guard(self):
        source = (
            "class EnumerationBudgetError(Exception):\n"
            "    pass\n"
            "def leaf():\n"
            "    raise EnumerationBudgetError()\n"
            "def relay():\n"
            "    try:\n"
            "        return leaf()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        project = _project(("r.py", source))
        relay = next(fn for fn in project.functions if fn.name == "relay")
        assert project.budget_raises(relay) == {"EnumerationBudgetError"}


class TestInterproceduralRep004:
    def test_swallow_three_calls_deep_is_flagged(self):
        helpers = (
            "def checkpoint(budget):\n"
            "    raise FrameBudgetExceededError()\n"
        )
        caller = (
            "from helpers import checkpoint\n"
            "def stage(budget):\n"
            "    return checkpoint(budget)\n"
            "def frame(budget):\n"
            "    try:\n"
            "        return stage(budget)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        report = lint_sources(
            [("helpers.py", helpers), ("caller.py", caller)], select=["REP004"]
        )
        assert [(f.rule, f.path, f.line) for f in report.findings] == [
            ("REP004", "caller.py", 7)
        ]
        assert "call graph" in report.findings[0].message

    def test_provably_inert_try_body_is_exempt(self):
        source = (
            "import json\n"
            "def load(path):\n"
            "    try:\n"
            "        return json.loads(path)\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert lint_source(source, "x.py", select=["REP004"]).ok

    def test_single_file_unknown_calls_stay_conservative(self):
        source = (
            "def frame(step):\n"
            "    try:\n"
            "        return step()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        report = lint_source(source, "x.py", select=["REP004"])
        assert [(f.rule, f.line) for f in report.findings] == [("REP004", 4)]


class TestInterproceduralRep002:
    def test_call_site_omitting_none_default_seed_flagged(self):
        maker = (
            "import random\n"
            "def make_rng(seed=None):\n"
            "    return random.Random(seed)\n"
        )
        user = (
            "from maker import make_rng\n"
            "def run():\n"
            "    return make_rng()\n"
            "def run_seeded(cfg):\n"
            "    return make_rng(cfg.seed)\n"
        )
        report = lint_sources([("maker.py", maker), ("user.py", user)], select=["REP002"])
        assert [(f.rule, f.path, f.line) for f in report.findings] == [
            ("REP002", "user.py", 3)
        ]
        assert "omits `seed`" in report.findings[0].message

    def test_unseeded_constructions_flagged_per_file(self):
        source = (
            "import os\n"
            "import random\n"
            "from numpy.random import default_rng\n"
            "a = random.Random()\n"
            "b = random.Random(None)\n"
            "c = default_rng(int.from_bytes(os.urandom(4), 'big'))\n"
        )
        report = lint_source(source, "x.py", select=["REP002"])
        assert [(f.rule, f.line) for f in report.findings] == [
            ("REP002", 4),
            ("REP002", 5),
            ("REP002", 6),
        ]

    def test_rebound_parameter_not_flagged(self):
        source = (
            "import random\n"
            "def make_rng(seed=None):\n"
            "    if seed is None:\n"
            "        seed = 0\n"
            "    return random.Random(seed)\n"
            "def run():\n"
            "    return make_rng()\n"
        )
        assert lint_source(source, "x.py", select=["REP002"]).ok


class TestUnusedSuppressions:
    def test_stale_directive_reported(self):
        source = "x = 1  # repro-lint: disable=REP001 nothing fires here\n"
        report = lint_source(source, "x.py")
        assert [(f.rule, f.line) for f in report.findings] == [("REP000", 1)]
        assert "unused suppression" in report.findings[0].message

    def test_unknown_rule_id_reported(self):
        source = "x = 1  # repro-lint: disable=REP999 typo in the id\n"
        report = lint_source(source, "x.py")
        assert [(f.rule, f.line) for f in report.findings] == [("REP000", 1)]
        assert "unknown rule id" in report.findings[0].message

    def test_used_directive_not_reported(self):
        source = "import time\nx = time.time()  # repro-lint: disable=REP001 fixture clock\n"
        report = lint_source(source, "x.py")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["REP001"]

    def test_partial_select_cannot_judge_other_rules(self):
        # Under --select REP006 the REP001 directive may or may not be
        # stale — the rule never ran — so it must not be reported.
        source = "import time\nx = time.time()  # repro-lint: disable=REP001 fixture clock\n"
        report = lint_source(source, "x.py", select=["REP006"])
        assert report.ok

    @pytest.mark.parametrize("rule", ["REP001"])
    def test_stale_and_live_mix(self, rule):
        source = (
            "import time\n"
            "# repro-lint: disable=REP001 covers the next line only\n"
            "a = time.time()\n"
            "b = 1  # repro-lint: disable=REP001 stale on this line\n"
        )
        report = lint_source(source, "x.py")
        assert [(f.rule, f.line) for f in report.findings] == [("REP000", 4)]
        assert [(f.rule, f.line) for f in report.suppressed] == [(rule, 3)]
