"""Engine plumbing: file discovery, report aggregation, selection errors."""

from __future__ import annotations

import pytest

from repro.devtools import all_rules, lint_paths, lint_source
from repro.devtools.engine import iter_python_files


class TestFileDiscovery:
    def test_caches_and_non_python_skipped(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("x = 1\n")
        git = tmp_path / ".git"
        git.mkdir()
        (git / "hook.py").write_text("x = 1\n")
        assert iter_python_files([tmp_path]) == [tmp_path / "keep.py"]

    def test_files_and_dirs_deduplicated(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert iter_python_files([tmp_path, target, target]) == [target]

    def test_unreadable_file_is_a_meta_finding(self, tmp_path):
        report = lint_paths([tmp_path / "missing.py"])
        assert [f.rule for f in report.findings] == ["REP000"]
        assert "unreadable" in report.findings[0].message


class TestReportAggregation:
    def test_files_checked_accumulates(self, tmp_path):
        for name in ("a.py", "b.py"):
            (tmp_path / name).write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert report.ok

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nx = time.time()\n")
        (tmp_path / "a.py").write_text("import time\ny = time.time()\n")
        report = lint_paths([tmp_path])
        assert [f.path for f in report.findings] == [
            str(tmp_path / "a.py"),
            str(tmp_path / "b.py"),
        ]


class TestRuleSelection:
    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="REP999"):
            lint_source("x = 1\n", "x.py", select=["REP999"])

    def test_registry_is_complete(self):
        assert sorted(all_rules()) == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
            "REP010",
        ]
        for cls in all_rules().values():
            assert cls.summary and cls.convention
