"""Unit tests for empirical CDFs."""

import numpy as np
import pytest

from repro.analysis import empirical_cdf


class TestEmpiricalCDF:
    def test_basic_fractions(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.5) == 0.5
        assert cdf.at(4.0) == 1.0
        assert cdf.at(100.0) == 1.0

    def test_unsorted_input(self):
        cdf = empirical_cdf([3.0, 1.0, 2.0])
        assert list(cdf.values) == [1.0, 2.0, 3.0]

    def test_quantiles(self):
        cdf = empirical_cdf(list(range(1, 101)))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(0.95) == 95
        assert cdf.quantile(1.0) == 100
        assert cdf.median == 50

    def test_quantile_bounds(self):
        cdf = empirical_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty(self):
        cdf = empirical_cdf([])
        assert cdf.n == 0
        assert cdf.at(3.0) == 0.0
        assert cdf.mean == 0.0
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_mean(self):
        assert empirical_cdf([1.0, 3.0]).mean == 2.0

    def test_sample_points(self):
        cdf = empirical_cdf([1.0, 2.0])
        points = cdf.sample_points([0.0, 1.5, 3.0])
        assert points == [(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(0)
        cdf = empirical_cdf(rng.normal(0, 5, 200).tolist())
        grid = np.linspace(-15, 15, 50)
        values = [cdf.at(float(x)) for x in grid]
        assert all(a <= b for a, b in zip(values, values[1:]))
