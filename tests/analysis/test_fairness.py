"""Unit tests for driver-income fairness metrics."""

import pytest

from repro.analysis import driver_income_report, gini, jain_index
from repro.simulation.engine import SimulationResult
from repro.simulation.events import TaxiStats


class TestGini:
    def test_perfect_equality(self):
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_single_winner(self):
        # One of n drivers takes all: G = (n-1)/n.
        assert gini([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.75)

    def test_known_value(self):
        # Classic example: [1, 2, 3, 4] has G = 0.25.
        assert gini([1.0, 2.0, 3.0, 4.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = [1.0, 4.0, 2.5, 7.0]
        assert gini(values) == pytest.approx(gini([10 * v for v in values]))

    def test_all_zero(self):
        assert gini([0.0, 0.0]) == 0.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            gini([])
        with pytest.raises(ValueError):
            gini([-1.0, 2.0])


class TestJain:
    def test_even(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner(self):
        assert jain_index([0.0, 0.0, 6.0]) == pytest.approx(1.0 / 3.0)

    def test_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestDriverIncomeReport:
    def _result(self, revenues):
        stats = {
            i: TaxiStats(taxi_id=i, driven_km=2.0 * r + 1.0, rides=1, requests_served=1, revenue_km=r)
            for i, r in enumerate(revenues)
        }
        return SimulationResult(
            dispatcher_name="X",
            outcomes=[],
            assignments=[],
            frames_run=0,
            final_time_s=0.0,
            taxi_stats=stats,
        )

    def test_report_keys_and_values(self):
        report = driver_income_report({"A": self._result([2.0, 2.0]), "B": self._result([0.0, 4.0])})
        assert report["A"]["revenue_gini"] == pytest.approx(0.0)
        assert report["B"]["revenue_gini"] == pytest.approx(0.5)
        assert report["B"]["idle_driver_share"] == pytest.approx(0.5)
        assert report["A"]["mean_revenue_km"] == pytest.approx(2.0)

    def test_empty_fleet(self):
        report = driver_income_report({"A": self._result([])})
        assert report["A"]["revenue_jain"] == 1.0
