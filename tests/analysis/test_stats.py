"""Unit tests for the multi-seed statistics helpers."""

import numpy as np
import pytest

from repro.analysis import (
    MetricSummary,
    ordering_consistency,
    replicate,
    summarize_samples,
)


class TestSummarizeSamples:
    def test_known_values(self):
        summary = summarize_samples([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.n == 4
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_single_sample_degenerate_interval(self):
        summary = summarize_samples([7.0])
        assert summary.ci_low == summary.ci_high == 7.0
        assert summary.half_width == 0.0

    def test_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        trials = 200
        for _ in range(trials):
            samples = rng.normal(10.0, 2.0, size=8).tolist()
            summary = summarize_samples(samples, confidence=0.95)
            if summary.ci_low <= 10.0 <= summary.ci_high:
                hits += 1
        assert hits / trials > 0.9

    def test_higher_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 2.5, 1.5]
        narrow = summarize_samples(samples, confidence=0.8)
        wide = summarize_samples(samples, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_overlaps(self):
        a = MetricSummary(1.0, 0.1, 0.9, 1.1, 5, 0.95)
        b = MetricSummary(1.05, 0.1, 0.95, 1.15, 5, 0.95)
        c = MetricSummary(2.0, 0.1, 1.9, 2.1, 5, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    @pytest.mark.parametrize("bad", [[], None])
    def test_rejects_empty(self, bad):
        with pytest.raises((ValueError, TypeError)):
            summarize_samples(bad)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            summarize_samples([1.0, 2.0], confidence=1.5)


class TestReplicate:
    def test_collects_metrics_per_seed(self):
        def run(seed):
            return {"a": float(seed), "b": 2.0 * seed}

        summaries = replicate(run, seeds=[1, 2, 3])
        assert summaries["a"].mean == pytest.approx(2.0)
        assert summaries["b"].mean == pytest.approx(4.0)
        assert summaries["a"].n == 3

    def test_rejects_inconsistent_keys(self):
        def run(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate(run, seeds=[0, 1])

    def test_rejects_no_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"a": 1.0}, seeds=[])


class TestOrderingConsistency:
    def test_clear_winner(self):
        wins = ordering_consistency({"x": [1, 1, 1], "y": [2, 2, 2]})
        assert wins == {"x": 1.0, "y": 0.0}

    def test_larger_is_better_mode(self):
        wins = ordering_consistency(
            {"x": [1, 3], "y": [2, 2]}, smaller_is_better=False
        )
        assert wins == {"x": 0.5, "y": 0.5}

    def test_ties_count_for_nobody(self):
        wins = ordering_consistency({"x": [1.0], "y": [1.0]})
        assert wins == {"x": 0.0, "y": 0.0}

    def test_rejects_ragged_input(self):
        with pytest.raises(ValueError):
            ordering_consistency({"x": [1.0], "y": [1.0, 2.0]})

    def test_empty(self):
        assert ordering_consistency({}) == {}
