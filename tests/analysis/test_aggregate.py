"""Unit tests for hourly and sweep aggregation."""

import pytest

from repro.analysis import hourly_averages, summarize_by_label
from repro.simulation.engine import SimulationResult
from repro.simulation.events import AssignmentRecord, RequestOutcome


def outcome(rid, hour, delay_min=None, pd=None):
    o = RequestOutcome(request_id=rid, request_time_s=hour * 3600.0 + 10.0)
    if delay_min is not None:
        o.dispatch_time_s = o.request_time_s + delay_min * 60.0
        o.passenger_dissatisfaction = pd
    return o


def record(hour, td):
    return AssignmentRecord(
        frame_time_s=hour * 3600.0 + 30.0,
        taxi_id=0,
        request_ids=(0,),
        taxi_dissatisfaction=td,
        total_drive_km=1.0,
        revenue_km=1.0,
    )


class TestHourlyAverages:
    def _result(self):
        return SimulationResult(
            dispatcher_name="X",
            outcomes=[
                outcome(0, 9, delay_min=2.0, pd=1.0),
                outcome(1, 9, delay_min=4.0, pd=3.0),
                outcome(2, 3, delay_min=1.0, pd=0.5),
                outcome(3, 3),  # unserved
            ],
            assignments=[record(9, -2.0), record(9, -4.0), record(3, 0.0)],
            frames_run=1,
            final_time_s=0.0,
        )

    def test_bucketing(self):
        stats = hourly_averages(self._result())
        assert stats[9]["mean_dispatch_delay_min"] == pytest.approx(3.0)
        assert stats[9]["mean_passenger_dissatisfaction"] == pytest.approx(2.0)
        assert stats[9]["mean_taxi_dissatisfaction"] == pytest.approx(-3.0)
        assert stats[3]["mean_dispatch_delay_min"] == pytest.approx(1.0)

    def test_empty_hours_are_zero(self):
        stats = hourly_averages(self._result())
        assert stats[5]["mean_dispatch_delay_min"] == 0.0
        assert len(stats) == 24

    def test_unserved_requests_ignored_in_delay(self):
        stats = hourly_averages(self._result())
        assert stats[3]["requests"] == 1


class TestSummarizeByLabel:
    def test_maps_labels_to_summaries(self):
        result = SimulationResult(
            dispatcher_name="X", outcomes=[], assignments=[], frames_run=0, final_time_s=0.0
        )
        summaries = summarize_by_label([("a", result), ("b", result)])
        assert set(summaries) == {"a", "b"}
        assert summaries["a"]["service_rate"] == 0.0
