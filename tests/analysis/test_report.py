"""Unit tests for the text-table renderers."""

from repro.analysis import (
    empirical_cdf,
    format_cdf_table,
    format_summary_table,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1.235" in text
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in text

    def test_non_float_cells_passthrough(self):
        text = format_table(["a", "b"], [[1, "x"]])
        assert "x" in text and "1" in text


class TestFormatCDFTable:
    def test_one_column_per_algorithm(self):
        series = {"A": empirical_cdf([1.0, 2.0]), "B": empirical_cdf([2.0, 4.0])}
        text = format_cdf_table(series, [1.0, 2.0, 4.0], value_label="km")
        lines = text.splitlines()
        assert lines[0].split() == ["km", "A", "B"]
        assert len(lines) == 2 + 3


class TestFormatSummaryTable:
    def test_rows_per_algorithm(self):
        summaries = {
            "NSTD-P": {"service_rate": 1.0, "mean": 2.0},
            "Greedy": {"service_rate": 0.9, "mean": 3.0},
        }
        text = format_summary_table(summaries)
        assert "NSTD-P" in text and "Greedy" in text
        assert text.splitlines()[0].split() == ["algorithm", "service_rate", "mean"]

    def test_empty(self):
        assert format_summary_table({}) == "(no results)"
