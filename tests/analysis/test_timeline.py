"""Unit tests for the load-timeline analysis."""

import pytest

from repro.analysis import downsample_frames, load_profile, timeline_table
from repro.simulation.engine import SimulationResult
from repro.simulation.events import FrameStats, RequestOutcome


def frame(t, queue, idle, dispatched=0, abandoned=0):
    return FrameStats(
        time_s=t,
        queue_length=queue,
        idle_taxis=idle,
        dispatched_requests=dispatched,
        dispatched_taxis=dispatched,
        abandoned=abandoned,
    )


def result_with(frames, n_outcomes=4):
    return SimulationResult(
        dispatcher_name="X",
        outcomes=[RequestOutcome(request_id=i, request_time_s=0.0) for i in range(n_outcomes)],
        assignments=[],
        frames_run=len(frames),
        final_time_s=frames[-1].time_s if frames else 0.0,
        frame_stats=list(frames),
    )


class TestDownsample:
    def test_aggregation(self):
        frames = [frame(60.0 * i, queue=i, idle=2, dispatched=1) for i in range(4)]
        windows = downsample_frames(frames, buckets=2)
        assert len(windows) == 2
        assert windows[0]["mean_queue"] == pytest.approx(0.5)
        assert windows[1]["dispatched"] == 2.0

    def test_empty(self):
        assert downsample_frames([], buckets=4) == []

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            downsample_frames([frame(0, 0, 0)], buckets=0)

    def test_single_frame(self):
        windows = downsample_frames([frame(120.0, 3, 1)], buckets=5)
        assert len(windows) == 1
        assert windows[0]["mean_queue"] == 3.0


class TestTimelineTable:
    def test_renders_windows(self):
        frames = [frame(3600.0 + 60.0 * i, queue=5, idle=1, abandoned=1) for i in range(10)]
        text = timeline_table(result_with(frames), buckets=2)
        assert "load timeline — X" in text
        assert "01:" in text  # windows start in hour 1
        assert "mean_queue" in text


class TestLoadProfile:
    def test_indicators(self):
        frames = [frame(0, 2, 1), frame(60, 6, 0, abandoned=2)]
        profile = load_profile(result_with(frames, n_outcomes=8))
        assert profile["peak_queue"] == 6.0
        assert profile["mean_queue"] == pytest.approx(4.0)
        assert profile["abandonment_rate"] == pytest.approx(0.25)

    def test_empty(self):
        profile = load_profile(result_with([], n_outcomes=0))
        assert profile == {"peak_queue": 0.0, "mean_queue": 0.0, "abandonment_rate": 0.0}
