"""Unit tests for planar points."""

import pytest

from repro.geometry import ORIGIN, Point


class TestPoint:
    def test_euclidean_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, 4)) == pytest.approx(7.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.0, 0.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translate(self):
        assert Point(1, 1).translate(-1, 2) == Point(0, 3)

    def test_as_tuple_and_iter(self):
        point = Point(1.0, 2.0)
        assert point.as_tuple() == (1.0, 2.0)
        x, y = point
        assert (x, y) == (1.0, 2.0)

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_origin_constant(self):
        assert ORIGIN == Point(0.0, 0.0)
