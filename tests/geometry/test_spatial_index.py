"""Unit tests for the grid spatial index, including the degenerate cases
that previously caused unbounded ring expansion."""

import numpy as np
import pytest

from repro.geometry import EuclideanDistance, GridSpatialIndex, ManhattanDistance, Point


def brute_force_nearest(items, point, k, oracle):
    ranked = sorted(
        ((oracle.distance(point, p), repr(key), key) for key, p in items.items())
    )
    return [(key, d) for d, _, key in ranked[:k]]


class TestBasicOperations:
    def test_insert_and_len(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("a", Point(0, 0))
        index.insert("b", Point(5, 5))
        assert len(index) == 2
        assert "a" in index
        assert set(index) == {"a", "b"}

    def test_reinsert_moves(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("a", Point(0, 0))
        index.insert("a", Point(9, 9))
        assert len(index) == 1
        assert index.point_of("a") == Point(9, 9)

    def test_remove(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("a", Point(0, 0))
        index.remove("a")
        assert len(index) == 0
        with pytest.raises(KeyError):
            index.remove("a")

    def test_move_requires_existing(self):
        index = GridSpatialIndex(cell_size=1.0)
        with pytest.raises(KeyError):
            index.move("missing", Point(1, 1))

    def test_clear(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.bulk_load([("a", Point(0, 0)), ("b", Point(1, 1))])
        index.clear()
        assert len(index) == 0

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridSpatialIndex(cell_size=0.0)


class TestNearest:
    def test_empty_index(self):
        assert GridSpatialIndex().nearest(Point(0, 0)) == []

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            GridSpatialIndex().nearest(Point(0, 0), k=0)

    def test_single_item(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("only", Point(3, 4))
        assert index.nearest(Point(0, 0)) == [("only", pytest.approx(5.0))]

    def test_exactness_against_brute_force(self):
        rng = np.random.default_rng(42)
        oracle = EuclideanDistance()
        items = {i: Point(*rng.uniform(-10, 10, 2)) for i in range(60)}
        index = GridSpatialIndex(cell_size=1.7, oracle=oracle)
        index.bulk_load(items.items())
        for _ in range(50):
            query = Point(*rng.uniform(-15, 15, 2))
            k = int(rng.integers(1, 8))
            expected = brute_force_nearest(items, query, k, oracle)
            got = index.nearest(query, k=k)
            assert [key for key, _ in got] == [key for key, _ in expected]

    def test_far_away_query_terminates(self):
        # Regression: one item + tiny cells used to force millions of rings.
        index = GridSpatialIndex(cell_size=1e-6)
        index.insert("t", Point(0.0, 0.0))
        assert index.nearest(Point(1000.0, 1000.0), k=1)[0][0] == "t"

    def test_k_larger_than_population(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.bulk_load([("a", Point(0, 0)), ("b", Point(1, 1))])
        assert len(index.nearest(Point(0, 0), k=10)) == 2

    def test_manhattan_oracle(self):
        oracle = ManhattanDistance()
        index = GridSpatialIndex(cell_size=1.0, oracle=oracle)
        index.bulk_load([("a", Point(2, 0)), ("b", Point(1.5, 1.4))])
        # Manhattan: a is 2.0 away, b is 2.9 away.
        assert index.nearest(Point(0, 0), k=1)[0][0] == "a"


class TestWithin:
    def test_radius_filter(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.bulk_load([("near", Point(1, 0)), ("far", Point(10, 0))])
        found = index.within(Point(0, 0), 5.0)
        assert [key for key, _ in found] == ["near"]

    def test_results_sorted_by_distance(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.bulk_load([("b", Point(2, 0)), ("a", Point(1, 0)), ("c", Point(3, 0))])
        found = index.within(Point(0, 0), 10.0)
        assert [key for key, _ in found] == ["a", "b", "c"]

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            GridSpatialIndex().within(Point(0, 0), -1.0)

    def test_boundary_inclusive(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("edge", Point(5, 0))
        assert index.within(Point(0, 0), 5.0) == [("edge", pytest.approx(5.0))]


class TestBoxCandidates:
    """``box_candidates`` is the unfiltered superset query the vectorized
    preference engine bulk-filters with a batched distance kernel."""

    def populated(self, n=60, seed=3, cell_size=1.0):
        rng = np.random.default_rng(seed)
        items = {f"t{i}": Point(*rng.uniform(-8, 8, 2)) for i in range(n)}
        index = GridSpatialIndex(cell_size=cell_size)
        index.bulk_load(items.items())
        return index, items

    def test_superset_of_within(self):
        index, items = self.populated()
        oracle = EuclideanDistance()
        for radius in (0.5, 2.0, 5.0):
            query = Point(0.3, -0.7)
            candidates = set(index.box_candidates(query, radius))
            inside = {
                key for key, p in items.items() if oracle.distance(query, p) <= radius
            }
            assert inside <= candidates

    def test_boundary_point_is_candidate(self):
        index = GridSpatialIndex(cell_size=1.0)
        index.insert("edge", Point(5.0, 0.0))
        assert "edge" in index.box_candidates(Point(0.0, 0.0), 5.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            GridSpatialIndex().box_candidates(Point(0, 0), -0.1)

    def test_infinite_radius_returns_everything(self):
        index, items = self.populated()
        assert set(index.box_candidates(Point(0, 0), float("inf"))) == set(items)

    def test_empty_index(self):
        assert GridSpatialIndex().box_candidates(Point(0, 0), 3.0) == []

    def test_tiny_cells_iterate_buckets_not_box(self):
        # radius/cell_size is huge, so the implementation must fall back to
        # scanning occupied buckets instead of the (2·reach+1)² box.
        index = GridSpatialIndex(cell_size=1e-4)
        index.bulk_load([("a", Point(0, 0)), ("b", Point(0.5, 0.5)), ("c", Point(50, 50))])
        assert set(index.box_candidates(Point(0, 0), 2.0)) == {"a", "b"}
