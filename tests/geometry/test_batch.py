"""Unit tests for the batched distance-kernel layer (`repro.geometry.batch`).

Covers the four built-in oracles plus the road network: exact agreement
with scalar ``distance`` for kernels flagged ``batch_exact``, tolerance
agreement for Haversine (NumPy trig is a few ulp off libm), empty-input
shapes, the non-finite-coordinate guard, asymmetric network distances,
and the scalar-fallback contract for third-party oracles.
"""

import math

import numpy as np
import pytest

from repro.geometry import (
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    Point,
    ScaledDistance,
    as_point_array,
    batch_kernels_exact,
    oracle_distances,
    oracle_paired,
    oracle_pairwise,
    supports_batch,
)
from repro.network import RoadNetwork

EXACT_ORACLES = [
    EuclideanDistance(),
    ManhattanDistance(),
    ScaledDistance(EuclideanDistance(), 1.6),
    ScaledDistance(ManhattanDistance(), 0.5),
]

A = [Point(0.0, 0.0), Point(1.25, -2.0), Point(3.0, 4.0), Point(-0.5, 0.5)]
B = [Point(2.0, 2.0), Point(-1.0, 0.75), Point(0.0, -3.5)]


class ScalarOnlyOracle:
    """A third-party oracle implementing only the scalar protocol."""

    def distance(self, a: Point, b: Point) -> float:
        return abs(a.x - b.x) + 2.0 * abs(a.y - b.y)


def scalar_matrix(oracle, points_a, points_b):
    return np.array([[oracle.distance(a, b) for b in points_b] for a in points_a])


class TestPairwise:
    @pytest.mark.parametrize("oracle", EXACT_ORACLES, ids=lambda o: repr(o))
    def test_exact_kernels_match_scalar_bitwise(self, oracle):
        expected = scalar_matrix(oracle, A, B)
        result = oracle.pairwise(A, B)
        assert result.shape == (len(A), len(B))
        assert np.array_equal(expected, result)

    def test_haversine_matches_scalar_to_tolerance(self):
        oracle = HaversineDistance()
        lonlat_a = [Point(-73.98, 40.75), Point(-73.95, 40.78), Point(0.0, 0.0)]
        lonlat_b = [Point(-71.06, 42.36), Point(-73.98, 40.75)]
        expected = scalar_matrix(oracle, lonlat_a, lonlat_b)
        result = oracle.pairwise(lonlat_a, lonlat_b)
        np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_empty_inputs(self):
        oracle = EuclideanDistance()
        assert oracle.pairwise([], B).shape == (0, len(B))
        assert oracle.pairwise(A, []).shape == (len(A), 0)
        assert oracle.pairwise([], []).shape == (0, 0)

    def test_non_finite_coordinate_rejected(self):
        oracle = EuclideanDistance()
        with pytest.raises(ValueError, match="non-finite"):
            oracle.pairwise([Point(math.nan, 0.0)], B)
        with pytest.raises(ValueError, match="non-finite"):
            oracle.pairwise(A, [Point(0.0, math.inf)])


class TestDistancesAndPaired:
    @pytest.mark.parametrize("oracle", EXACT_ORACLES, ids=lambda o: repr(o))
    def test_distances_is_pairwise_row(self, oracle):
        origin = Point(0.75, -1.5)
        row = oracle.distances(origin, B)
        assert row.shape == (len(B),)
        assert np.array_equal(row, oracle.pairwise([origin], B)[0])
        assert row.tolist() == [oracle.distance(origin, b) for b in B]

    @pytest.mark.parametrize("oracle", EXACT_ORACLES, ids=lambda o: repr(o))
    def test_paired_is_elementwise(self, oracle):
        pairs_b = B + [Point(9.0, 9.0)]
        result = oracle.paired(A, pairs_b)
        assert result.tolist() == [oracle.distance(a, b) for a, b in zip(A, pairs_b)]

    def test_paired_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            EuclideanDistance().paired(A, B)
        with pytest.raises(ValueError, match="length"):
            oracle_paired(ScalarOnlyOracle(), sources=A, targets=B)


class TestRoadNetworkBatch:
    @pytest.fixture()
    def network(self):
        # A one-way pair: 0 -> 1 is 1 km, 1 -> 0 must detour via 2 (4 km).
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        network.add_node(1, Point(1.0, 0.0))
        network.add_node(2, Point(0.5, 1.0))
        network.add_edge(0, 1, 1.0, oneway=True)
        network.add_edge(1, 2, 2.0)
        network.add_edge(2, 0, 2.0)
        return network

    def test_flagged_exact(self, network):
        assert batch_kernels_exact(network)

    def test_pairwise_matches_scalar_and_is_asymmetric(self, network):
        points = [Point(0.0, 0.1), Point(1.0, -0.1), Point(0.4, 0.9)]
        matrix = network.pairwise(points, points)
        expected = scalar_matrix(network, points, points)
        assert np.array_equal(matrix, expected)
        # One-way edge: node-0 -> node-1 is shorter than node-1 -> node-0.
        assert matrix[0, 1] < matrix[1, 0]

    def test_distances_and_paired_match_scalar(self, network):
        points = [Point(0.0, 0.0), Point(1.0, 0.0), Point(0.5, 1.0)]
        origin = Point(0.2, 0.0)
        assert network.distances(origin, points).tolist() == [
            network.distance(origin, p) for p in points
        ]
        assert network.paired(points, list(reversed(points))).tolist() == [
            network.distance(a, b) for a, b in zip(points, reversed(points))
        ]

    def test_same_node_pairs_use_planar_distance(self, network):
        # Both points snap to node 0; scalar path returns their direct
        # planar separation, and the batch path must agree exactly.
        a, b = Point(0.05, 0.0), Point(0.0, 0.05)
        assert network.pairwise([a], [b])[0, 0] == network.distance(a, b)

    def test_disconnected_pair_is_inf(self):
        network = RoadNetwork()
        network.add_node(0, Point(0.0, 0.0))
        network.add_node(1, Point(10.0, 0.0))
        assert network.pairwise([Point(0, 0)], [Point(10, 0)])[0, 0] == math.inf


class TestFallbackContract:
    def test_scalar_only_oracle_supported_everywhere(self):
        oracle = ScalarOnlyOracle()
        assert not supports_batch(oracle)
        assert not batch_kernels_exact(oracle)
        assert np.array_equal(
            oracle_pairwise(oracle, sources=A, targets=B, exact=True), scalar_matrix(oracle, A, B)
        )
        origin = Point(0.0, 1.0)
        assert oracle_distances(oracle, origin, targets=B).tolist() == [
            oracle.distance(origin, b) for b in B
        ]
        assert oracle_paired(oracle, sources=A, targets=A).tolist() == [0.0] * len(A)

    def test_exact_flag_gates_inexact_kernels(self):
        # Haversine has kernels but no exactness contract: exact=True must
        # route through scalar distance calls instead.
        oracle = HaversineDistance()
        assert supports_batch(oracle) and not batch_kernels_exact(oracle)
        points_a = [Point(-73.98, 40.75), Point(-73.95, 40.78)]
        points_b = [Point(-71.06, 42.36)]
        exact = oracle_pairwise(oracle, sources=points_a, targets=points_b, exact=True)
        assert exact.tolist() == scalar_matrix(oracle, points_a, points_b).tolist()
        fast = oracle_pairwise(oracle, sources=points_a, targets=points_b)
        np.testing.assert_allclose(fast, exact, rtol=1e-12)

    def test_scaled_exactness_follows_base(self):
        assert batch_kernels_exact(ScaledDistance(EuclideanDistance(), 1.3))
        assert not batch_kernels_exact(ScaledDistance(HaversineDistance(), 1.3))
        assert batch_kernels_exact(ScaledDistance(ScaledDistance(ManhattanDistance(), 2.0), 0.5))


class TestAsPointArray:
    def test_packs_points(self):
        array = as_point_array(A)
        assert array.shape == (len(A), 2)
        assert array[2].tolist() == [3.0, 4.0]

    def test_empty_is_0x2(self):
        assert as_point_array([]).shape == (0, 2)

    def test_passes_through_packed_arrays(self):
        packed = as_point_array(A)
        assert as_point_array(packed) is not None
        assert np.array_equal(as_point_array(packed), packed)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            as_point_array(np.zeros((3, 3)))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_point_array([Point(0.0, math.nan)])
