"""Unit tests for the distance oracles."""

import math

import pytest

from repro.geometry import (
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    Point,
    ScaledDistance,
)


class TestEuclidean:
    def test_known_distance(self):
        assert EuclideanDistance().distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_zero_at_same_point(self):
        assert EuclideanDistance().distance(Point(1, 1), Point(1, 1)) == 0.0


class TestManhattan:
    def test_known_distance(self):
        assert ManhattanDistance().distance(Point(0, 0), Point(3, 4)) == pytest.approx(7.0)

    def test_dominates_euclidean(self):
        euclid = EuclideanDistance()
        manhattan = ManhattanDistance()
        a, b = Point(-2.3, 1.1), Point(4.0, -0.7)
        assert manhattan.distance(a, b) >= euclid.distance(a, b)


class TestHaversine:
    def test_equator_degree(self):
        # One degree of longitude at the equator is ~111.19 km.
        d = HaversineDistance().distance(Point(0.0, 0.0), Point(1.0, 0.0))
        assert d == pytest.approx(111.19, abs=0.5)

    def test_poles_to_equator(self):
        # Quarter of a great circle: ~10,007.5 km.
        d = HaversineDistance().distance(Point(0.0, 0.0), Point(0.0, 90.0))
        assert d == pytest.approx(math.pi * 6371.0088 / 2.0, rel=1e-6)

    def test_symmetry(self):
        h = HaversineDistance()
        a, b = Point(-71.06, 42.36), Point(-71.09, 42.34)  # Boston-ish
        assert h.distance(a, b) == pytest.approx(h.distance(b, a))


class TestScaled:
    def test_multiplies_base(self):
        scaled = ScaledDistance(EuclideanDistance(), 1.3)
        assert scaled.distance(Point(0, 0), Point(3, 4)) == pytest.approx(6.5)
        assert scaled.factor == 1.3

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            ScaledDistance(EuclideanDistance(), 0.0)
