"""Unit tests for the exhaustive shared-route optimizer."""

import itertools
import math

import numpy as np
import pytest

from repro.core import PassengerRequest, RoutingError
from repro.geometry import EuclideanDistance, Point
from repro.routing import (
    MAX_EXHAUSTIVE_GROUP,
    build_ride_group,
    count_feasible_sequences,
    optimal_shared_route,
)


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy))


def brute_force_route_length(requests, oracle, start=None):
    """Reference: best length over ALL stop permutations with precedence."""
    stops = []
    for r in requests:
        stops.append((r.request_id, True, r.pickup))
        stops.append((r.request_id, False, r.dropoff))
    best = math.inf
    for order in itertools.permutations(stops):
        seen = set()
        ok = True
        for rid, is_pickup, _ in order:
            if is_pickup:
                seen.add(rid)
            elif rid not in seen:
                ok = False
                break
        if not ok:
            continue
        length = 0.0
        previous = start
        for _, _, point in order:
            if previous is not None:
                length += oracle.distance(previous, point)
            previous = point
        best = min(best, length)
    return best


class TestSequenceCounting:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 6), (3, 90), (4, 2520)])
    def test_formula(self, n, expected):
        assert count_feasible_sequences(n) == expected

    def test_paper_quote_for_three(self):
        # The paper: "there exists in total 6!/(2!2!2!) = 90 different
        # feasible sequences" for |c_k| = 3.
        assert count_feasible_sequences(3) == 90


class TestOptimalRoute:
    def test_single_request_route(self, oracle):
        route = optimal_shared_route([request(1, 0, 0, 3, 4)], oracle)
        assert route.length_km == pytest.approx(5.0)
        assert route.onboard_km[1] == pytest.approx(5.0)
        assert route.pickup_offset_km[1] == 0.0
        assert [s.is_pickup for s in route.stops] == [True, False]

    def test_nested_trips_interleave(self, oracle):
        route = optimal_shared_route(
            [request(1, 0, 0, 4, 0), request(2, 1, 0, 3, 0)], oracle
        )
        assert route.length_km == pytest.approx(4.0)
        assert [(s.request_id, s.is_pickup) for s in route.stops] == [
            (1, True),
            (2, True),
            (2, False),
            (1, False),
        ]

    def test_matches_brute_force_on_random_groups(self, oracle):
        rng = np.random.default_rng(0)
        for _ in range(40):
            n = int(rng.integers(1, 4))
            requests = [
                request(i, *rng.uniform(-5, 5, 2), *rng.uniform(-5, 5, 2))
                for i in range(n)
            ]
            route = optimal_shared_route(requests, oracle)
            assert route.length_km == pytest.approx(
                brute_force_route_length(requests, oracle)
            )

    def test_start_anchors_objective(self, oracle):
        rng = np.random.default_rng(1)
        for _ in range(20):
            requests = [
                request(i, *rng.uniform(-5, 5, 2), *rng.uniform(-5, 5, 2))
                for i in range(2)
            ]
            start = Point(*rng.uniform(-5, 5, 2))
            route = optimal_shared_route(requests, oracle, start=start)
            expected = brute_force_route_length(requests, oracle, start=start)
            got = oracle.distance(start, route.stops[0].point) + sum(
                oracle.distance(a.point, b.point)
                for a, b in zip(route.stops, route.stops[1:])
            )
            assert got == pytest.approx(expected)

    def test_pickup_always_precedes_dropoff(self, oracle):
        rng = np.random.default_rng(2)
        for _ in range(25):
            requests = [
                request(i, *rng.uniform(-5, 5, 2), *rng.uniform(-5, 5, 2))
                for i in range(3)
            ]
            route = optimal_shared_route(requests, oracle)
            picked = set()
            for stop in route.stops:
                if stop.is_pickup:
                    picked.add(stop.request_id)
                else:
                    assert stop.request_id in picked

    def test_onboard_at_least_direct_for_metric(self, oracle):
        rng = np.random.default_rng(3)
        for _ in range(25):
            requests = [
                request(i, *rng.uniform(-5, 5, 2), *rng.uniform(-5, 5, 2))
                for i in range(3)
            ]
            route = optimal_shared_route(requests, oracle)
            for r in requests:
                assert route.onboard_km[r.request_id] >= r.trip_distance(oracle) - 1e-9
                assert route.detour_km(r, oracle) >= -1e-9

    def test_deterministic_tie_break(self, oracle):
        # Two identical-geometry requests: ties must resolve identically.
        requests = [request(1, 0, 0, 1, 0), request(2, 0, 0, 1, 0)]
        a = optimal_shared_route(requests, oracle)
        b = optimal_shared_route(requests, oracle)
        assert [(s.request_id, s.is_pickup) for s in a.stops] == [
            (s.request_id, s.is_pickup) for s in b.stops
        ]

    def test_rejects_empty_group(self, oracle):
        with pytest.raises(RoutingError):
            optimal_shared_route([], oracle)

    def test_rejects_oversized_group(self, oracle):
        requests = [request(i, 0, 0, 1, 0) for i in range(MAX_EXHAUSTIVE_GROUP + 1)]
        with pytest.raises(RoutingError):
            optimal_shared_route(requests, oracle)

    def test_rejects_duplicate_ids(self, oracle):
        with pytest.raises(RoutingError):
            optimal_shared_route([request(1, 0, 0, 1, 0), request(1, 2, 0, 3, 0)], oracle)


class TestBuildRideGroup:
    def test_group_carries_route_data(self, oracle):
        group = build_ride_group(7, [request(2, 1, 0, 3, 0), request(1, 0, 0, 4, 0)], oracle)
        assert group.group_id == 7
        assert group.request_ids == (1, 2)  # sorted by id
        assert group.route_length_km == pytest.approx(4.0)
        assert group.route_start == Point(0, 0)
        assert group.onboard_distance_km[2] == pytest.approx(2.0)
        assert group.pickup_offset_km[2] == pytest.approx(1.0)
