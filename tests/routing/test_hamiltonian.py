"""Unit tests for the SHPP solvers (Theorem 5's reduction object)."""

import math

import numpy as np
import pytest

from repro.routing import held_karp_path, shortest_hamiltonian_path


def random_weights(rng, n, missing=0.0):
    matrix = rng.uniform(1.0, 10.0, size=(n, n)).tolist()
    for i in range(n):
        matrix[i][i] = math.inf
        for j in range(n):
            if i != j and rng.random() < missing:
                matrix[i][j] = math.inf
    return matrix


class TestBruteForce:
    def test_trivial_cases(self):
        assert shortest_hamiltonian_path([]) == (0.0, ())
        assert shortest_hamiltonian_path([[math.inf]]) == (0.0, (0,))

    def test_line_graph(self):
        inf = math.inf
        weights = [
            [inf, 1.0, inf],
            [inf, inf, 1.0],
            [inf, inf, inf],
        ]
        length, order = shortest_hamiltonian_path(weights)
        assert length == 2.0
        assert order == (0, 1, 2)

    def test_infeasible_returns_inf(self):
        inf = math.inf
        weights = [[inf, inf], [inf, inf]]
        length, order = shortest_hamiltonian_path(weights)
        assert length == inf
        assert order == ()

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            shortest_hamiltonian_path([[0.0, 1.0]])


class TestHeldKarp:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(1, 7))
            weights = random_weights(rng, n, missing=0.2)
            expected, _ = shortest_hamiltonian_path(weights)
            assert held_karp_path(weights) == pytest.approx(expected)

    def test_handles_larger_instances(self):
        rng = np.random.default_rng(1)
        weights = random_weights(rng, 12)
        value = held_karp_path(weights)
        assert math.isfinite(value)
        assert value >= 11 * 1.0  # at least n-1 edges of weight >= 1
