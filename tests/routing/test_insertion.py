"""Unit tests for route insertion (the SARP primitive)."""

import itertools

import numpy as np
import pytest

from repro.core import PassengerRequest, RouteStop, RoutingError
from repro.geometry import EuclideanDistance, Point
from repro.routing import best_insertion, optimal_shared_route, route_length


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy))


def stops_of(requests, oracle):
    return optimal_shared_route(requests, oracle).stops


class TestRouteLength:
    def test_empty_route(self, oracle):
        assert route_length([], oracle) == 0.0

    def test_with_start(self, oracle):
        stops = (
            RouteStop(1, True, Point(1, 0)),
            RouteStop(1, False, Point(3, 0)),
        )
        assert route_length(stops, oracle, start=Point(0, 0)) == pytest.approx(3.0)


class TestBestInsertion:
    def test_insert_into_empty_route(self, oracle):
        result = best_insertion((), request(1, 1, 0, 2, 0), oracle, start=Point(0, 0))
        assert result.added_km == pytest.approx(2.0)
        assert [s.is_pickup for s in result.stops] == [True, False]

    def test_optimal_among_all_positions(self, oracle):
        rng = np.random.default_rng(0)
        for _ in range(25):
            base = [
                request(i, *rng.uniform(-4, 4, 2), *rng.uniform(-4, 4, 2))
                for i in range(1, 3)
            ]
            stops = stops_of(base, oracle)
            new = request(9, *rng.uniform(-4, 4, 2), *rng.uniform(-4, 4, 2))
            start = Point(*rng.uniform(-4, 4, 2))
            result = best_insertion(stops, new, oracle, start=start)

            # Reference: try every (i, j) pair by hand.
            pickup = RouteStop(9, True, new.pickup)
            dropoff = RouteStop(9, False, new.dropoff)
            base_len = route_length(stops, oracle, start=start)
            best = min(
                route_length(
                    list(stops[:i]) + [pickup] + list(stops[i:j]) + [dropoff] + list(stops[j:]),
                    oracle,
                    start=start,
                )
                - base_len
                for i in range(len(stops) + 1)
                for j in range(i, len(stops) + 1)
            )
            assert result.added_km == pytest.approx(best)

    def test_preserves_existing_order(self, oracle):
        base = [request(1, 0, 0, 4, 0), request(2, 1, 0, 3, 0)]
        stops = stops_of(base, oracle)
        result = best_insertion(stops, request(9, 1.5, 0, 2.5, 0), oracle, start=Point(0, 0))
        survivors = [
            (s.request_id, s.is_pickup) for s in result.stops if s.request_id != 9
        ]
        assert survivors == [(s.request_id, s.is_pickup) for s in stops]

    def test_pickup_before_dropoff(self, oracle):
        base = [request(1, 0, 0, 4, 0)]
        result = best_insertion(stops_of(base, oracle), request(9, 1, 1, 2, 1), oracle)
        positions = {
            (s.request_id, s.is_pickup): k for k, s in enumerate(result.stops)
        }
        assert positions[(9, True)] < positions[(9, False)]

    def test_nonnegative_added_distance_for_metric(self, oracle):
        rng = np.random.default_rng(1)
        for _ in range(20):
            base = [request(1, *rng.uniform(-4, 4, 2), *rng.uniform(-4, 4, 2))]
            new = request(9, *rng.uniform(-4, 4, 2), *rng.uniform(-4, 4, 2))
            result = best_insertion(stops_of(base, oracle), new, oracle, start=Point(0, 0))
            assert result.added_km >= -1e-9

    def test_rejects_duplicate_member(self, oracle):
        base = [request(1, 0, 0, 4, 0)]
        with pytest.raises(RoutingError):
            best_insertion(stops_of(base, oracle), request(1, 1, 1, 2, 2), oracle)
