"""Dispatcher-level warm-start behaviour of :class:`NSTDDispatcher`.

Covers the lifecycle around the solver: the opt-in flag's
preconditions, cold seeding of the first frame, transparent fallback
with telemetry, and state reset semantics.  The frame-by-frame
bit-identity guarantees live in the property suite.
"""

import pytest

from repro.core import PassengerRequest, Taxi
from repro.core.errors import PreferenceError
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.geometry import EuclideanDistance, Point

ORACLE = EuclideanDistance()


def _frame():
    taxis = [Taxi(0, Point(0.0, 0.0)), Taxi(1, Point(3.0, 0.0)), Taxi(2, Point(0.0, 3.0))]
    requests = [
        PassengerRequest(0, Point(1.0, 0.0), Point(2.0, 2.0)),
        PassengerRequest(1, Point(0.0, 1.0), Point(-2.0, 1.0)),
    ]
    return taxis, requests


class TestWarmStartFlag:
    def test_requires_array_fast_path(self):
        with pytest.raises(ValueError):
            NSTDDispatcher(ORACLE, use_arrays=False, warm_start=True)
        with pytest.raises(ValueError):
            NSTDDispatcher(ORACLE, optimize_for="median", warm_start=True)
        with pytest.raises(ValueError):
            NSTDDispatcher(ORACLE, optimize_for="taxi", exact=True, warm_start=True)

    def test_off_by_default(self):
        dispatcher = NSTDDispatcher(ORACLE)
        assert not dispatcher.warm_start
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        assert dispatcher.run_telemetry() == {}


class TestWarmLifecycle:
    def test_first_frame_is_cold_then_warm(self):
        dispatcher = NSTDDispatcher(ORACLE, warm_start=True)
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        assert dispatcher.run_telemetry() == {"cold_frames": 1}
        dispatcher.dispatch([t for t in taxis if t.taxi_id == 2], requests)
        telemetry = dispatcher.run_telemetry()
        assert telemetry["cold_frames"] == 1
        assert telemetry["warm_frames"] == 1
        assert telemetry["pairs_scored_warm"] <= telemetry["full_pairs_warm"]

    def test_empty_frames_leave_state_and_counters_alone(self):
        dispatcher = NSTDDispatcher(ORACLE, warm_start=True)
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        dispatcher.dispatch([], requests)
        dispatcher.dispatch(taxis, [])
        assert dispatcher.run_telemetry() == {"cold_frames": 1}
        dispatcher.dispatch(taxis, requests)
        assert dispatcher.run_telemetry()["warm_frames"] == 1

    def test_duplicate_ids_fall_back_and_surface_the_cold_error(self):
        # Duplicate-id frames are illegal input everywhere: the cold
        # builder rejects them with PreferenceError.  The warm layer
        # must neither mask nor change that — it records the failed
        # warm precondition in telemetry, redoes the frame cold, and
        # lets the cold path's own verdict surface.
        warm = NSTDDispatcher(ORACLE, warm_start=True)
        cold = NSTDDispatcher(ORACLE)
        taxis, requests = _frame()
        warm.dispatch(taxis, requests)
        cold.dispatch(taxis, requests)
        bad = [Taxi(9, Point(2.0, 2.0)), Taxi(8, Point(0.0, 2.0)), Taxi(8, Point(2.0, 0.0))]
        fresh = [PassengerRequest(7, Point(2.0, 1.0), Point(0.0, 0.0))]
        with pytest.raises(PreferenceError):
            cold.dispatch(bad, fresh)
        with pytest.raises(PreferenceError):
            warm.dispatch(bad, fresh)
        telemetry = warm.run_telemetry()
        assert telemetry["warm_fallbacks"] == 1
        assert telemetry["warm_fallback_duplicate-ids"] == 1

    def test_fallback_clears_state_and_reseeds(self):
        dispatcher = NSTDDispatcher(ORACLE, warm_start=True)
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        bad = [Taxi(8, Point(0.0, 2.0)), Taxi(8, Point(2.0, 0.0))]
        with pytest.raises(PreferenceError):
            dispatcher.dispatch(bad, [PassengerRequest(7, Point(2.0, 1.0), Point(0.0, 0.0))])
        # The poisoned frame dropped the carried state; the next valid
        # frame re-seeds cold and the one after runs warm again.
        dispatcher.dispatch(taxis, [PassengerRequest(9, Point(0.5, 0.5), Point(1.0, 1.0))])
        dispatcher.dispatch(taxis, [PassengerRequest(10, Point(0.4, 0.6), Point(1.0, 1.0))])
        telemetry = dispatcher.run_telemetry()
        assert telemetry["warm_fallbacks"] == 1
        assert telemetry["warm_frames"] == 1

    def test_reset_warm_state(self):
        dispatcher = NSTDDispatcher(ORACLE, warm_start=True)
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        dispatcher.reset_warm_state()
        # State dropped, counters kept: the next frame re-seeds cold.
        dispatcher.dispatch(taxis, requests)
        assert dispatcher.run_telemetry()["cold_frames"] == 2
        dispatcher.reset_warm_state(counters=True)
        assert dispatcher.run_telemetry() == {}

    def test_taxi_mode_also_warms(self):
        dispatcher = NSTDDispatcher(ORACLE, optimize_for="taxi", warm_start=True)
        taxis, requests = _frame()
        dispatcher.dispatch(taxis, requests)
        dispatcher.dispatch(
            [t for t in taxis if t.taxi_id == 2],
            [PassengerRequest(5, Point(0.2, 2.5), Point(1.0, 1.0))],
        )
        assert dispatcher.run_telemetry()["warm_frames"] == 1
