"""Unit tests for NSTD extensions: heterogeneous drivers and NSTD-M."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import nstd_m, nstd_p, nstd_t
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.dispatch.sharing import build_sharing_table, pack_requests
from repro.geometry import EuclideanDistance, Point
from repro.matching import Matching, build_nonsharing_table, is_stable


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def heterogeneous_market(seed=1, n=8):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
        for j in range(n)
    ]
    alphas = {i: float(rng.uniform(0.0, 4.0)) for i in range(n)}
    return taxis, requests, alphas


class TestMedianDispatcher:
    def test_name_and_factory(self, oracle):
        assert nstd_m(oracle).name == "NSTD-M"

    def test_median_schedule_is_stable(self, oracle):
        taxis, requests, alphas = heterogeneous_market()
        config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
        dispatcher = NSTDDispatcher(
            oracle, config, optimize_for="median", alpha_by_taxi=alphas
        )
        schedule = dispatcher.dispatch(taxis, requests)
        table = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi=alphas
        )
        assert is_stable(table, Matching(schedule.taxi_of))

    def test_median_between_extremes_on_contested_market(self, oracle):
        # Seed 1 is the known two-point lattice; with two matchings the
        # (lower) median equals the passenger-optimal one.
        taxis, requests, alphas = heterogeneous_market(seed=1)
        config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
        median = NSTDDispatcher(
            oracle, config, optimize_for="median", alpha_by_taxi=alphas
        ).dispatch(taxis, requests)
        passenger = NSTDDispatcher(
            oracle, config, optimize_for="passenger", alpha_by_taxi=alphas
        ).dispatch(taxis, requests)
        assert median.taxi_of == passenger.taxi_of

    def test_matches_unique_matching_under_homogeneous_alpha(self, oracle):
        taxis, requests, _ = heterogeneous_market(seed=5)
        config = DispatchConfig()
        assert (
            nstd_m(oracle, config).dispatch(taxis, requests).taxi_of
            == nstd_p(oracle, config).dispatch(taxis, requests).taxi_of
            == nstd_t(oracle, config).dispatch(taxis, requests).taxi_of
        )


class TestHeterogeneousDispatch:
    def test_p_and_t_can_differ(self, oracle):
        taxis, requests, alphas = heterogeneous_market(seed=1)
        config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
        p = NSTDDispatcher(
            oracle, config, optimize_for="passenger", alpha_by_taxi=alphas
        ).dispatch(taxis, requests)
        t = NSTDDispatcher(
            oracle, config, optimize_for="taxi", alpha_by_taxi=alphas
        ).dispatch(taxis, requests)
        assert p.taxi_of != t.taxi_of  # the two-point lattice of seed 1

    def test_both_remain_stable(self, oracle):
        taxis, requests, alphas = heterogeneous_market(seed=1)
        config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
        table = build_nonsharing_table(taxis, requests, oracle, config, alpha_by_taxi=alphas)
        for mode in ("passenger", "taxi", "median"):
            schedule = NSTDDispatcher(
                oracle, config, optimize_for=mode, alpha_by_taxi=alphas
            ).dispatch(taxis, requests)
            assert is_stable(table, Matching(schedule.taxi_of)), mode


class TestSharingHeterogeneity:
    def test_alpha_changes_taxi_scores(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [PassengerRequest(1, Point(1, 0), Point(5, 0))]
        units = pack_requests(requests, oracle, DispatchConfig())
        base = build_sharing_table(taxis, units, oracle, DispatchConfig(alpha=1.0))
        doubled = build_sharing_table(
            taxis, units, oracle, DispatchConfig(alpha=1.0), alpha_by_taxi={0: 2.0}
        )
        assert doubled.reviewer_scores[(0, 0)] < base.reviewer_scores[(0, 0)]

    def test_negative_alpha_rejected(self, oracle):
        from repro.core import PreferenceError

        with pytest.raises(PreferenceError):
            build_sharing_table(
                [Taxi(0, Point(0, 0))], [], oracle, DispatchConfig(), alpha_by_taxi={0: -1.0}
            )
