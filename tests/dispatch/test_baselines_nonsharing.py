"""Unit tests for the Greedy / MCBM / MMCM baselines."""

import math

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import (
    GreedyNearestDispatcher,
    MinCostDispatcher,
    MinimaxDispatcher,
)
from repro.geometry import EuclideanDistance, Point


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def random_frame(seed, n_taxis=7, n_requests=9):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 4, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 4, 2)), Point(*rng.normal(0, 4, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


def pickup_costs(schedule, taxis, requests, oracle):
    taxi_by_id = {t.taxi_id: t for t in taxis}
    request_by_id = {r.request_id: r for r in requests}
    return [
        oracle.distance(taxi_by_id[tid].location, request_by_id[rid].pickup)
        for rid, tid in schedule.taxi_of.items()
    ]


class TestGreedy:
    def test_first_request_gets_nearest_taxi(self, oracle):
        taxis = [Taxi(0, Point(5, 0)), Taxi(1, Point(1, 0))]
        requests = [PassengerRequest(0, Point(0, 0), Point(0, 5))]
        schedule = GreedyNearestDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert schedule.taxi_of == {0: 1}

    def test_serves_in_arrival_order(self, oracle):
        # Both requests want taxi 1; the earlier id gets it.
        taxis = [Taxi(0, Point(10, 0)), Taxi(1, Point(0, 0))]
        requests = [
            PassengerRequest(0, Point(1, 0), Point(5, 0)),
            PassengerRequest(1, Point(0.5, 0), Point(5, 0)),
        ]
        schedule = GreedyNearestDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert schedule.taxi_of[0] == 1

    def test_threshold_leaves_far_requests_queued(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [PassengerRequest(0, Point(50, 0), Point(51, 0))]
        config = DispatchConfig(passenger_threshold_km=10.0)
        schedule = GreedyNearestDispatcher(oracle, config).dispatch(taxis, requests)
        assert schedule.assignments == []

    def test_seat_widening(self, oracle):
        taxis = [Taxi(0, Point(0.1, 0), seats=1), Taxi(1, Point(5, 0), seats=4)]
        requests = [PassengerRequest(0, Point(0, 0), Point(1, 0), passengers=3)]
        schedule = GreedyNearestDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert schedule.taxi_of == {0: 1}

    def test_matches_bruteforce_nearest(self, oracle):
        for seed in range(5):
            taxis, requests = random_frame(seed)
            schedule = GreedyNearestDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            # Replay the greedy policy naively.
            available = {t.taxi_id: t for t in taxis}
            expected = {}
            for r in sorted(requests, key=lambda r: r.request_id):
                if not available:
                    break
                best = min(
                    available.values(),
                    key=lambda t: (oracle.distance(t.location, r.pickup), t.taxi_id),
                )
                expected[r.request_id] = best.taxi_id
                del available[best.taxi_id]
            assert schedule.taxi_of == expected


class TestMinCost:
    def test_minimizes_total_cost(self, oracle):
        for seed in range(5):
            taxis, requests = random_frame(seed)
            greedy = GreedyNearestDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            mincost = MinCostDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            assert sum(pickup_costs(mincost, taxis, requests, oracle)) <= sum(
                pickup_costs(greedy, taxis, requests, oracle)
            ) + 1e-9

    def test_matches_min_cardinality(self, oracle):
        taxis, requests = random_frame(1, n_taxis=4, n_requests=9)
        schedule = MinCostDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert len(schedule.assignments) == 4

    def test_respects_threshold(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [PassengerRequest(0, Point(50, 0), Point(51, 0))]
        config = DispatchConfig(passenger_threshold_km=10.0)
        assert MinCostDispatcher(oracle, config).dispatch(taxis, requests).assignments == []

    def test_empty_inputs(self, oracle):
        dispatcher = MinCostDispatcher(oracle, DispatchConfig())
        assert dispatcher.dispatch([], []).assignments == []


class TestMinimax:
    def test_minimizes_maximum_cost(self, oracle):
        for seed in range(5):
            taxis, requests = random_frame(seed)
            mincost = MinCostDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            minimax = MinimaxDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            assert max(pickup_costs(minimax, taxis, requests, oracle)) <= max(
                pickup_costs(mincost, taxis, requests, oracle)
            ) + 1e-9

    def test_same_cardinality_as_mincost(self, oracle):
        for seed in range(3):
            taxis, requests = random_frame(seed, n_taxis=5, n_requests=8)
            mincost = MinCostDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            minimax = MinimaxDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
            assert len(minimax.assignments) == len(mincost.assignments)

    def test_seat_feasibility(self, oracle):
        taxis = [Taxi(0, Point(0, 0), seats=1)]
        requests = [PassengerRequest(0, Point(1, 0), Point(2, 0), passengers=4)]
        schedule = MinimaxDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert schedule.assignments == []
