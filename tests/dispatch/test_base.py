"""Unit tests for the Dispatcher base and assignment helpers."""

import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import group_assignment, single_assignment
from repro.dispatch.base import Dispatcher
from repro.core.types import DispatchSchedule
from repro.core.errors import DispatchError
from repro.geometry import EuclideanDistance, Point
from repro.routing import build_ride_group


def request(rid, sx, sy, dx, dy):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy))


class TestSingleAssignment:
    def test_structure(self):
        taxi = Taxi(3, Point(0, 0))
        r = request(7, 1, 0, 2, 0)
        assignment = single_assignment(taxi, r)
        assert assignment.taxi_id == 3
        assert assignment.request_ids == (7,)
        assert [(s.is_pickup, s.point) for s in assignment.stops] == [
            (True, Point(1, 0)),
            (False, Point(2, 0)),
        ]


class TestGroupAssignment:
    def test_uses_group_route(self):
        oracle = EuclideanDistance()
        group = build_ride_group(0, [request(1, 0, 0, 4, 0), request(2, 1, 0, 3, 0)], oracle)
        assignment = group_assignment(Taxi(5, Point(0, 0)), group)
        assert assignment.taxi_id == 5
        assert assignment.request_ids == (1, 2)
        assert assignment.stops == group.route


class TestDispatcherValidation:
    class BadDispatcher(Dispatcher):
        name = "Bad"

        def dispatch(self, taxis, requests):
            schedule = DispatchSchedule()
            # Dispatch the same taxi twice.
            schedule.add(single_assignment(taxis[0], requests[0]))
            schedule.add(single_assignment(taxis[0], requests[1]))
            return self._validated(schedule, taxis, requests)

    def test_validated_raises_dispatch_error(self):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [request(1, 0, 0, 1, 0), request(2, 0, 0, 1, 0)]
        dispatcher = self.BadDispatcher(EuclideanDistance(), DispatchConfig())
        with pytest.raises(DispatchError, match="Bad"):
            dispatcher.dispatch(taxis, requests)

    def test_default_config(self):
        class Noop(Dispatcher):
            name = "noop"

            def dispatch(self, taxis, requests):
                return DispatchSchedule()

        dispatcher = Noop(EuclideanDistance())
        assert dispatcher.config.alpha == 1.0
