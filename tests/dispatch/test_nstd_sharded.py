"""Unit tests for the sharded NSTD dispatcher paths.

Solver-level identity lives in the matching and property suites; these
tests pin the dispatcher plumbing around it: constructor validation,
cold sharded frames identical to the global cold solve, the opt-in
worker pool, per-shard budget degradation, the packed egress schedule,
and the shard telemetry counters.
"""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch.base import PackedSingleSchedule
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.geometry import EuclideanDistance, Point
from repro.resilience.budget import FrameBudget

ORACLE = EuclideanDistance()
CONFIG = DispatchConfig(passenger_threshold_km=3.0, taxi_threshold_km=5.0)


def clustered_frame(seed=11, n_clusters=3, per_cluster=4):
    """Several well-separated clusters: a genuinely multi-shard frame."""
    rng = np.random.default_rng(seed)
    taxis, requests = [], []
    for c in range(n_clusters):
        cx = c * 100.0
        for _ in range(per_cluster):
            taxis.append(Taxi(len(taxis), Point(cx + rng.uniform(-1, 1), rng.uniform(-1, 1))))
            requests.append(
                PassengerRequest(
                    1000 + len(requests),
                    Point(cx + rng.uniform(-1, 1), rng.uniform(-1, 1)),
                    Point(cx + rng.uniform(-1, 1), rng.uniform(-1, 1)),
                )
            )
    return taxis, requests


def pairs_of(schedule):
    return sorted((a.taxi_id, a.request_ids) for a in schedule.assignments)


class TestConstructorValidation:
    def test_sharded_requires_array_fast_path(self):
        with pytest.raises(ValueError, match="array fast path"):
            NSTDDispatcher(ORACLE, CONFIG, sharded=True, use_arrays=False)
        with pytest.raises(ValueError, match="array fast path"):
            NSTDDispatcher(
                ORACLE, CONFIG, optimize_for="taxi", exact=True, sharded=True
            )
        with pytest.raises(ValueError, match="array fast path"):
            NSTDDispatcher(ORACLE, CONFIG, optimize_for="median", sharded=True)

    def test_shard_workers_requires_sharded(self):
        with pytest.raises(ValueError, match="requires sharded"):
            NSTDDispatcher(ORACLE, CONFIG, shard_workers=2)

    def test_shard_workers_rejects_warm_start(self):
        with pytest.raises(ValueError, match="cold sharded path"):
            NSTDDispatcher(
                ORACLE, CONFIG, sharded=True, warm_start=True, shard_workers=2
            )

    def test_shard_workers_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            NSTDDispatcher(ORACLE, CONFIG, sharded=True, shard_workers=0)


class TestColdShardedIdentity:
    def test_sharded_cold_matches_global_cold(self):
        taxis, requests = clustered_frame()
        for mode in ("passenger", "taxi"):
            plain = NSTDDispatcher(ORACLE, CONFIG, optimize_for=mode)
            sharded = NSTDDispatcher(ORACLE, CONFIG, optimize_for=mode, sharded=True)
            assert pairs_of(sharded.dispatch(taxis, requests)) == pairs_of(
                plain.dispatch(taxis, requests)
            )

    def test_telemetry_counts_decomposition(self):
        taxis, requests = clustered_frame(n_clusters=3)
        sharded = NSTDDispatcher(ORACLE, CONFIG, sharded=True)
        sharded.dispatch(taxis, requests)
        telemetry = sharded.run_telemetry()
        assert telemetry["sharded_frames"] == 1
        assert telemetry["shard_decomposed_frames"] == 1
        assert telemetry["shard_count"] >= 3
        # Clusters 100 km apart: almost the whole dense block is skipped.
        assert telemetry["cross_shard_pairs_avoided"] > 0
        assert telemetry["largest_shard_entities"] <= len(taxis) + len(requests)

    def test_worker_pool_matches_serial(self):
        taxis, requests = clustered_frame(seed=23)
        serial = NSTDDispatcher(ORACLE, CONFIG, sharded=True)
        pooled = NSTDDispatcher(ORACLE, CONFIG, sharded=True, shard_workers=2)
        try:
            assert pairs_of(pooled.dispatch(taxis, requests)) == pairs_of(
                serial.dispatch(taxis, requests)
            )
        finally:
            pooled.shutdown_shard_pool()


class TestPerShardDegradation:
    def _ticking_budget(self, duration_s):
        ticks = iter(range(10_000))

        def clock():
            return float(next(ticks))

        return FrameBudget(duration_s, clock=clock)

    def test_expired_budget_degrades_pending_shards(self):
        taxis, requests = clustered_frame(n_clusters=3)
        sharded = NSTDDispatcher(ORACLE, CONFIG, sharded=True, warm_start=True)
        # Clock advances one unit per checkpoint: "nstd:start" and
        # "nstd:decomposed" pass, the first "nstd:shard" check fires.
        sharded.frame_budget = self._ticking_budget(2.5)
        schedule = sharded.dispatch(taxis, requests)
        telemetry = sharded.run_telemetry()
        assert telemetry["shards_degraded"] == telemetry["shard_count"]
        # Every request still gets a (greedy) answer inside its shard...
        assert len(schedule.assignments) == len(requests)
        # ...but a degraded frame never seeds the warm state.
        assert sharded._sharded_state is None

    def test_roomy_budget_changes_nothing(self):
        taxis, requests = clustered_frame(n_clusters=2)
        plain = NSTDDispatcher(ORACLE, CONFIG, sharded=True)
        budgeted = NSTDDispatcher(ORACLE, CONFIG, sharded=True)
        budgeted.frame_budget = FrameBudget(60.0)
        assert pairs_of(budgeted.dispatch(taxis, requests)) == pairs_of(
            plain.dispatch(taxis, requests)
        )
        assert budgeted.run_telemetry().get("shards_degraded", 0) == 0


class TestPackedEgress:
    def _warm_frames(self, mode="passenger"):
        """Two engine-contract frames; frame two is warm and non-empty."""
        rng = np.random.default_rng(31)
        taxis, requests = clustered_frame(seed=31)
        # More requests than taxis, so frame two still has a queue.
        requests += [
            PassengerRequest(
                2000 + i,
                Point(i % 3 * 100.0 + rng.uniform(-1, 1), rng.uniform(-1, 1)),
                Point(i % 3 * 100.0 + rng.uniform(-1, 1), rng.uniform(-1, 1)),
            )
            for i in range(6)
        ]
        sharded = NSTDDispatcher(
            ORACLE, CONFIG, optimize_for=mode, sharded=True, warm_start=True
        )
        first = sharded.dispatch(taxis, requests)
        served = first.served_request_ids
        dispatched = first.dispatched_taxi_ids
        # Dispatched taxis return as fresh objects at new positions.
        next_taxis = [t for t in taxis if t.taxi_id not in dispatched] + [
            Taxi(
                t.taxi_id,
                Point(float(rng.integers(0, 3)) * 100.0 + rng.uniform(-1, 1), rng.uniform(-1, 1)),
            )
            for t in taxis
            if t.taxi_id in dispatched
        ]
        next_requests = [r for r in requests if r.request_id not in served]
        second = sharded.dispatch(next_taxis, next_requests)
        assert next_taxis and next_requests and second.assignments
        return sharded, next_taxis, next_requests, second

    def test_warm_frame_returns_packed_schedule(self):
        sharded, taxis, requests, second = self._warm_frames()
        assert isinstance(second, PackedSingleSchedule)
        assert sharded.run_telemetry().get("warm_frames", 0) == 1

    def test_packed_schedule_matches_cold_dispatcher(self):
        _, taxis, requests, second = self._warm_frames()
        cold = NSTDDispatcher(ORACLE, CONFIG)
        assert pairs_of(second) == pairs_of(cold.dispatch(taxis, requests))

    def test_lazy_assignments_materialize_once(self):
        _, taxis, requests, second = self._warm_frames()
        first_read = second.assignments
        assert second.assignments is first_read  # memoized in the slot
        for assignment, (t_row, r_row) in zip(
            first_read, zip(second.taxi_rows.tolist(), second.request_rows.tolist())
        ):
            assert assignment.taxi_id == taxis[t_row].taxi_id
            assert assignment.request_ids == (requests[r_row].request_id,)
            pickup, dropoff = assignment.stops
            assert pickup.is_pickup and not dropoff.is_pickup
            assert pickup.point == requests[r_row].pickup
            assert dropoff.point == requests[r_row].dropoff

    def test_packed_legs_are_bit_exact(self):
        _, taxis, requests, second = self._warm_frames()
        assert second.pickup_km is not None and second.trip_km is not None
        for index, (t_row, r_row) in enumerate(
            zip(second.taxi_rows.tolist(), second.request_rows.tolist())
        ):
            request = requests[r_row]
            assert second.pickup_km[index] == ORACLE.distance(
                taxis[t_row].location, request.pickup
            )
            assert second.trip_km[index] == ORACLE.distance(
                request.pickup, request.dropoff
            )
