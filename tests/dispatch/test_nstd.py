"""Unit tests for the NSTD-P / NSTD-T stable dispatchers."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import nstd_p, nstd_t
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.geometry import EuclideanDistance, Point
from repro.matching import Matching, build_nonsharing_table, is_stable


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def random_frame(seed, n_taxis=8, n_requests=12, spread=5.0):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, spread, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, spread, 2)), Point(*rng.normal(0, spread, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


def schedule_to_matching(schedule):
    return Matching(schedule.taxi_of)


class TestStability:
    @pytest.mark.parametrize("factory", [nstd_p, nstd_t])
    def test_schedule_is_stable(self, oracle, factory):
        config = DispatchConfig(passenger_threshold_km=8.0, taxi_threshold_km=8.0)
        for seed in range(10):
            taxis, requests = random_frame(seed)
            dispatcher = factory(oracle, config)
            schedule = dispatcher.dispatch(taxis, requests)
            table = build_nonsharing_table(taxis, requests, oracle, config)
            assert is_stable(table, schedule_to_matching(schedule))

    def test_exact_taxi_optimal_agrees_with_fast_path(self, oracle):
        config = DispatchConfig(passenger_threshold_km=6.0, taxi_threshold_km=6.0)
        for seed in range(5):
            taxis, requests = random_frame(seed, n_taxis=5, n_requests=6)
            fast = nstd_t(oracle, config).dispatch(taxis, requests)
            exact = nstd_t(oracle, config, exact=True).dispatch(taxis, requests)
            assert fast.taxi_of == exact.taxi_of


class TestProperty1:
    def test_taxi_preferring_no_dispatch_stays_idle(self, oracle):
        # The far taxi's driver score exceeds the threshold for every
        # request: Property 1 says it must remain undispatched.
        taxis = [Taxi(0, Point(0, 0)), Taxi(1, Point(100, 0))]
        requests = [PassengerRequest(0, Point(1, 0), Point(2, 0))]
        config = DispatchConfig(taxi_threshold_km=5.0)
        schedule = nstd_p(oracle, config).dispatch(taxis, requests)
        assert schedule.taxi_of == {0: 0}

    def test_passenger_preferring_no_service_stays_unserved(self, oracle):
        taxis = [Taxi(0, Point(100, 0))]
        requests = [
            PassengerRequest(0, Point(0, 0), Point(1, 0)),
            PassengerRequest(1, Point(99, 0), Point(98, 0)),
        ]
        config = DispatchConfig(passenger_threshold_km=5.0)
        schedule = nstd_p(oracle, config).dispatch(taxis, requests)
        assert 0 not in schedule.taxi_of
        assert schedule.taxi_of == {1: 0}


class TestSeats:
    def test_large_party_needs_large_taxi(self, oracle):
        taxis = [Taxi(0, Point(0.1, 0), seats=2), Taxi(1, Point(5, 0), seats=6)]
        requests = [PassengerRequest(0, Point(0, 0), Point(3, 0), passengers=5)]
        schedule = nstd_p(oracle, DispatchConfig()).dispatch(taxis, requests)
        # The nearest taxi cannot seat the party; the van takes it.
        assert schedule.taxi_of == {0: 1}


class TestOptimizationDirection:
    def test_p_and_t_differ_on_contested_market(self, oracle):
        # Construct a market with two stable matchings (the Fig. 3 shape).
        taxis = [Taxi(0, Point(0.0, 0.0)), Taxi(1, Point(4.0, 0.0))]
        requests = [
            PassengerRequest(0, Point(1.0, 0.0), Point(1.0, 9.0)),
            PassengerRequest(1, Point(3.0, 0.0), Point(3.0, 1.0)),
        ]
        # r0: taxi0 at 1km, taxi1 at 3km -> prefers taxi0
        # r1: taxi1 at 1km, taxi0 at 3km -> prefers taxi1
        # taxi0 scores: r0: 1-9=-8, r1: 3-1=2  -> prefers r0
        # taxi1 scores: r0: 3-9=-6, r1: 1-1=0  -> prefers r0
        # Passenger-optimal: r0-t0, r1-t1. Taxi-optimal: taxi1 wants r0:
        # stable? (r0,t0) blocks swap... compute both and compare stability.
        config = DispatchConfig()
        p_schedule = nstd_p(oracle, config).dispatch(taxis, requests)
        t_schedule = nstd_t(oracle, config).dispatch(taxis, requests)
        table = build_nonsharing_table(taxis, requests, oracle, config)
        assert is_stable(table, schedule_to_matching(p_schedule))
        assert is_stable(table, schedule_to_matching(t_schedule))

    def test_invalid_mode_rejected(self, oracle):
        with pytest.raises(ValueError):
            NSTDDispatcher(oracle, optimize_for="company")

    def test_names(self, oracle):
        assert nstd_p(oracle).name == "NSTD-P"
        assert nstd_t(oracle).name == "NSTD-T"


class TestEdgeCases:
    @pytest.mark.parametrize("factory", [nstd_p, nstd_t])
    def test_empty_inputs(self, oracle, factory):
        dispatcher = factory(oracle)
        assert dispatcher.dispatch([], []).assignments == []
        assert dispatcher.dispatch([Taxi(0, Point(0, 0))], []).assignments == []
        assert (
            dispatcher.dispatch([], [PassengerRequest(0, Point(0, 0), Point(1, 0))]).assignments
            == []
        )

    def test_more_taxis_than_requests(self, oracle):
        taxis, requests = random_frame(0, n_taxis=10, n_requests=3)
        schedule = nstd_p(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert len(schedule.served_request_ids) == 3
