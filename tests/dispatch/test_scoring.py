"""Unit tests for the dissatisfaction metrics (Section VI-B)."""

import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import assignment_metrics, group_assignment, single_assignment
from repro.core.errors import DispatchError
from repro.geometry import EuclideanDistance, Point
from repro.routing import build_ride_group


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy))


class TestNonSharingReduction:
    def test_passenger_metric_is_pickup_distance(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        r = request(1, 3, 4, 3, 10)
        metrics = assignment_metrics(
            taxi, single_assignment(taxi, r), {1: r}, oracle, DispatchConfig()
        )
        # Non-sharing: D(t, r^s) with zero detour term.
        assert metrics.passenger_dissatisfaction[1] == pytest.approx(5.0)

    def test_taxi_metric_reduces_to_paper_formula(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        r = request(1, 3, 4, 3, 10)  # pickup 5 km, trip 6 km
        for alpha in (0.5, 1.0, 2.0):
            config = DispatchConfig(alpha=alpha)
            metrics = assignment_metrics(
                taxi, single_assignment(taxi, r), {1: r}, oracle, config
            )
            assert metrics.taxi_dissatisfaction == pytest.approx(5.0 - alpha * 6.0)

    def test_total_drive(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        r = request(1, 3, 4, 3, 10)
        metrics = assignment_metrics(
            taxi, single_assignment(taxi, r), {1: r}, oracle, DispatchConfig()
        )
        assert metrics.total_drive_km == pytest.approx(11.0)


class TestSharingMetrics:
    def test_group_metrics_match_definitions(self, oracle):
        # Nested collinear trips: taxi at -1, route 0 -> 1 -> 3 -> 4.
        r1 = request(1, 0, 0, 4, 0)
        r2 = request(2, 1, 0, 3, 0)
        group = build_ride_group(0, [r1, r2], oracle)
        taxi = Taxi(0, Point(-1, 0))
        assignment = group_assignment(taxi, group)
        config = DispatchConfig(alpha=1.0, beta=1.0)
        metrics = assignment_metrics(taxi, assignment, {1: r1, 2: r2}, oracle, config)

        # r1 is picked up first: wait distance 1; no detour.
        assert metrics.passenger_dissatisfaction[1] == pytest.approx(1.0)
        # r2 is picked up after 1 km more driving; no detour either.
        assert metrics.passenger_dissatisfaction[2] == pytest.approx(2.0)
        # D_ck(t) = 1 + 4 = 5; payoff = (1+1) * (4 + 2) = 12.
        assert metrics.taxi_dissatisfaction == pytest.approx(5.0 - 12.0)

    def test_beta_scales_detour(self, oracle):
        # Perpendicular trips force a detour on one member.
        r1 = request(1, 0, 0, 10, 0)
        r2 = request(2, 5, 1, 5, -1)
        group = build_ride_group(0, [r1, r2], oracle)
        taxi = Taxi(0, Point(0, 0))
        assignment = group_assignment(taxi, group)
        base = assignment_metrics(
            taxi, assignment, {1: r1, 2: r2}, oracle, DispatchConfig(beta=0.0)
        )
        scaled = assignment_metrics(
            taxi, assignment, {1: r1, 2: r2}, oracle, DispatchConfig(beta=2.0)
        )
        total_detour = sum(
            group.detour_km(rid, oracle) for rid in (1, 2)
        )
        assert total_detour > 0
        got = sum(scaled.passenger_dissatisfaction.values()) - sum(
            base.passenger_dissatisfaction.values()
        )
        assert got == pytest.approx(2.0 * total_detour)


class TestErrors:
    def test_wrong_taxi_rejected(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        r = request(1, 1, 0, 2, 0)
        assignment = single_assignment(taxi, r)
        with pytest.raises(DispatchError):
            assignment_metrics(Taxi(9, Point(0, 0)), assignment, {1: r}, oracle)

    def test_unknown_request_rejected(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        r = request(1, 1, 0, 2, 0)
        assignment = single_assignment(taxi, r)
        with pytest.raises(DispatchError):
            assignment_metrics(taxi, assignment, {}, oracle)
