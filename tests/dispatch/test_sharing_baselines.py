"""Unit tests for the RAII / SARP / ILP sharing baselines."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import ILPDispatcher, RAIIDispatcher, SARPDispatcher
from repro.dispatch.sharing import TaxiPlan
from repro.geometry import EuclideanDistance, Point


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy, passengers=1):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy), passengers=passengers)


def random_frame(seed, n_taxis=5, n_requests=9):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


def check_schedule_constraints(schedule, taxis, requests, oracle, config):
    schedule.validate(taxis, requests)
    taxi_by_id = {t.taxi_id: t for t in taxis}
    request_by_id = {r.request_id: r for r in requests}
    for assignment in schedule.assignments:
        taxi = taxi_by_id[assignment.taxi_id]
        members = [request_by_id[rid] for rid in assignment.request_ids]
        assert len(members) <= config.max_group_size
        assert sum(m.passengers for m in members) <= taxi.seats
        if len(members) > 1:
            cumulative = 0.0
            previous = taxi.location
            pickup_at = {}
            for stop in assignment.stops:
                cumulative += oracle.distance(previous, stop.point)
                previous = stop.point
                if stop.is_pickup:
                    pickup_at[stop.request_id] = cumulative
                else:
                    onboard = cumulative - pickup_at[stop.request_id]
                    direct = request_by_id[stop.request_id].trip_distance(oracle)
                    assert onboard - direct <= config.theta_km + 1e-6


class TestTaxiPlan:
    def test_empty_plan_quote(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0)))
        quote = plan.quote(request(1, 1, 0, 2, 0), oracle, DispatchConfig())
        assert quote is not None
        assert quote.added_km == pytest.approx(2.0)

    def test_capacity_refusal(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0), seats=2))
        config = DispatchConfig()
        q1 = plan.quote(request(1, 0, 0, 1, 0, passengers=2), oracle, config)
        plan.commit(request(1, 0, 0, 1, 0, passengers=2), q1)
        assert plan.quote(request(2, 0, 0, 1, 0), oracle, config) is None

    def test_group_size_refusal(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0), seats=8))
        config = DispatchConfig(max_group_size=1)
        q1 = plan.quote(request(1, 0, 0, 1, 0), oracle, config)
        plan.commit(request(1, 0, 0, 1, 0), q1)
        assert plan.quote(request(2, 0, 0, 1, 0), oracle, config) is None

    def test_quote_respects_theta(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0)))
        config = DispatchConfig(theta_km=0.5)
        r1 = request(1, 0, 0, 10, 0)
        plan.commit(r1, plan.quote(r1, oracle, config))
        # An off-axis trip: the cheapest raw insertion would detour r1 by
        # more than theta, but appending it after r1's dropoff is feasible
        # with zero detour for everyone — quote must find that option.
        r2 = request(2, 5, 3, 5, 6)
        quote = plan.quote(r2, oracle, config)
        assert quote is not None
        plan.commit(r2, quote)
        # Verify every member's detour stays within theta.
        cumulative = 0.0
        previous = plan.taxi.location
        pickup_at = {}
        members = {1: r1, 2: r2}
        for stop in plan.stops:
            cumulative += oracle.distance(previous, stop.point)
            previous = stop.point
            if stop.is_pickup:
                pickup_at[stop.request_id] = cumulative
            else:
                onboard = cumulative - pickup_at[stop.request_id]
                direct = members[stop.request_id].trip_distance(oracle)
                assert onboard - direct <= config.theta_km + 1e-9

    def test_to_assignment_requires_requests(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0)))
        with pytest.raises(AssertionError):
            plan.to_assignment()

    def test_end_point_tracks_route(self, oracle):
        plan = TaxiPlan(taxi=Taxi(0, Point(0, 0)))
        assert plan.end_point() == Point(0, 0)
        r = request(1, 1, 0, 2, 0)
        plan.commit(r, plan.quote(r, oracle, DispatchConfig()))
        assert plan.end_point() == Point(2, 0)


class TestRAII:
    def test_constraints_hold(self, oracle):
        config = DispatchConfig()
        for seed in range(6):
            taxis, requests = random_frame(seed)
            schedule = RAIIDispatcher(oracle, config).dispatch(taxis, requests)
            check_schedule_constraints(schedule, taxis, requests, oracle, config)

    def test_candidate_count_validation(self, oracle):
        with pytest.raises(ValueError):
            RAIIDispatcher(oracle, candidate_count=0)

    def test_serves_everything_with_ample_fleet(self, oracle):
        taxis, requests = random_frame(0, n_taxis=12, n_requests=6)
        schedule = RAIIDispatcher(oracle, DispatchConfig()).dispatch(taxis, requests)
        assert len(schedule.served_request_ids) == 6


class TestSARP:
    def test_constraints_hold(self, oracle):
        config = DispatchConfig()
        for seed in range(6):
            taxis, requests = random_frame(seed)
            schedule = SARPDispatcher(oracle, config).dispatch(taxis, requests)
            check_schedule_constraints(schedule, taxis, requests, oracle, config)

    def test_exhaustive_candidates_never_worse_than_raii_distance(self, oracle):
        # SARP evaluates all taxis per insertion, so its per-frame total
        # added distance is <= RAII's pruned search on the same input.
        config = DispatchConfig()
        for seed in range(5):
            taxis, requests = random_frame(seed, n_taxis=6, n_requests=10)
            raii = RAIIDispatcher(oracle, config, candidate_count=1).dispatch(taxis, requests)
            sarp = SARPDispatcher(oracle, config).dispatch(taxis, requests)

            def total_drive(schedule):
                taxi_by_id = {t.taxi_id: t for t in taxis}
                total = 0.0
                for a in schedule.assignments:
                    previous = taxi_by_id[a.taxi_id].location
                    for stop in a.stops:
                        total += oracle.distance(previous, stop.point)
                        previous = stop.point
                return total

            if len(sarp.served_request_ids) == len(raii.served_request_ids):
                assert total_drive(sarp) <= total_drive(raii) + 1e-6


class TestILP:
    def test_constraints_hold(self, oracle):
        config = DispatchConfig()
        for seed in range(4):
            taxis, requests = random_frame(seed, n_taxis=4, n_requests=6)
            schedule = ILPDispatcher(oracle, config).dispatch(taxis, requests)
            check_schedule_constraints(schedule, taxis, requests, oracle, config)

    def test_exact_not_worse_than_greedy(self, oracle):
        config = DispatchConfig()
        for seed in range(4):
            taxis, requests = random_frame(seed, n_taxis=3, n_requests=6)
            exact = ILPDispatcher(oracle, config, exact_limit=10_000).dispatch(taxis, requests)
            greedy = ILPDispatcher(oracle, config, exact_limit=0).dispatch(taxis, requests)
            assert len(exact.served_request_ids) >= len(greedy.served_request_ids)

    def test_empty_inputs(self, oracle):
        assert ILPDispatcher(oracle).dispatch([], []).assignments == []


class TestRAIIvsSARPAtScale:
    def test_index_pruning_is_lossy_at_large_fleets(self, oracle):
        # The paper calls RAII's spatio-temporal index "information-
        # lossy".  At laptop-scale fleets the 3-candidate retrieval covers
        # most idle taxis and RAII collapses onto SARP; at a paper-scale
        # fleet the pruning visibly costs total drive distance.
        import numpy as np

        from repro.core import DispatchConfig

        rng = np.random.default_rng(0)
        taxis = [Taxi(i, Point(*rng.normal(0, 5, 2))) for i in range(200)]
        requests = [
            PassengerRequest(j, Point(*rng.normal(0, 5, 2)), Point(*rng.normal(0, 5, 2)))
            for j in range(300)
        ]
        config = DispatchConfig()

        def total_drive(schedule):
            taxi_by_id = {t.taxi_id: t for t in taxis}
            total = 0.0
            for a in schedule.assignments:
                previous = taxi_by_id[a.taxi_id].location
                for stop in a.stops:
                    total += oracle.distance(previous, stop.point)
                    previous = stop.point
            return total

        raii = RAIIDispatcher(oracle, config, max_batch=10**9).dispatch(taxis, requests)
        sarp = SARPDispatcher(oracle, config, max_batch=10**9).dispatch(taxis, requests)
        assert raii.taxi_of != sarp.taxi_of
        assert total_drive(sarp) < total_drive(raii)
        assert len(sarp.served_request_ids) >= len(raii.served_request_ids)
