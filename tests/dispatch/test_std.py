"""Unit tests for Algorithm 3 (STD-P / STD-T sharing dispatch)."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch import std_p, std_t
from repro.dispatch.sharing import STDDispatcher, build_sharing_table, pack_requests
from repro.dispatch.sharing.std import clip_batch
from repro.geometry import EuclideanDistance, Point
from repro.matching import Matching, is_stable


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy, passengers=1):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy), passengers=passengers)


def random_frame(seed, n_taxis=6, n_requests=10):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


class TestPackRequests:
    def test_all_requests_covered_exactly_once(self, oracle):
        _, requests = random_frame(0)
        units = pack_requests(requests, oracle, DispatchConfig())
        covered = [rid for g in units for rid in g.request_ids]
        assert sorted(covered) == sorted(r.request_id for r in requests)

    def test_nested_trips_get_packed(self, oracle):
        requests = [request(1, 0, 0, 6, 0), request(2, 1, 0, 5, 0), request(3, 50, 50, 55, 50)]
        units = pack_requests(requests, oracle, DispatchConfig(theta_km=0.5))
        sizes = sorted(g.size for g in units)
        assert sizes == [1, 2]

    def test_unknown_packer_rejected(self, oracle):
        with pytest.raises(Exception):
            pack_requests([], oracle, DispatchConfig(), packer="nope")

    def test_exact_packer_on_small_input(self, oracle):
        requests = [request(i, 0.1 * i, 0, 5, 0) for i in range(1, 6)]
        units = pack_requests(requests, oracle, DispatchConfig(), packer="exact")
        covered = [rid for g in units for rid in g.request_ids]
        assert sorted(covered) == [1, 2, 3, 4, 5]

    def test_group_ids_unique_and_consecutive(self, oracle):
        _, requests = random_frame(1)
        units = pack_requests(requests, oracle, DispatchConfig())
        assert [g.group_id for g in units] == list(range(len(units)))


class TestClipBatch:
    def test_auto_bound_scales_with_fleet(self):
        requests = [request(i, 0, 0, 1, 0) for i in range(200)]
        taxis = [Taxi(i, Point(0, 0)) for i in range(3)]
        config = DispatchConfig(max_group_size=3)
        batch = clip_batch(requests, taxis, config, None)
        assert len(batch) == 3 * 3 + 8 * 3
        # Oldest requests are kept.
        assert [r.request_id for r in batch] == list(range(len(batch)))

    def test_explicit_bound(self):
        requests = [request(i, 0, 0, 1, 0) for i in range(10)]
        batch = clip_batch(requests, [Taxi(0, Point(0, 0))], DispatchConfig(), 4)
        assert len(batch) == 4

    def test_large_bound_disables_clipping(self):
        requests = [request(i, 0, 0, 1, 0) for i in range(10)]
        batch = clip_batch(requests, [], DispatchConfig(), 10_000)
        assert len(batch) == 10


class TestSharingTable:
    def test_singleton_scores_reduce_to_nonsharing(self, oracle):
        # The paper notes the sharing formulas collapse to the non-sharing
        # ones for |c_k| = 1.
        taxis = [Taxi(0, Point(0, 0))]
        r = request(1, 3, 4, 3, 10)  # pickup 5 km, trip 6 km
        units = pack_requests([r], oracle, DispatchConfig())
        table = build_sharing_table(taxis, units, oracle, DispatchConfig())
        assert table.proposer_scores[(0, 0)] == pytest.approx(5.0)
        assert table.reviewer_scores[(0, 0)] == pytest.approx(5.0 - 6.0)

    def test_seat_capacity_excludes_groups(self, oracle):
        taxis = [Taxi(0, Point(0, 0), seats=2)]
        requests = [
            request(1, 0, 0, 4, 0, passengers=2),
            request(2, 1, 0, 3, 0, passengers=2),
        ]
        units = pack_requests(requests, oracle, DispatchConfig(), max_passengers=4)
        table = build_sharing_table(taxis, units, oracle, DispatchConfig())
        for unit in units:
            if unit.total_passengers > 2:
                assert table.proposer_prefs[unit.group_id] == ()


class TestSTDDispatcher:
    @pytest.mark.parametrize("factory", [std_p, std_t])
    def test_valid_schedules(self, oracle, factory):
        for seed in range(6):
            taxis, requests = random_frame(seed)
            schedule = factory(oracle, DispatchConfig()).dispatch(taxis, requests)
            schedule.validate(taxis, requests)

    def test_stage_two_matching_is_stable_on_units(self, oracle):
        taxis, requests = random_frame(3)
        config = DispatchConfig(passenger_threshold_km=10.0, taxi_threshold_km=10.0)
        dispatcher = std_p(oracle, config)
        schedule = dispatcher.dispatch(taxis, requests)
        # Rebuild the unit market the dispatcher saw and check stability
        # of the produced unit-taxi matching.
        max_seats = max(t.seats for t in taxis)
        units = pack_requests(requests, oracle, config, max_passengers=max_seats)
        table = build_sharing_table(taxis, units, oracle, config)
        unit_by_members = {g.request_ids: g.group_id for g in units}
        pairs = {}
        for assignment in schedule.assignments:
            unit_id = unit_by_members[assignment.request_ids]
            pairs[unit_id] = assignment.taxi_id
        assert is_stable(table, Matching(pairs))

    def test_groups_respect_theta(self, oracle):
        taxis, requests = random_frame(4)
        theta = 1.0
        config = DispatchConfig(theta_km=theta)
        schedule = std_p(oracle, config).dispatch(taxis, requests)
        request_by_id = {r.request_id: r for r in requests}
        for assignment in schedule.assignments:
            if len(assignment.request_ids) == 1:
                continue
            # Walk the route and check each member's onboard excess.
            cumulative = 0.0
            previous = None
            pickup_at = {}
            for stop in assignment.stops:
                if previous is not None:
                    cumulative += oracle.distance(previous, stop.point)
                previous = stop.point
                if stop.is_pickup:
                    pickup_at[stop.request_id] = cumulative
                else:
                    onboard = cumulative - pickup_at[stop.request_id]
                    direct = request_by_id[stop.request_id].trip_distance(oracle)
                    assert onboard - direct <= theta + 1e-6

    def test_invalid_mode_rejected(self, oracle):
        with pytest.raises(ValueError):
            STDDispatcher(oracle, optimize_for="company")

    def test_names(self, oracle):
        assert std_p(oracle).name == "STD-P"
        assert std_t(oracle).name == "STD-T"

    def test_empty_inputs(self, oracle):
        dispatcher = std_p(oracle)
        assert dispatcher.dispatch([], []).assignments == []


class TestPaperExactPath:
    def test_unclipped_unpruned_enumeration_on_small_frame(self, oracle):
        # The paper's literal semantics: no batch clipping, no pairing
        # radius, no metric pruning.  On a small frame the engineered
        # defaults must serve the same requests with valid schedules.
        taxis, requests = random_frame(7, n_taxis=4, n_requests=8)
        config = DispatchConfig()
        exact = STDDispatcher(
            oracle, config, packer="exact", pairing_radius_km=None, max_batch=10**9
        )
        schedule = exact.dispatch(taxis, requests)
        schedule.validate(taxis, requests)
        default = std_p(oracle, config).dispatch(taxis, requests)
        assert schedule.served_request_ids == default.served_request_ids

    def test_exact_packer_never_packs_fewer_groups(self, oracle):
        from repro.dispatch.sharing import pack_requests

        _, requests = random_frame(8, n_requests=8)
        config = DispatchConfig()
        exact_units = pack_requests(requests, oracle, config, packer="exact")
        local_units = pack_requests(requests, oracle, config, packer="local")
        exact_groups = sum(1 for g in exact_units if g.size > 1)
        local_groups = sum(1 for g in local_units if g.size > 1)
        assert exact_groups >= local_groups
