"""Property tests: the sharded solve is the global DA, always.

Hypothesis drives frames built from *adversarial geometries* for the
θ-ball decomposition — candidate pairs sitting exactly on the θ and 2θ
acceptability boundaries, duplicated coordinates (many entities in one
grid cell), one giant connected component, widely separated singleton
clusters, and empty sides — and asserts that
:func:`~repro.matching.sharding.sharded_nonsharing_match` returns the
*identical* matching to the global deferred-acceptance solve, for both
optimization modes, at several coarsening cell sizes including the
degenerate single-cell extreme.

A second property pins determinism: permuting the input order of taxis
and requests never changes the matched pairs (the decomposition labels
permute with the entities; preference ties break on global ids, not
positions), so the sharded path inherits the global solver's
order-independence.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching import sharded_nonsharing_match, solve_shard

ORACLE = EuclideanDistance()

# Unthresholded, and two θ / 2θ operating points whose integer
# thresholds sit on exact integer-grid distances, so generated pairs
# regularly land exactly on the acceptability boundary.
CONFIGS = (
    DispatchConfig(),
    DispatchConfig(passenger_threshold_km=2.0, taxi_threshold_km=4.0),
    DispatchConfig(passenger_threshold_km=1.0, taxi_threshold_km=2.0),
)

# None picks the median-radius default; 0.25 over-fragments the cell
# graph; 1000.0 merges everything into one shard (the global solve
# itself) — correctness must hold at every granularity.
CELL_SIZES = (None, 0.25, 1.0, 1000.0)


def _points(rng: np.random.Generator, n: int, geometry: str) -> list[Point]:
    """``n`` points in one of the adversarial layouts."""
    if geometry == "giant":
        # One dense blob: a single θ-ball component.
        xy = rng.integers(-2, 3, size=(n, 2))
    elif geometry == "singletons":
        # Clusters far beyond any radius: mostly one-entity shards.
        centers = rng.integers(0, max(n, 1), size=n) * 1000
        xy = np.stack([centers, rng.integers(-1, 2, size=n)], axis=1)
    elif geometry == "boundary":
        # Points on a 1-km lattice line: with the θ=1, 2θ=2 configs the
        # pair distances hit the thresholds exactly.
        xy = np.stack([rng.integers(0, 6, size=n), np.zeros(n, dtype=np.int64)], axis=1)
    elif geometry == "duplicates":
        # Coordinates drawn from two cells only: heavy duplication.
        xy = rng.integers(0, 2, size=(n, 2)) * 3
    else:  # mixed integer grid
        xy = rng.integers(-6, 7, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in xy.tolist()]


def _frame(
    rng: np.random.Generator, geometry: str, n_taxis: int, n_requests: int
) -> tuple[list[Taxi], list[PassengerRequest]]:
    taxis = [
        Taxi(tid, p) for tid, p in enumerate(_points(rng, n_taxis, geometry))
    ]
    pickups = _points(rng, n_requests, geometry)
    dropoffs = _points(rng, n_requests, geometry)
    requests = [
        PassengerRequest(100 + rid, pickup, dropoff)
        for rid, (pickup, dropoff) in enumerate(zip(pickups, dropoffs))
    ]
    return taxis, requests


GEOMETRIES = ("giant", "singletons", "boundary", "duplicates", "mixed")


@settings(max_examples=120, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    geometry=st.sampled_from(GEOMETRIES),
    n_taxis=st.integers(min_value=0, max_value=9),
    n_requests=st.integers(min_value=0, max_value=9),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
    cell_index=st.integers(min_value=0, max_value=len(CELL_SIZES) - 1),
    mode=st.sampled_from(["passenger", "taxi"]),
)
def test_sharded_identical_to_global_da(
    seed, geometry, n_taxis, n_requests, config_index, cell_index, mode
):
    config = CONFIGS[config_index]
    taxis, requests = _frame(np.random.default_rng(seed), geometry, n_taxis, n_requests)

    sharded, decomp = sharded_nonsharing_match(
        taxis,
        requests,
        ORACLE,
        config,
        optimize_for=mode,
        cell_km=CELL_SIZES[cell_index],
    )
    if not taxis or not requests:
        # Empty sides short-circuit to an explicitly degenerate
        # decomposition and an empty matching.
        assert sharded.pairs == frozenset()
        assert decomp.degenerate_reason == "empty-side"
        return

    global_da = solve_shard(taxis, requests, ORACLE, config, optimize_for=mode)
    assert sharded.pairs == global_da.pairs

    # The label arrays cover the frame even when the cell graph merged
    # everything into one shard.
    assert decomp.taxi_labels.shape == (len(taxis),)
    assert decomp.request_labels.shape == (len(requests),)
    assert decomp.n_shards >= 1


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    geometry=st.sampled_from(GEOMETRIES),
    n_taxis=st.integers(min_value=1, max_value=8),
    n_requests=st.integers(min_value=1, max_value=8),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
    mode=st.sampled_from(["passenger", "taxi"]),
)
def test_sharded_deterministic_under_permutation(
    seed, geometry, n_taxis, n_requests, config_index, mode
):
    config = CONFIGS[config_index]
    rng = np.random.default_rng(seed)
    taxis, requests = _frame(rng, geometry, n_taxis, n_requests)

    reference, _ = sharded_nonsharing_match(
        taxis, requests, ORACLE, config, optimize_for=mode
    )
    shuffled_taxis = [taxis[i] for i in rng.permutation(len(taxis)).tolist()]
    shuffled_requests = [requests[j] for j in rng.permutation(len(requests)).tolist()]
    permuted, _ = sharded_nonsharing_match(
        shuffled_taxis, shuffled_requests, ORACLE, config, optimize_for=mode
    )
    assert permuted.pairs == reference.pairs
