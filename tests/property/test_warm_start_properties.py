"""Property tests: warm-start matching is bit-identical to cold, always.

Hypothesis drives random multi-frame *churn sequences* that follow the
simulation engine's contract — matched pairs leave together, unmatched
requests persist as the same frozen objects (some expire), matched
taxis go busy and return moved, idle taxis occasionally reposition,
fresh entities arrive — and asserts the warm-start machinery agrees
with a cold solve on everything observable, at each of its layers:

* the warm-started :class:`~repro.dispatch.nonsharing.nstd.
  NSTDDispatcher` produces the *identical* schedule to a stateless one
  on every frame of every sequence, for both the passenger- and
  taxi-optimal modes, with zero fallbacks (the emulated churn never
  breaks a warm precondition);
* :func:`~repro.matching.incremental.incremental_nonsharing_arrays`
  rebuilds a *structurally identical* :class:`~repro.matching.arrays.
  PreferenceArrays` from churn-sized strips (every field, not just the
  matching);
* :func:`~repro.matching.incremental.resume_deferred_acceptance`
  reaches the same stable matching as a cold solve, or raises
  :class:`~repro.core.errors.WarmStartError` — in which case the
  documented fallback (a cold solve) restores identity.

Frames use integer coordinates with integer θ/2θ dummy thresholds so
candidates regularly land *exactly* on the acceptability boundary, and
the churn emulation deliberately produces empty-side frames (no idle
taxis, or a drained queue) which the dispatcher must skip without
corrupting its carried state.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.core.errors import WarmStartError
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    WarmFrameState,
    build_nonsharing_arrays,
    classify_frame_churn,
    deferred_acceptance_arrays,
    deferred_acceptance_resumable,
    incremental_nonsharing_arrays,
    resume_deferred_acceptance,
)

ORACLE = EuclideanDistance()

# Unthresholded, and two θ / 2θ operating points whose integer
# thresholds sit on exact integer-grid distances.
CONFIGS = (
    DispatchConfig(),
    DispatchConfig(passenger_threshold_km=2.0, taxi_threshold_km=4.0),
    DispatchConfig(passenger_threshold_km=1.0, taxi_threshold_km=2.0),
)

ARRAY_FIELDS = (
    "proposer_ids",
    "reviewer_ids",
    "proposer_indptr",
    "proposer_list",
    "proposer_list_rank",
    "reviewer_indptr",
    "reviewer_list",
    "reviewer_list_rank",
    "proposer_rank",
    "reviewer_rank",
)


class ChurnWorld:
    """Engine-contract frame churn, driven by a seeded RNG.

    Mirrors what the simulation engine presents to the dispatcher:
    retained requests are the *same objects* frame over frame, a taxi
    that stayed idle and unmoved is the same object (the engine
    memoizes snapshots on the location object), matched entities leave
    together, and busy taxis return later as fresh objects at new
    positions.
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.taxis: dict[int, Taxi] = {}
        self.busy: dict[int, int] = {}
        self.queue: list[PassengerRequest] = []
        self.next_taxi = 0
        self.next_request = 0

    def _point(self) -> Point:
        return Point(float(self.rng.integers(-4, 5)), float(self.rng.integers(-4, 5)))

    def step(self, frame: int) -> tuple[list[Taxi], list[PassengerRequest]]:
        rng = self.rng
        for tid in [t for t, back in self.busy.items() if back <= frame]:
            del self.busy[tid]
            self.taxis[tid] = Taxi(tid, self._point())  # returned: moved
        for _ in range(int(rng.integers(0, 3))):
            self.taxis[self.next_taxi] = Taxi(
                self.next_taxi, self._point(), seats=int(rng.integers(1, 5))
            )
            self.next_taxi += 1
        for tid in list(self.taxis):
            if rng.random() < 0.15:  # repositioning rebinds the snapshot
                self.taxis[tid] = Taxi(tid, self._point(), seats=self.taxis[tid].seats)
        self.queue = [r for r in self.queue if rng.random() > 0.2]  # expiries
        for _ in range(int(rng.integers(0, 4))):
            self.queue.append(
                PassengerRequest(
                    self.next_request,
                    self._point(),
                    self._point(),
                    passengers=int(rng.integers(1, 5)),
                )
            )
            self.next_request += 1
        if rng.random() < 0.1:
            self.queue = []  # drained-queue boundary frame
        return list(self.taxis.values()), list(self.queue)

    def absorb(self, served_requests: set, dispatched_taxis: set, frame: int) -> None:
        """Matched pairs leave together; taxis return a few frames on."""
        self.queue = [r for r in self.queue if r.request_id not in served_requests]
        for tid in dispatched_taxis:
            del self.taxis[tid]
            self.busy[tid] = frame + 1 + int(self.rng.integers(0, 3))


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_frames=st.integers(min_value=2, max_value=7),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
    mode=st.sampled_from(["passenger", "taxi"]),
)
def test_warm_dispatcher_identical_to_cold_over_churn(seed, n_frames, config_index, mode):
    config = CONFIGS[config_index]
    warm = NSTDDispatcher(ORACLE, config, optimize_for=mode, warm_start=True)
    cold = NSTDDispatcher(ORACLE, config, optimize_for=mode)
    world = ChurnWorld(np.random.default_rng(seed))
    solved_any = False
    for frame in range(n_frames):
        taxis, requests = world.step(frame)
        warm_schedule = warm.dispatch(taxis, requests)
        cold_schedule = cold.dispatch(taxis, requests)
        assert [
            (a.taxi_id, a.request_ids, a.stops) for a in warm_schedule.assignments
        ] == [(a.taxi_id, a.request_ids, a.stops) for a in cold_schedule.assignments]
        world.absorb(
            warm_schedule.served_request_ids, warm_schedule.dispatched_taxi_ids, frame
        )
        solved_any = solved_any or bool(taxis and requests)
    telemetry = warm.run_telemetry()
    # The engine-contract churn never breaks a warm precondition: every
    # non-empty frame after the first is answered warm.
    assert telemetry.get("warm_fallbacks", 0) == 0
    if solved_any:
        assert telemetry.get("warm_frames", 0) + telemetry.get("cold_frames", 0) >= 1


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_frames=st.integers(min_value=2, max_value=6),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_incremental_arrays_and_resume_identical(seed, n_frames, config_index):
    config = CONFIGS[config_index]
    world = ChurnWorld(np.random.default_rng(seed))
    state = da_state = None
    for frame in range(n_frames):
        taxis, requests = world.step(frame)
        if not taxis or not requests:
            continue  # the dispatcher skips empty frames; so does this loop
        cold_arrays = build_nonsharing_arrays(taxis, requests, ORACLE, config)
        cold_matching = deferred_acceptance_arrays(cold_arrays)
        alphas = {t.taxi_id: config.alpha for t in taxis}
        if state is None:
            matching, _, da_state = deferred_acceptance_resumable(cold_arrays)
        else:
            churn = classify_frame_churn(state, taxis, requests, alphas=alphas)
            warm_arrays, stats = incremental_nonsharing_arrays(
                state, taxis, requests, ORACLE, config, churn=churn
            )
            # Structural identity: every field, not merely the matching.
            for field in ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(warm_arrays, field), getattr(cold_arrays, field)
                ), field
            assert 0 <= stats.pairs_scored <= stats.full_pairs
            try:
                matching, _, da_state = resume_deferred_acceptance(
                    da_state,
                    warm_arrays,
                    retained_proposer_ids={
                        int(requests[i].request_id) for i in churn.retained_requests
                    },
                    retained_reviewer_ids={
                        int(taxis[i].taxi_id) for i in churn.retained_taxis
                    },
                )
            except WarmStartError:
                # A legitimately unreachable seed (e.g. a new taxi that
                # outranks an already-proposed one): the documented
                # fallback is a cold solve, which must restore identity.
                matching, _, da_state = deferred_acceptance_resumable(cold_arrays)
        assert matching.pairs == cold_matching.pairs
        state = WarmFrameState.from_frame(
            taxis, requests, matching, alphas=alphas, da_state=da_state
        )
        world.absorb(
            {p for p, _ in matching.pairs}, {t for _, t in matching.pairs}, frame
        )
