"""Property-based tests of the lattice operations and SMTI algorithms."""

from hypothesis import given, settings, strategies as st

from repro.matching import (
    TiedPreferenceTable,
    all_stable_matchings,
    deferred_acceptance,
    is_stable,
    join,
    kiraly_max_stable,
    lattice_extremes,
    max_weakly_stable_brute_force,
    median_stable_matching,
    meet,
    taxi_optimal,
    weakly_stable,
)
from repro.matching.preferences import PreferenceTable

REVIEWER_BASE = 1000


@st.composite
def preference_tables(draw, max_side=5):
    n_proposers = draw(st.integers(min_value=1, max_value=max_side))
    n_reviewers = draw(st.integers(min_value=1, max_value=max_side))
    proposers = list(range(n_proposers))
    reviewers = list(range(REVIEWER_BASE, REVIEWER_BASE + n_reviewers))
    pairs = [
        (p, r) for p in proposers for r in reviewers if draw(st.booleans())
    ]
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (q, r) in pairs if q == p]
        proposer_prefs[p] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = [p for (p, q) in pairs if q == r]
        reviewer_prefs[r] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    return PreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)


@st.composite
def tied_tables(draw, max_side=5):
    n_proposers = draw(st.integers(min_value=1, max_value=max_side))
    n_reviewers = draw(st.integers(min_value=1, max_value=max_side))
    proposers = list(range(n_proposers))
    reviewers = list(range(REVIEWER_BASE, REVIEWER_BASE + n_reviewers))
    pairs = [(p, r) for p in proposers for r in reviewers if draw(st.booleans())]
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (q, r) in pairs if q == p]
        proposer_prefs[p] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = list(draw(st.permutations([p for (p, q) in pairs if q == r]))) if any(
            q == r for (_, q) in pairs
        ) else []
        groups = []
        index = 0
        while index < len(acceptable):
            size = draw(st.integers(min_value=1, max_value=len(acceptable) - index))
            groups.append(tuple(sorted(acceptable[index : index + size])))
            index += size
        reviewer_prefs[r] = tuple(groups)
    return TiedPreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)


@settings(max_examples=80, deadline=None)
@given(preference_tables(max_side=4))
def test_join_meet_closed_over_lattice(table):
    matchings = all_stable_matchings(table)
    lattice = set(matchings)
    for a in matchings:
        for b in matchings:
            assert join(table, a, b) in lattice
            assert meet(table, a, b) in lattice


@settings(max_examples=80, deadline=None)
@given(preference_tables(max_side=4))
def test_lattice_identities(table):
    matchings = all_stable_matchings(table)
    for a in matchings:
        assert join(table, a, a) == a
        assert meet(table, a, a) == a
    for a in matchings:
        for b in matchings:
            # Absorption: a ∨ (a ∧ b) = a.
            assert join(table, a, meet(table, a, b)) == a


@settings(max_examples=80, deadline=None)
@given(preference_tables(max_side=4))
def test_median_is_stable_and_between_extremes(table):
    matchings = all_stable_matchings(table)
    median = median_stable_matching(table, matchings)
    assert is_stable(table, median)
    top, bottom = lattice_extremes(table)
    assert top == deferred_acceptance(table)
    assert bottom == taxi_optimal(table)
    # The median lies between the extremes: joining with the top gives
    # the top, meeting with the bottom gives the bottom.
    assert join(table, median, top) == top
    assert meet(table, median, bottom) == bottom


@settings(max_examples=100, deadline=None)
@given(tied_tables(max_side=4))
def test_kiraly_weakly_stable_and_two_thirds(table):
    matching = kiraly_max_stable(table)
    assert weakly_stable(table, matching)
    optimum = max_weakly_stable_brute_force(table)
    if optimum.size:
        assert 3 * matching.size >= 2 * optimum.size


@settings(max_examples=100, deadline=None)
@given(tied_tables(max_side=4))
def test_kiraly_matches_only_acceptable_pairs(table):
    matching = kiraly_max_stable(table)
    for proposer, reviewer in matching.pairs:
        assert table.proposer_rank(proposer, reviewer) is not None
        assert table.reviewer_tie_level(reviewer, proposer) is not None
