"""Property-based tests of the set-packing solvers."""

from hypothesis import given, settings, strategies as st

from repro.packing import (
    exact_set_packing,
    greedy_set_packing,
    local_search_packing,
    verify_packing,
)


@st.composite
def set_families(draw, max_sets=9, universe=9):
    n = draw(st.integers(min_value=1, max_value=max_sets))
    sets = []
    for _ in range(n):
        size = draw(st.integers(min_value=1, max_value=3))
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        sets.append(frozenset(members))
    return sets


@settings(max_examples=120, deadline=None)
@given(set_families())
def test_all_solvers_produce_valid_packings(sets):
    for result in (greedy_set_packing(sets), local_search_packing(sets), exact_set_packing(sets)):
        assert verify_packing(sets, result.chosen)
        union = set()
        for index in result.chosen:
            union |= set(sets[index])
        assert union == set(result.covered)


@settings(max_examples=120, deadline=None)
@given(set_families())
def test_solver_quality_ordering(sets):
    greedy = greedy_set_packing(sets).size
    local = local_search_packing(sets).size
    exact = exact_set_packing(sets).size
    assert greedy <= local <= exact


@settings(max_examples=80, deadline=None)
@given(set_families(max_sets=7, universe=7))
def test_local_search_meets_cited_ratio(sets):
    # The paper cites a (max|c| + 2)/3 approximation for MSPP [21]; with
    # |c| <= 3 that is 5/3.  Local search must never fall below it.
    local = local_search_packing(sets, swap_out=2).size
    exact = exact_set_packing(sets).size
    assert 3 * local >= 3 * exact / (5 / 3) - 1e-9


@settings(max_examples=80, deadline=None)
@given(set_families())
def test_exact_is_maximal(sets):
    # No unused set can be disjoint from an optimal packing's cover
    # (otherwise the packing was not maximum).
    result = exact_set_packing(sets)
    for index, members in enumerate(sets):
        if index not in result.chosen:
            assert set(members) & set(result.covered)
