"""Property tests: the array engine is bit-identical to the dict oracle.

Hypothesis generates random preference markets and random geometric
frames and asserts the array deferred-acceptance engine agrees with the
retained dict reference on *everything* observable: the matching, the
proposal/refusal counters (McVitie–Wilson order-independence makes them
engine-invariant, see the module docstring of
``repro.matching.deferred_acceptance``), the unserved set, and the
stability verdicts.  Degenerate markets — an empty side, all-empty
preference lists — and dummy-threshold boundary frames (candidates at
*exactly* the threshold distance) are exercised explicitly.
"""

from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    PreferenceArrays,
    PreferenceTable,
    build_nonsharing_arrays,
    build_nonsharing_table,
    deferred_acceptance_arrays,
    deferred_acceptance_dict,
    find_blocking_pairs,
    is_stable,
)

ORACLE = EuclideanDistance()
REVIEWER_BASE = 1000


@st.composite
def preference_tables(draw, max_side=5, min_side=1):
    n_proposers = draw(st.integers(min_value=min_side, max_value=max_side))
    n_reviewers = draw(st.integers(min_value=min_side, max_value=max_side))
    proposers = list(range(n_proposers))
    reviewers = list(range(REVIEWER_BASE, REVIEWER_BASE + n_reviewers))
    pairs = []
    for p in proposers:
        for r in reviewers:
            if draw(st.booleans()):
                pairs.append((p, r))
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (pp, r) in pairs if pp == p]
        proposer_prefs[p] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = [p for (p, rr) in pairs if rr == r]
        reviewer_prefs[r] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    return PreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)


@st.composite
def geometric_frames(draw):
    """Small taxi/request frames on an integer grid.

    Integer coordinates make Euclidean distances along an axis exact,
    so together with integer thresholds the strategy regularly produces
    candidates at *exactly* the dummy threshold — the boundary the
    builders must agree on (``<=`` keeps the pair, ``>`` drops it).
    """
    n_taxis = draw(st.integers(min_value=0, max_value=6))
    n_requests = draw(st.integers(min_value=0, max_value=6))
    coord = st.integers(min_value=-4, max_value=4)
    taxis = [
        Taxi(i, Point(float(draw(coord)), float(draw(coord)))) for i in range(n_taxis)
    ]
    requests = [
        PassengerRequest(
            j,
            Point(float(draw(coord)), float(draw(coord))),
            Point(float(draw(coord)), float(draw(coord))),
        )
        for j in range(n_requests)
    ]
    inf = float("inf")
    passenger_threshold = draw(st.sampled_from([inf, 1.0, 2.0, 3.0]))
    taxi_threshold = draw(st.sampled_from([inf, 0.0, 1.0, 4.0]))
    config = DispatchConfig(
        passenger_threshold_km=passenger_threshold, taxi_threshold_km=taxi_threshold
    )
    return taxis, requests, config


def _run_both(table):
    arrays = PreferenceArrays.from_table(table)
    matching_dict, stats_dict = deferred_acceptance_dict(table, with_stats=True)
    matching_array, stats_array = deferred_acceptance_arrays(arrays, with_stats=True)
    return matching_dict, stats_dict, matching_array, stats_array


@settings(max_examples=200, deadline=None)
@given(preference_tables())
def test_array_engine_matches_dict_engine(table):
    matching_dict, stats_dict, matching_array, stats_array = _run_both(table)
    assert matching_dict.pairs == matching_array.pairs
    assert stats_dict == stats_array


@settings(max_examples=150, deadline=None)
@given(preference_tables())
def test_unserved_sets_agree(table):
    matching_dict, _, matching_array, _ = _run_both(table)
    proposers = set(table.proposer_prefs)
    assert (
        proposers - matching_dict.matched_proposers
        == proposers - matching_array.matched_proposers
    )


@settings(max_examples=150, deadline=None)
@given(preference_tables(max_side=4))
def test_verification_agrees_across_representations(table):
    arrays = PreferenceArrays.from_table(table)
    matching = deferred_acceptance_arrays(arrays)
    assert is_stable(table, matching) and is_stable(arrays, matching)
    assert find_blocking_pairs(table, matching) == find_blocking_pairs(arrays, matching)


@settings(max_examples=150, deadline=None)
@given(geometric_frames())
def test_builders_agree_including_threshold_boundaries(frame):
    taxis, requests, config = frame
    table = build_nonsharing_table(taxis, requests, ORACLE, config)
    direct = build_nonsharing_arrays(taxis, requests, ORACLE, config)
    packed = PreferenceArrays.from_table(table)
    assert direct.equals(packed)
    direct.validate()
    # And the engines agree on the geometric market too.
    matching_dict, stats_dict = deferred_acceptance_dict(table, with_stats=True)
    matching_array, stats_array = deferred_acceptance_arrays(direct, with_stats=True)
    assert matching_dict.pairs == matching_array.pairs
    assert stats_dict == stats_array


@settings(max_examples=100, deadline=None)
@given(preference_tables())
def test_round_trip_table_arrays_table(table):
    arrays = PreferenceArrays.from_table(table)
    back = arrays.to_table()
    assert back.proposer_prefs == table.proposer_prefs
    assert back.reviewer_prefs == table.reviewer_prefs


def test_empty_sides_and_empty_lists():
    cases = [
        PreferenceTable(proposer_prefs={}, reviewer_prefs={}),
        PreferenceTable(proposer_prefs={0: ()}, reviewer_prefs={}),
        PreferenceTable(proposer_prefs={}, reviewer_prefs={1000: ()}),
        PreferenceTable(proposer_prefs={0: (), 1: ()}, reviewer_prefs={1000: (), 1001: ()}),
    ]
    for table in cases:
        matching_dict, stats_dict, matching_array, stats_array = _run_both(table)
        assert matching_dict.pairs == matching_array.pairs == frozenset()
        assert stats_dict == stats_array
        assert stats_dict.proposals == stats_dict.refusals == 0
