"""Property-based tests of the analysis helpers."""

from hypothesis import assume, given, settings, strategies as st

from repro.analysis import (
    empirical_cdf,
    gini,
    jain_index,
    ordering_consistency,
    summarize_samples,
)

revenues = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=40
)
samples = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=40
)


@settings(max_examples=200, deadline=None)
@given(revenues)
def test_gini_bounds(values):
    g = gini(values)
    assert -1e-9 <= g <= 1.0


@settings(max_examples=200, deadline=None)
@given(revenues)
def test_jain_bounds(values):
    j = jain_index(values)
    assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9


@settings(max_examples=150, deadline=None)
@given(revenues, st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
def test_gini_scale_invariance(values, factor):
    assume(sum(values) > 0)
    scaled = [factor * v for v in values]
    assert abs(gini(values) - gini(scaled)) < 1e-6


@settings(max_examples=150, deadline=None)
@given(revenues, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_gini_decreases_with_flat_transfer(values, bonus):
    # Adding the same bonus to everyone cannot increase inequality.
    assume(sum(values) > 0)
    boosted = [v + bonus for v in values]
    assert gini(boosted) <= gini(values) + 1e-9


@settings(max_examples=200, deadline=None)
@given(samples)
def test_summary_interval_contains_mean(values):
    summary = summarize_samples(values)
    assert summary.ci_low - 1e-9 <= summary.mean <= summary.ci_high + 1e-9
    assert summary.n == len(values)


@settings(max_examples=200, deadline=None)
@given(samples)
def test_cdf_endpoints(values):
    cdf = empirical_cdf(values)
    assert cdf.at(min(values) - 1.0) == 0.0
    assert cdf.at(max(values)) == 1.0
    assert cdf.quantile(1.0) == max(values)


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=3, max_size=3),
        min_size=2,
        max_size=3,
    )
)
def test_ordering_consistency_win_fractions_sum_at_most_one(per_seed):
    wins = ordering_consistency(per_seed)
    assert sum(wins.values()) <= 1.0 + 1e-9
    assert all(0.0 <= fraction <= 1.0 for fraction in wins.values())
