"""Property-based tests of the geometry substrate."""

from hypothesis import given, settings, strategies as st

from repro.geometry import (
    EuclideanDistance,
    GridSpatialIndex,
    ManhattanDistance,
    Point,
)

coordinate = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coordinate, coordinate)


@settings(max_examples=200, deadline=None)
@given(points, points, points)
def test_euclidean_triangle_inequality(a, b, c):
    oracle = EuclideanDistance()
    assert oracle.distance(a, c) <= oracle.distance(a, b) + oracle.distance(b, c) + 1e-9


@settings(max_examples=200, deadline=None)
@given(points, points, points)
def test_manhattan_triangle_inequality(a, b, c):
    oracle = ManhattanDistance()
    assert oracle.distance(a, c) <= oracle.distance(a, b) + oracle.distance(b, c) + 1e-9


@settings(max_examples=200, deadline=None)
@given(points, points)
def test_metrics_symmetric_and_nonnegative(a, b):
    for oracle in (EuclideanDistance(), ManhattanDistance()):
        assert oracle.distance(a, b) >= 0.0
        assert oracle.distance(a, b) == oracle.distance(b, a)
        assert oracle.distance(a, a) == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(points, min_size=1, max_size=30),
    points,
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.05, max_value=8.0),
)
def test_spatial_index_nearest_matches_brute_force(items, query, k, cell_size):
    index = GridSpatialIndex(cell_size=cell_size)
    oracle = EuclideanDistance()
    keyed = {i: p for i, p in enumerate(items)}
    index.bulk_load(keyed.items())
    got = index.nearest(query, k=k)
    expected = sorted(
        ((oracle.distance(query, p), repr(i), i) for i, p in keyed.items())
    )[:k]
    assert [key for key, _ in got] == [i for _, _, i in expected]


@settings(max_examples=100, deadline=None)
@given(
    st.lists(points, min_size=0, max_size=25),
    points,
    st.floats(min_value=0.0, max_value=30.0),
    st.floats(min_value=0.05, max_value=8.0),
)
def test_spatial_index_within_matches_brute_force(items, query, radius, cell_size):
    index = GridSpatialIndex(cell_size=cell_size)
    oracle = EuclideanDistance()
    keyed = {i: p for i, p in enumerate(items)}
    index.bulk_load(keyed.items())
    got = {key for key, _ in index.within(query, radius)}
    expected = {i for i, p in keyed.items() if oracle.distance(query, p) <= radius}
    assert got == expected
