"""Property tests: every preference-construction engine is identical.

The vectorized engines (dense matrix and grid-pruned) must reproduce
the scalar double-loop reference *exactly* — same preference orders,
same deterministic id tie-breaks, bit-identical score floats — on
random geometry with heterogeneous per-driver alphas and
seat-infeasible pairs.  Coordinates are drawn partly from a coarse
integer lattice so equal scores (and hence the id tie-break) genuinely
occur instead of hiding behind float noise.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.geometry import (
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    Point,
    ScaledDistance,
)
from repro.matching import build_nonsharing_table
from repro.matching.preferences import _prune_eligible, build_nonsharing_table_reference

TAXI_ID_BASE = 100

#: Lattice coordinates collide often (score ties); continuous ones
#: exercise arbitrary float arithmetic.
coordinate = st.one_of(
    st.integers(min_value=-4, max_value=4).map(float),
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
)

points = st.builds(Point, coordinate, coordinate)

oracles = st.sampled_from(
    [
        EuclideanDistance(),
        ManhattanDistance(),
        ScaledDistance(EuclideanDistance(), 1.5),
        ScaledDistance(ManhattanDistance(), 2.0),
        # No exact batch kernels: exercises the scalar-fallback contract.
        HaversineDistance(),
    ]
)

configs = st.builds(
    DispatchConfig,
    passenger_threshold_km=st.sampled_from([math.inf, 2.0, 5.0, 400.0]),
    taxi_threshold_km=st.sampled_from([math.inf, -1.0, 1.0, 5.0]),
)


@st.composite
def markets(draw):
    taxis = [
        Taxi(TAXI_ID_BASE + i, draw(points), seats=draw(st.integers(1, 4)))
        for i in range(draw(st.integers(0, 6)))
    ]
    requests = [
        PassengerRequest(
            j, draw(points), draw(points), passengers=draw(st.integers(1, 6))
        )
        for j in range(draw(st.integers(0, 8)))
    ]
    alpha_by_taxi = {
        t.taxi_id: draw(st.sampled_from([0.0, 0.5, 1.0, 2.0]))
        for t in taxis
        if draw(st.booleans())
    }
    return taxis, requests, alpha_by_taxi


def assert_tables_identical(reference, candidate, context):
    assert candidate.proposer_prefs == reference.proposer_prefs, context
    assert candidate.reviewer_prefs == reference.reviewer_prefs, context
    # Dict equality on floats is bitwise up to 0.0 == -0.0; distances and
    # score differences here never produce negative zero from a positive
    # one, so this is the bit-identity check the kernels promise.
    assert candidate.proposer_scores == reference.proposer_scores, context
    assert candidate.reviewer_scores == reference.reviewer_scores, context


@settings(max_examples=120, deadline=None)
@given(markets(), oracles, configs)
def test_every_engine_matches_scalar_reference(market, oracle, config):
    taxis, requests, alpha_by_taxi = market
    reference = build_nonsharing_table_reference(
        taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
    )
    engines = ["dense", "auto"]
    if _prune_eligible(oracle, config):
        engines.append("pruned")
    for engine in engines:
        candidate = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi, engine=engine
        )
        assert_tables_identical(reference, candidate, engine)


@settings(max_examples=60, deadline=None)
@given(markets(), oracles)
def test_alpha_heterogeneity_changes_only_reviewer_side(market, oracle):
    """Sanity anchor: alphas shift driver scores, never pickup scores."""
    taxis, requests, alpha_by_taxi = market
    config = DispatchConfig()
    plain = build_nonsharing_table(taxis, requests, oracle, config)
    mixed = build_nonsharing_table(
        taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
    )
    shared = set(plain.proposer_scores) & set(mixed.proposer_scores)
    for pair in shared:
        assert plain.proposer_scores[pair] == mixed.proposer_scores[pair]


class TestThresholdBoundary:
    """A pair at *exactly* the acceptance threshold is always kept —
    the inclusive-boundary invariant grid pruning must preserve."""

    def test_boundary_pair_kept_by_every_engine(self):
        # Euclidean distance exactly 5.0 (3-4-5 triangle, exact in fp).
        taxis = [Taxi(TAXI_ID_BASE, Point(3.0, 4.0))]
        requests = [PassengerRequest(0, Point(0.0, 0.0), Point(0.0, 1.0))]
        oracle = EuclideanDistance()
        config = DispatchConfig(passenger_threshold_km=5.0, taxi_threshold_km=5.0)
        for engine in ("scalar", "dense", "pruned", "auto"):
            table = build_nonsharing_table(taxis, requests, oracle, config, engine=engine)
            assert table.proposer_prefs[0] == (TAXI_ID_BASE,), engine
            assert table.proposer_scores[(0, TAXI_ID_BASE)] == 5.0, engine

    def test_just_beyond_threshold_dropped_by_every_engine(self):
        taxis = [Taxi(TAXI_ID_BASE, Point(3.0, 4.0))]
        requests = [PassengerRequest(0, Point(0.0, 0.0), Point(0.0, 1.0))]
        oracle = EuclideanDistance()
        config = DispatchConfig(
            passenger_threshold_km=math.nextafter(5.0, 0.0), taxi_threshold_km=5.0
        )
        for engine in ("scalar", "dense", "pruned", "auto"):
            table = build_nonsharing_table(taxis, requests, oracle, config, engine=engine)
            assert table.proposer_prefs[0] == (), engine

    @settings(max_examples=80, deadline=None)
    @given(markets(), st.sampled_from([EuclideanDistance(), ManhattanDistance()]))
    def test_pruning_never_drops_an_acceptable_pair(self, market, oracle):
        """Set the passenger threshold to an exact realized distance, so
        some pair sits on the boundary, and require pruned == scalar."""
        taxis, requests, alpha_by_taxi = market
        distances = sorted(
            d
            for t in taxis
            for r in requests
            if (d := oracle.distance(t.location, r.pickup)) > 0.0
        )
        threshold = distances[len(distances) // 2] if distances else 1.0
        config = DispatchConfig(passenger_threshold_km=threshold)
        reference = build_nonsharing_table_reference(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
        )
        pruned = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi, engine="pruned"
        )
        assert_tables_identical(reference, pruned, "pruned-boundary")
