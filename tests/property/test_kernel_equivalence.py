"""Property tests: every preference-construction engine is identical.

The vectorized engines (dense matrix and grid-pruned) must reproduce
the scalar double-loop reference *exactly* — same preference orders,
same deterministic id tie-breaks, bit-identical score floats — on
random geometry with heterogeneous per-driver alphas and
seat-infeasible pairs.  Coordinates are drawn partly from a coarse
integer lattice so equal scores (and hence the id tie-break) genuinely
occur instead of hiding behind float noise.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch.nonsharing.mincost import build_cost_matrix
from repro.dispatch.sharing.preferences import (
    build_sharing_table,
    group_passenger_score,
    group_taxi_score,
)
from repro.geometry import (
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    Point,
    ScaledDistance,
)
from repro.matching import build_nonsharing_table
from repro.matching.preferences import _prune_eligible, build_nonsharing_table_reference
from repro.network import RoadNetwork
from repro.routing.shared_route import build_ride_group

TAXI_ID_BASE = 100

#: Lattice coordinates collide often (score ties); continuous ones
#: exercise arbitrary float arithmetic.
coordinate = st.one_of(
    st.integers(min_value=-4, max_value=4).map(float),
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
)

points = st.builds(Point, coordinate, coordinate)

#: All symmetric; the asymmetric batch-exact oracle (RoadNetwork with
#: oneway edges) is covered deterministically in
#: TestAsymmetricRoadNetwork below.
oracles = st.sampled_from(
    [
        EuclideanDistance(),
        ManhattanDistance(),
        ScaledDistance(EuclideanDistance(), 1.5),
        ScaledDistance(ManhattanDistance(), 2.0),
        # No exact batch kernels: exercises the scalar-fallback contract.
        HaversineDistance(),
    ]
)

configs = st.builds(
    DispatchConfig,
    passenger_threshold_km=st.sampled_from([math.inf, 2.0, 5.0, 400.0]),
    taxi_threshold_km=st.sampled_from([math.inf, -1.0, 1.0, 5.0]),
)


@st.composite
def markets(draw):
    taxis = [
        Taxi(TAXI_ID_BASE + i, draw(points), seats=draw(st.integers(1, 4)))
        for i in range(draw(st.integers(0, 6)))
    ]
    requests = [
        PassengerRequest(
            j, draw(points), draw(points), passengers=draw(st.integers(1, 6))
        )
        for j in range(draw(st.integers(0, 8)))
    ]
    alpha_by_taxi = {
        t.taxi_id: draw(st.sampled_from([0.0, 0.5, 1.0, 2.0]))
        for t in taxis
        if draw(st.booleans())
    }
    return taxis, requests, alpha_by_taxi


def assert_tables_identical(reference, candidate, context):
    assert candidate.proposer_prefs == reference.proposer_prefs, context
    assert candidate.reviewer_prefs == reference.reviewer_prefs, context
    # Dict equality on floats is bitwise up to 0.0 == -0.0; distances and
    # score differences here never produce negative zero from a positive
    # one, so this is the bit-identity check the kernels promise.
    assert candidate.proposer_scores == reference.proposer_scores, context
    assert candidate.reviewer_scores == reference.reviewer_scores, context


@settings(max_examples=120, deadline=None)
@given(markets(), oracles, configs)
def test_every_engine_matches_scalar_reference(market, oracle, config):
    taxis, requests, alpha_by_taxi = market
    reference = build_nonsharing_table_reference(
        taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
    )
    engines = ["dense", "auto"]
    if _prune_eligible(oracle, config):
        engines.append("pruned")
    for engine in engines:
        candidate = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi, engine=engine
        )
        assert_tables_identical(reference, candidate, engine)


@settings(max_examples=60, deadline=None)
@given(markets(), oracles)
def test_alpha_heterogeneity_changes_only_reviewer_side(market, oracle):
    """Sanity anchor: alphas shift driver scores, never pickup scores."""
    taxis, requests, alpha_by_taxi = market
    config = DispatchConfig()
    plain = build_nonsharing_table(taxis, requests, oracle, config)
    mixed = build_nonsharing_table(
        taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
    )
    shared = set(plain.proposer_scores) & set(mixed.proposer_scores)
    for pair in shared:
        assert plain.proposer_scores[pair] == mixed.proposer_scores[pair]


class TestThresholdBoundary:
    """A pair at *exactly* the acceptance threshold is always kept —
    the inclusive-boundary invariant grid pruning must preserve."""

    def test_boundary_pair_kept_by_every_engine(self):
        # Euclidean distance exactly 5.0 (3-4-5 triangle, exact in fp).
        taxis = [Taxi(TAXI_ID_BASE, Point(3.0, 4.0))]
        requests = [PassengerRequest(0, Point(0.0, 0.0), Point(0.0, 1.0))]
        oracle = EuclideanDistance()
        config = DispatchConfig(passenger_threshold_km=5.0, taxi_threshold_km=5.0)
        for engine in ("scalar", "dense", "pruned", "auto"):
            table = build_nonsharing_table(taxis, requests, oracle, config, engine=engine)
            assert table.proposer_prefs[0] == (TAXI_ID_BASE,), engine
            assert table.proposer_scores[(0, TAXI_ID_BASE)] == 5.0, engine

    def test_just_beyond_threshold_dropped_by_every_engine(self):
        taxis = [Taxi(TAXI_ID_BASE, Point(3.0, 4.0))]
        requests = [PassengerRequest(0, Point(0.0, 0.0), Point(0.0, 1.0))]
        oracle = EuclideanDistance()
        config = DispatchConfig(
            passenger_threshold_km=math.nextafter(5.0, 0.0), taxi_threshold_km=5.0
        )
        for engine in ("scalar", "dense", "pruned", "auto"):
            table = build_nonsharing_table(taxis, requests, oracle, config, engine=engine)
            assert table.proposer_prefs[0] == (), engine

    @settings(max_examples=80, deadline=None)
    @given(markets(), st.sampled_from([EuclideanDistance(), ManhattanDistance()]))
    def test_pruning_never_drops_an_acceptable_pair(self, market, oracle):
        """Set the passenger threshold to an exact realized distance, so
        some pair sits on the boundary, and require pruned == scalar."""
        taxis, requests, alpha_by_taxi = market
        distances = sorted(
            d
            for t in taxis
            for r in requests
            if (d := oracle.distance(t.location, r.pickup)) > 0.0
        )
        threshold = distances[len(distances) // 2] if distances else 1.0
        config = DispatchConfig(passenger_threshold_km=threshold)
        reference = build_nonsharing_table_reference(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi
        )
        pruned = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi, engine="pruned"
        )
        assert_tables_identical(reference, pruned, "pruned-boundary")


def oneway_ring() -> RoadNetwork:
    """A 4-node one-way ring: D(u, v) and D(v, u) always differ."""
    network = RoadNetwork()
    corners = [Point(0.0, 0.0), Point(10.0, 0.0), Point(10.0, 10.0), Point(0.0, 10.0)]
    for node_id, point in enumerate(corners):
        network.add_node(node_id, point)
    for u in range(4):
        network.add_edge(u, (u + 1) % 4, 10.0, oneway=True)
    return network


class TestAsymmetricRoadNetwork:
    """RoadNetwork is the only asymmetric batch-exact oracle, so the
    (taxi, pickup) argument order of every batched consumer — and the
    scalar ``(offset_taxi + node_km) + offset_pickup`` float association
    — is only observable here.  Query points sit off-node so every snap
    offset is distinct and nonzero."""

    def setup_method(self):
        self.network = oneway_ring()
        self.config = DispatchConfig(
            passenger_threshold_km=math.inf, taxi_threshold_km=math.inf
        )
        self.taxis = [
            Taxi(TAXI_ID_BASE, Point(0.25, 0.0), seats=2),
            Taxi(TAXI_ID_BASE + 1, Point(10.0, 0.125), seats=4),
        ]
        # Request 1 needs 3 seats: the first taxi is seat-infeasible.
        self.requests = [
            PassengerRequest(0, Point(10.0, 0.5), Point(10.0, 9.5), passengers=1),
            PassengerRequest(1, Point(0.0625, 0.0), Point(0.0, 9.75), passengers=3),
        ]

    def test_table_scores_use_taxi_to_pickup_direction(self):
        taxi, request = self.taxis[0], self.requests[0]
        forward = self.network.distance(taxi.location, request.pickup)
        backward = self.network.distance(request.pickup, taxi.location)
        assert forward != backward  # the ring makes a flipped kernel visible
        table = build_nonsharing_table(
            self.taxis, self.requests, self.network, self.config, engine="dense"
        )
        assert table.proposer_scores[(0, TAXI_ID_BASE)] == forward

    def test_vectorized_engines_match_scalar_reference(self):
        reference = build_nonsharing_table_reference(
            self.taxis, self.requests, self.network, self.config
        )
        for engine in ("dense", "auto"):
            candidate = build_nonsharing_table(
                self.taxis, self.requests, self.network, self.config, engine=engine
            )
            assert_tables_identical(reference, candidate, engine)

    def test_cost_matrix_uses_taxi_to_pickup_direction(self):
        matrix = build_cost_matrix(self.taxis, self.requests, self.network)
        for j, request in enumerate(self.requests):
            for i, taxi in enumerate(self.taxis):
                if request.passengers <= taxi.seats:
                    expected = self.network.distance(taxi.location, request.pickup)
                    assert matrix[j, i] == expected
                else:
                    assert matrix[j, i] == math.inf

    def test_sharing_table_matches_scalar_score_functions(self):
        groups = [
            build_ride_group(gid, (request,), self.network)
            for gid, request in enumerate(self.requests)
        ]
        table = build_sharing_table(self.taxis, groups, self.network, self.config)
        scored = 0
        for group in groups:
            for taxi in self.taxis:
                if group.total_passengers > taxi.seats:
                    continue
                pair = (group.group_id, taxi.taxi_id)
                assert table.proposer_scores[pair] == group_passenger_score(
                    taxi, group, self.network, self.config.beta
                )
                assert table.reviewer_scores[pair] == group_taxi_score(
                    taxi, group, self.network, self.config.alpha
                )
                scored += 1
        assert scored == 3  # every seat-feasible pair was checked
