"""Property-based tests of simulation invariants.

Random small workloads, random dispatcher — the engine must always keep
its books consistent: no taxi double-booked, delays non-negative and
frame-quantized, pickups before dropoffs, every served request's records
complete.
"""

from hypothesis import given, settings, strategies as st

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import (
    GreedyNearestDispatcher,
    MinCostDispatcher,
    SARPDispatcher,
    nstd_p,
    std_p,
)
from repro.geometry import EuclideanDistance, Point
from repro.simulation import Simulator

ORACLE = EuclideanDistance()

coordinate = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def workloads(draw):
    n_taxis = draw(st.integers(min_value=1, max_value=4))
    n_requests = draw(st.integers(min_value=1, max_value=10))
    taxis = [
        Taxi(i, Point(draw(coordinate), draw(coordinate))) for i in range(n_taxis)
    ]
    requests = []
    for j in range(n_requests):
        requests.append(
            PassengerRequest(
                j,
                Point(draw(coordinate), draw(coordinate)),
                Point(draw(coordinate), draw(coordinate)),
                request_time_s=float(draw(st.integers(min_value=0, max_value=1800))),
            )
        )
    return taxis, requests


DISPATCHER_FACTORIES = [
    lambda config: nstd_p(ORACLE, config),
    lambda config: GreedyNearestDispatcher(ORACLE, config),
    lambda config: MinCostDispatcher(ORACLE, config),
    lambda config: std_p(ORACLE, config),
    lambda config: SARPDispatcher(ORACLE, config),
]


def run_simulation(taxis, requests, factory):
    config = SimulationConfig(
        frame_length_s=60.0,
        taxi_speed_kmh=30.0,
        horizon_s=3600.0,
        dispatch=DispatchConfig(),
    )
    dispatcher = factory(config.dispatch)
    return Simulator(dispatcher, ORACLE, config, overrun_s=7200.0).run(taxis, requests)


@settings(max_examples=40, deadline=None)
@given(workloads(), st.sampled_from(range(len(DISPATCHER_FACTORIES))))
def test_engine_invariants(workload, dispatcher_index):
    taxis, requests = workload
    result = run_simulation(taxis, requests, DISPATCHER_FACTORIES[dispatcher_index])

    assert len(result.outcomes) == len(requests)

    # Served requests have a complete, ordered record.
    for outcome in result.outcomes:
        if outcome.served:
            assert outcome.dispatch_time_s >= outcome.request_time_s
            assert outcome.dispatch_time_s % 60.0 == 0.0  # frame boundary
            assert outcome.pickup_time_s >= outcome.dispatch_time_s - 1e-9
            assert outcome.dropoff_time_s >= outcome.pickup_time_s - 1e-9
            assert outcome.passenger_dissatisfaction is not None
            assert outcome.taxi_id is not None
            assert outcome.group_size >= 1
        else:
            assert outcome.pickup_time_s is None or outcome.abandoned is False

    # No taxi serves overlapping assignments: records per taxi must have
    # strictly increasing frame times (a taxi is only re-dispatched after
    # completing its plan).
    by_taxi = {}
    for record in result.assignments:
        by_taxi.setdefault(record.taxi_id, []).append(record.frame_time_s)
    for times in by_taxi.values():
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    # Served request ids across assignments are unique and match outcomes.
    served_in_records = [rid for a in result.assignments for rid in a.request_ids]
    assert len(served_in_records) == len(set(served_in_records))
    assert set(served_in_records) == {o.request_id for o in result.outcomes if o.served}
