"""Property-based tests of the shared-route optimizer."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import PassengerRequest
from repro.geometry import EuclideanDistance, ManhattanDistance, Point
from repro.routing import feasible_shared_route, optimal_shared_route

ORACLE = EuclideanDistance()

coordinate = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def request_groups(draw, max_size=3):
    n = draw(st.integers(min_value=1, max_value=max_size))
    requests = []
    for i in range(n):
        sx, sy, dx, dy = (draw(coordinate) for _ in range(4))
        requests.append(PassengerRequest(i, Point(sx, sy), Point(dx, dy)))
    return requests


@settings(max_examples=150, deadline=None)
@given(request_groups())
def test_route_visits_each_stop_once_with_precedence(requests):
    route = optimal_shared_route(requests, ORACLE)
    assert len(route.stops) == 2 * len(requests)
    picked = set()
    dropped = set()
    for stop in route.stops:
        if stop.is_pickup:
            assert stop.request_id not in picked
            picked.add(stop.request_id)
        else:
            assert stop.request_id in picked
            assert stop.request_id not in dropped
            dropped.add(stop.request_id)
    assert picked == dropped == {r.request_id for r in requests}


@settings(max_examples=150, deadline=None)
@given(request_groups())
def test_onboard_dominates_direct_distance(requests):
    # Triangle inequality: riding along the shared route can never beat
    # the direct trip.
    route = optimal_shared_route(requests, ORACLE)
    for r in requests:
        assert route.onboard_km[r.request_id] >= r.trip_distance(ORACLE) - 1e-9


@settings(max_examples=150, deadline=None)
@given(request_groups())
def test_route_length_not_longer_than_sequential_service(requests):
    # Serving members one-by-one in id order is one feasible sequence, so
    # the optimum cannot exceed it.
    route = optimal_shared_route(requests, ORACLE)
    sequential = 0.0
    previous = None
    for r in sorted(requests, key=lambda r: r.request_id):
        if previous is not None:
            sequential += ORACLE.distance(previous, r.pickup)
        sequential += r.trip_distance(ORACLE)
        previous = r.dropoff
    assert route.length_km <= sequential + 1e-9


@settings(max_examples=100, deadline=None)
@given(request_groups(max_size=2), st.floats(min_value=0.0, max_value=5.0))
def test_detour_constrained_route_respects_bound(requests, theta):
    route = feasible_shared_route(requests, ORACLE, max_detour_km=theta)
    if route is None:
        return
    for r in requests:
        assert route.detour_km(r, ORACLE) <= theta + 1e-6


@settings(max_examples=100, deadline=None)
@given(request_groups(max_size=2))
def test_constrained_never_shorter_than_unconstrained(requests):
    unconstrained = optimal_shared_route(requests, ORACLE)
    constrained = feasible_shared_route(requests, ORACLE, max_detour_km=1.0)
    if constrained is not None:
        assert constrained.length_km >= unconstrained.length_km - 1e-9


@settings(max_examples=100, deadline=None)
@given(request_groups(max_size=3))
def test_offsets_consistent_with_length(requests):
    route = optimal_shared_route(requests, ORACLE)
    # Every pickup offset and onboard distance fits inside the route.
    for rid, offset in route.pickup_offset_km.items():
        assert -1e-9 <= offset <= route.length_km + 1e-9
        assert route.onboard_km[rid] <= route.length_km - offset + 1e-6


@settings(max_examples=80, deadline=None)
@given(request_groups(max_size=2))
def test_manhattan_oracle_also_metric_safe(requests):
    oracle = ManhattanDistance()
    route = optimal_shared_route(requests, oracle)
    for r in requests:
        assert route.onboard_km[r.request_id] >= r.trip_distance(oracle) - 1e-9
