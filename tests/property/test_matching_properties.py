"""Property-based tests of the matching core's invariants.

Hypothesis generates random preference markets (unequal sides, partial
acceptability, arbitrary orders) and checks the theorems the paper
relies on: stability of Algorithm 1's output, its proposer-optimality,
completeness and exactly-once-ness of Algorithm 2 against brute force,
Theorem 2's matched-set invariance, and the taxi-optimal fast path.
"""

from hypothesis import given, settings, strategies as st

from repro.matching import (
    PreferenceTable,
    all_stable_matchings,
    all_stable_matchings_brute_force,
    deferred_acceptance,
    find_blocking_pairs,
    is_stable,
    taxi_optimal,
    taxi_optimal_exact,
)

REVIEWER_BASE = 1000


@st.composite
def preference_tables(draw, max_side=5):
    n_proposers = draw(st.integers(min_value=1, max_value=max_side))
    n_reviewers = draw(st.integers(min_value=1, max_value=max_side))
    proposers = list(range(n_proposers))
    reviewers = list(range(REVIEWER_BASE, REVIEWER_BASE + n_reviewers))
    pairs = []
    for p in proposers:
        for r in reviewers:
            if draw(st.booleans()):
                pairs.append((p, r))
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (pp, r) in pairs if pp == p]
        proposer_prefs[p] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = [p for (p, rr) in pairs if rr == r]
        reviewer_prefs[r] = tuple(draw(st.permutations(acceptable))) if acceptable else ()
    return PreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)


@settings(max_examples=150, deadline=None)
@given(preference_tables())
def test_deferred_acceptance_is_stable(table):
    matching = deferred_acceptance(table)
    assert find_blocking_pairs(table, matching) == []


@settings(max_examples=150, deadline=None)
@given(preference_tables())
def test_matched_pairs_are_mutually_acceptable(table):
    matching = deferred_acceptance(table)
    for proposer, reviewer in matching.pairs:
        assert table.mutually_acceptable(proposer, reviewer)


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=4))
def test_enumeration_matches_brute_force_exactly_once(table):
    enumerated, stats = all_stable_matchings(table, with_stats=True)
    brute = all_stable_matchings_brute_force(table)
    assert set(enumerated) == set(brute)
    assert len(enumerated) == len(brute)  # no duplicates in the list
    assert stats.duplicates == 0


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=4))
def test_every_enumerated_matching_is_stable(table):
    for matching in all_stable_matchings(table):
        assert is_stable(table, matching)


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=4))
def test_proposer_optimality(table):
    optimal = deferred_acceptance(table)
    for other in all_stable_matchings(table):
        for proposer in table.proposer_prefs:
            mine = optimal.reviewer_of(proposer)
            theirs = other.reviewer_of(proposer)
            if mine == theirs:
                continue
            assert mine is not None
            if theirs is not None:
                assert table.proposer_prefers(proposer, mine, theirs)


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=4))
def test_matched_sets_invariant_across_lattice(table):
    # Theorem 2 + its taxi analogue (rural hospitals).
    matchings = all_stable_matchings(table)
    first = matchings[0]
    for matching in matchings[1:]:
        assert matching.matched_proposers == first.matched_proposers
        assert matching.matched_reviewers == first.matched_reviewers


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=4))
def test_taxi_optimal_fast_path_matches_exact(table):
    assert taxi_optimal(table) == taxi_optimal_exact(table)


@settings(max_examples=100, deadline=None)
@given(preference_tables(max_side=5))
def test_all_matchings_same_size(table):
    # Size invariance follows from the matched-set invariance.
    sizes = {m.size for m in all_stable_matchings(table)}
    assert len(sizes) == 1
