"""The chaos smoke run, wired into the suite.

``scripts/run_chaos.py`` is the operational entry point; this test runs
the same harness in-process so CI exercises the full stack — fault
injection, the degradation ladder, broken-pool recovery, and the
faults-off bit-identity check — without shelling out.
"""

import importlib.util
import sys
from pathlib import Path

CHAOS_PATH = Path(__file__).resolve().parents[2] / "scripts" / "run_chaos.py"


def load_chaos_module():
    spec = importlib.util.spec_from_file_location("run_chaos", CHAOS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_chaos_smoke_run_holds_all_invariants():
    chaos = load_chaos_module()
    summary, failures = chaos.run_chaos(seed=13, workers=2)
    assert failures == []
    # The schedule is deterministic, so the run must actually have
    # exercised the resilience layer, not passed vacuously.
    assert summary["total_degraded_frames"] + summary["total_faults_absorbed"] > 0
    for name in chaos.ALGORITHMS:
        stats = summary[name]
        assert stats["frames"] > 0
        assert "dropped" not in stats["served_by_rung"]
