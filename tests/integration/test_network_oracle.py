"""Integration: dispatchers running on a road-network distance oracle."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import GreedyNearestDispatcher, nstd_p
from repro.geometry import Point
from repro.matching import Matching, build_nonsharing_table, is_stable
from repro.network import grid_city
from repro.simulation import Simulator


@pytest.fixture(scope="module")
def network():
    # A 2 km x 2 km downtown lattice with 100 m blocks.
    return grid_city(21, 21, 0.1)


def workload(seed, n_taxis=5, n_requests=12):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.uniform(0, 2.0, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(
            j,
            Point(*rng.uniform(0, 2.0, 2)),
            Point(*rng.uniform(0, 2.0, 2)),
            request_time_s=float(rng.uniform(0, 600)),
        )
        for j in range(n_requests)
    ]
    return taxis, requests


class TestNetworkDispatch:
    def test_nstd_stable_under_network_distances(self, network):
        taxis, requests = workload(0)
        config = DispatchConfig()
        schedule = nstd_p(network, config).dispatch(taxis, requests)
        table = build_nonsharing_table(taxis, requests, network, config)
        assert is_stable(table, Matching(schedule.taxi_of))

    def test_network_distances_exceed_euclidean(self, network):
        from repro.geometry import EuclideanDistance

        euclid = EuclideanDistance()
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = Point(*rng.uniform(0, 2.0, 2))
            b = Point(*rng.uniform(0, 2.0, 2))
            assert network.distance(a, b) >= euclid.distance(a, b) - 1e-9

    def test_full_simulation_on_network(self, network):
        taxis, requests = workload(2)
        config = SimulationConfig(
            frame_length_s=60.0,
            taxi_speed_kmh=20.0,
            horizon_s=1200.0,
            dispatch=DispatchConfig(),
        )
        result = Simulator(
            GreedyNearestDispatcher(network, config.dispatch), network, config
        ).run(taxis, requests)
        assert result.service_rate == 1.0
        # Drive distances follow the lattice, so pickup metrics are >= the
        # straight-line values.
        assert all(v >= 0.0 for v in result.passenger_dissatisfactions())
