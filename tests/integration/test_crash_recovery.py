"""SIGKILL crash/resume bit-identity, wired into the suite.

``scripts/run_chaos.py --crash-recovery`` is the operational entry
point; this test runs the same harness in-process so CI proves the
acceptance criterion directly: a journaled+checkpointed run SIGKILLed
at three distinct frame offsets (boundary and mid-frame), in each of
the cold, warm, and sharded dispatch modes, resumes to a result
bit-identical to the uninterrupted reference.
"""

import importlib.util
import sys
from pathlib import Path

CHAOS_PATH = Path(__file__).resolve().parents[2] / "scripts" / "run_chaos.py"


def load_chaos_module():
    spec = importlib.util.spec_from_file_location("run_chaos_recovery", CHAOS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_sigkill_resume_is_bit_identical_across_modes_and_offsets(tmp_path):
    chaos = load_chaos_module()
    summary, failures = chaos.run_crash_recovery(tmp_path)
    assert failures == []
    # The matrix must actually cover >= 3 offsets x 3 modes, and every
    # case must have completed the full run after resume.
    assert summary.pop("cases") == 9
    assert len(summary) == 9
    assert {case.split("@")[0] for case in summary} == set(chaos.CRASH_MODES)
    assert len({case.split("@")[1] for case in summary}) >= 3
    # The three recovery shapes: journal-only replay (no snapshot yet),
    # snapshot + replay, and snapshot-at-crash-frame (zero replay).
    replayed = {case: stats["replayed_verified"] for case, stats in summary.items()}
    assert any(n > 0 for n in replayed.values())
    assert any(n == 0 for n in replayed.values())
