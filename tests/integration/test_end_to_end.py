"""End-to-end integration: every algorithm over a small synthetic city day.

These tests exercise the full pipeline (trace generation → frame loop →
dispatch → metrics) and assert the *comparative shapes* the paper
reports, on a fixed seed.
"""

import pytest

from repro.core import SimulationConfig
from repro.experiments import (
    NONSHARING_ALGORITHMS,
    SHARING_ALGORITHMS,
    ExperimentScale,
    run_city_experiment,
)
from repro.trace import boston_profile

SCALE = ExperimentScale(factor=0.02, seed=42, hours=(7.5, 9.5))


@pytest.fixture(scope="module")
def nonsharing_results():
    return run_city_experiment(boston_profile(), NONSHARING_ALGORITHMS, SCALE)


@pytest.fixture(scope="module")
def sharing_results():
    return run_city_experiment(boston_profile(), SHARING_ALGORITHMS, SCALE)


class TestNonSharingShapes:
    def test_all_algorithms_ran(self, nonsharing_results):
        assert set(nonsharing_results) == set(NONSHARING_ALGORITHMS)
        counts = {len(r.outcomes) for r in nonsharing_results.values()}
        assert len(counts) == 1  # identical workload

    def test_everyone_serves_requests(self, nonsharing_results):
        for name, result in nonsharing_results.items():
            assert result.service_rate > 0.5, name

    def test_nstd_improves_taxi_dissatisfaction_over_greedy(self, nonsharing_results):
        # The paper's headline claim (Figs. 4c/5c): NSTD significantly
        # outperforms the passenger-only baselines on taxi dissatisfaction.
        greedy = nonsharing_results["Greedy"].summary()["mean_taxi_dissatisfaction"]
        for name in ("NSTD-P", "NSTD-T"):
            ours = nonsharing_results[name].summary()["mean_taxi_dissatisfaction"]
            assert ours < greedy, (name, ours, greedy)

    def test_mcbm_lowest_total_passenger_dissatisfaction(self, nonsharing_results):
        # MCBM minimizes the summed pickup distance per frame, so its mean
        # passenger dissatisfaction must not exceed Greedy's.
        assert (
            nonsharing_results["MCBM"].summary()["mean_passenger_dissatisfaction"]
            <= nonsharing_results["Greedy"].summary()["mean_passenger_dissatisfaction"] + 1e-6
        )

    def test_nonsharing_never_shares(self, nonsharing_results):
        for result in nonsharing_results.values():
            assert result.shared_ride_fraction == 0.0


class TestSharingShapes:
    def test_all_algorithms_ran(self, sharing_results):
        assert set(sharing_results) == set(SHARING_ALGORITHMS)

    def test_sharing_actually_happens(self, sharing_results):
        for name, result in sharing_results.items():
            assert result.shared_ride_fraction > 0.0, name

    def test_std_beats_insertion_baselines_on_taxi_dissatisfaction(self, sharing_results):
        # Figs. 8/9: STD-P/T clearly outperform RAII and SARP.
        worst_stable = max(
            sharing_results[name].summary()["mean_taxi_dissatisfaction"]
            for name in ("STD-P", "STD-T")
        )
        for baseline in ("RAII", "SARP"):
            theirs = sharing_results[baseline].summary()["mean_taxi_dissatisfaction"]
            assert worst_stable < theirs, (baseline, worst_stable, theirs)

    def test_std_beats_insertion_baselines_on_passenger_dissatisfaction(self, sharing_results):
        worst_stable = max(
            sharing_results[name].summary()["mean_passenger_dissatisfaction"]
            for name in ("STD-P", "STD-T")
        )
        for baseline in ("RAII", "SARP"):
            theirs = sharing_results[baseline].summary()["mean_passenger_dissatisfaction"]
            assert worst_stable < theirs, (baseline, worst_stable, theirs)


class TestCrossMode:
    def test_sharing_serves_at_least_nonsharing(self, nonsharing_results, sharing_results):
        # Packing multiplies per-frame capacity; with the same fleet the
        # sharing dispatchers should serve no fewer requests.
        nonsharing = nonsharing_results["NSTD-P"].service_rate
        sharing = sharing_results["STD-P"].service_rate
        assert sharing >= nonsharing - 0.1
