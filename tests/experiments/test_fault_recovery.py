"""Fault recovery in the experiment runners.

Three failure species, three recovery paths:

* transient oracle errors -> per-cell retry with exponential backoff
  (attempt numbers re-derive the fault schedule, so a deterministic
  first-attempt failure heals on the retry);
* worker crashes -> ``BrokenProcessPool`` -> serial re-run of whatever
  cells had not finished;
* and everything must stay bit-identical between serial and parallel
  execution, faults included.
"""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments import ExperimentScale, run_city_experiment, run_taxi_sweep
from repro.experiments import runners as runners_module
from repro.resilience import FaultPlan
from repro.trace import boston_profile

TINY = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))
ALGORITHMS = ("Greedy", "NSTD-P")


def comparable(result):
    """Everything observable about a run except wall-clock telemetry."""
    return {
        "summary": result.summary(),
        "outcomes": [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s, o.dropoff_time_s)
            for o in result.outcomes
        ],
        "assignments": [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.revenue_km)
            for a in result.assignments
        ],
        "frames_run": result.frames_run,
    }


@pytest.fixture(autouse=True)
def no_real_backoff(monkeypatch):
    """Record retry delays instead of sleeping through them."""
    delays = []
    monkeypatch.setattr(runners_module, "_sleep", delays.append)
    return delays


class TestTransientRetry:
    def test_failing_first_attempt_heals_on_retry(self, no_real_backoff):
        plan = FaultPlan(seed=5, fail_attempts=1)
        faulted = run_city_experiment(boston_profile(), ALGORITHMS, TINY, faults=plan)
        clean = run_city_experiment(boston_profile(), ALGORITHMS, TINY)
        assert list(faulted) == list(clean)
        for name in clean:
            # The healed attempt injects nothing (zero rates), so the
            # recovered run is bit-identical to the fault-free one.
            assert comparable(faulted[name]) == comparable(clean[name]), name
        # One retry per cell, each after one backoff sleep.
        assert len(no_real_backoff) == len(ALGORITHMS)

    def test_backoff_is_exponential(self, no_real_backoff):
        plan = FaultPlan(seed=5, fail_attempts=2)
        run_city_experiment(boston_profile(), ("Greedy",), TINY, faults=plan)
        base = runners_module._BACKOFF_BASE_S
        assert no_real_backoff == [base, base * 2]

    def test_exhausted_retries_raise_experiment_error(self, no_real_backoff):
        plan = FaultPlan(seed=5, fail_attempts=99)
        with pytest.raises(ExperimentError, match="failed"):
            run_city_experiment(boston_profile(), ("Greedy",), TINY, faults=plan)


class TestBrokenPoolRecovery:
    def test_worker_crash_recovers_serially(self):
        plan = FaultPlan(seed=0, crash_algorithms=("Greedy",))
        recovered = run_city_experiment(
            boston_profile(), ALGORITHMS, TINY, workers=2, faults=plan
        )
        clean = run_city_experiment(boston_profile(), ALGORITHMS, TINY)
        assert list(recovered) == list(clean)
        for name in clean:
            # The crash only ever fires inside pool workers; the serial
            # re-run in the parent injects nothing, so recovery is exact.
            assert comparable(recovered[name]) == comparable(clean[name]), name

    def test_sweep_recovers_from_worker_crash(self):
        plan = FaultPlan(seed=0, crash_algorithms=("Greedy",))
        counts = (100, 200)
        recovered = run_taxi_sweep(
            boston_profile(), ALGORITHMS, counts, TINY, workers=2, faults=plan
        )
        clean = run_taxi_sweep(boston_profile(), ALGORITHMS, counts, TINY)
        assert list(recovered) == list(clean) == list(counts)
        for count in counts:
            for name in clean[count]:
                assert comparable(recovered[count][name]) == comparable(
                    clean[count][name]
                ), (count, name)


class TestSerialParallelEquivalenceUnderFaults:
    def test_city_experiment(self, no_real_backoff):
        plan = FaultPlan(seed=21, fail_attempts=1)
        serial = run_city_experiment(boston_profile(), ALGORITHMS, TINY, faults=plan)
        parallel = run_city_experiment(
            boston_profile(), ALGORITHMS, TINY, workers=2, faults=plan
        )
        assert list(serial) == list(parallel)
        for name in serial:
            assert comparable(serial[name]) == comparable(parallel[name]), name

    def test_taxi_sweep(self, no_real_backoff):
        plan = FaultPlan(seed=21, fail_attempts=1)
        counts = (100, 200)
        serial = run_taxi_sweep(
            boston_profile(), ALGORITHMS, counts, TINY, faults=plan
        )
        parallel = run_taxi_sweep(
            boston_profile(), ALGORITHMS, counts, TINY, workers=2, faults=plan
        )
        assert list(serial) == list(parallel) == list(counts)
        for count in counts:
            for name in serial[count]:
                assert comparable(serial[count][name]) == comparable(
                    parallel[count][name]
                ), (count, name)
