"""Unit tests for host environment metadata.

The effective CPU count feeds benchmark provenance: a baseline stamped
with the host's core count would make runs from differently-confined
containers look comparable when they are not.  The cgroup parsing is
exercised against synthetic files so the tests pass identically on
confined CI runners and unconfined developer machines.
"""

import os

from repro.experiments import effective_cpu_count, environment_metadata
from repro.experiments import environment as environment_module
from repro.experiments.environment import _cgroup_cpu_quota


class _FakePath:
    """Stand-in for ``pathlib.Path`` backed by a dict of file contents."""

    files: dict[str, str] = {}

    def __init__(self, path: str):
        self._path = path

    def read_text(self) -> str:
        try:
            return self.files[self._path]
        except KeyError:
            raise FileNotFoundError(self._path) from None


def _with_cgroup_files(monkeypatch, files):
    monkeypatch.setattr(_FakePath, "files", dict(files))
    monkeypatch.setattr(environment_module, "Path", _FakePath)


class TestCgroupQuota:
    def test_v2_fractional_quota(self, monkeypatch):
        _with_cgroup_files(monkeypatch, {"/sys/fs/cgroup/cpu.max": "150000 100000\n"})
        assert _cgroup_cpu_quota() == 1.5

    def test_v2_unlimited_is_none(self, monkeypatch):
        _with_cgroup_files(monkeypatch, {"/sys/fs/cgroup/cpu.max": "max 100000\n"})
        assert _cgroup_cpu_quota() is None

    def test_v1_fallback(self, monkeypatch):
        _with_cgroup_files(
            monkeypatch,
            {
                "/sys/fs/cgroup/cpu/cpu.cfs_quota_us": "50000\n",
                "/sys/fs/cgroup/cpu/cpu.cfs_period_us": "100000\n",
            },
        )
        assert _cgroup_cpu_quota() == 0.5

    def test_v1_unlimited_is_none(self, monkeypatch):
        # -1 is the kernel's "no quota" sentinel.
        _with_cgroup_files(
            monkeypatch,
            {
                "/sys/fs/cgroup/cpu/cpu.cfs_quota_us": "-1\n",
                "/sys/fs/cgroup/cpu/cpu.cfs_period_us": "100000\n",
            },
        )
        assert _cgroup_cpu_quota() is None

    def test_absent_cgroupfs_is_none(self, monkeypatch):
        _with_cgroup_files(monkeypatch, {})
        assert _cgroup_cpu_quota() is None

    def test_garbage_is_none(self, monkeypatch):
        _with_cgroup_files(monkeypatch, {"/sys/fs/cgroup/cpu.max": "banana\n"})
        assert _cgroup_cpu_quota() is None


class TestEffectiveCpuCount:
    def test_bounded_by_host_and_positive(self):
        count = effective_cpu_count()
        assert 1 <= count <= (os.cpu_count() or 1)

    def test_quota_caps_and_rounds_up(self, monkeypatch):
        # A 1.5-CPU quota still runs two-way parallel sections, so the
        # effective count is ceil(1.5) = 2, capped by the host.
        monkeypatch.setattr(environment_module, "_cgroup_cpu_quota", lambda: 1.5)
        assert effective_cpu_count() == min(2, os.cpu_count() or 1)
        monkeypatch.setattr(environment_module, "_cgroup_cpu_quota", lambda: 0.2)
        assert effective_cpu_count() == 1  # never reports zero

    def test_no_quota_trusts_scheduler_view(self, monkeypatch):
        monkeypatch.setattr(environment_module, "_cgroup_cpu_quota", lambda: None)
        assert effective_cpu_count() >= 1


class TestEnvironmentMetadata:
    def test_keys_and_cpu_fields(self):
        meta = environment_metadata()
        for key in ("python", "implementation", "numpy", "platform", "machine"):
            assert isinstance(meta[key], str) and meta[key]
        assert meta["cpu_count"] == effective_cpu_count()
        assert meta["cpu_count_host"] == (os.cpu_count() or 1)
        assert meta["cpu_count"] <= meta["cpu_count_host"]
