"""Unit tests for experiment runners."""

import pytest

from repro.core import DispatchConfig, ExperimentError
from repro.experiments import (
    ExperimentScale,
    build_workload,
    make_dispatcher,
    run_city_experiment,
    run_taxi_sweep,
)
from repro.experiments.settings import NONSHARING_ALGORITHMS, SHARING_ALGORITHMS
from repro.geometry import EuclideanDistance
from repro.trace import boston_profile

TINY = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))


class TestMakeDispatcher:
    @pytest.mark.parametrize("name", NONSHARING_ALGORITHMS + SHARING_ALGORITHMS)
    def test_all_paper_names_resolve(self, name):
        dispatcher = make_dispatcher(name, EuclideanDistance(), DispatchConfig())
        assert dispatcher.name == name

    def test_case_insensitive(self):
        assert make_dispatcher("greedy", EuclideanDistance(), DispatchConfig()).name == "Greedy"

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            make_dispatcher("Uber", EuclideanDistance(), DispatchConfig())


class TestBuildWorkload:
    def test_deterministic(self):
        profile = boston_profile()
        a_fleet, a_requests = build_workload(profile, TINY)
        b_fleet, b_requests = build_workload(profile, TINY)
        assert [t.location for t in a_fleet] == [t.location for t in b_fleet]
        assert [r.pickup for r in a_requests] == [r.pickup for r in b_requests]

    def test_hour_window_respected(self):
        _, requests = build_workload(boston_profile(), TINY)
        assert all(8 * 3600 <= r.request_time_s < 9 * 3600 for r in requests)

    def test_full_day_counts(self):
        scale = ExperimentScale(factor=0.004, seed=1)
        fleet, requests = build_workload(boston_profile(), scale)
        scaled = boston_profile().scaled(0.004)
        assert len(requests) == scaled.daily_requests
        assert len(fleet) == scaled.n_taxis


class TestRunCityExperiment:
    def test_runs_each_algorithm_on_same_workload(self):
        results = run_city_experiment(boston_profile(), ("Greedy", "MCBM"), TINY)
        assert set(results) == {"Greedy", "MCBM"}
        assert len(results["Greedy"].outcomes) == len(results["MCBM"].outcomes)

    def test_summary_values_present(self):
        results = run_city_experiment(boston_profile(), ("NSTD-P",), TINY)
        summary = results["NSTD-P"].summary()
        assert 0.0 <= summary["service_rate"] <= 1.0


class TestRunTaxiSweep:
    def test_fleet_sizes_scale(self):
        sweep = run_taxi_sweep(boston_profile(), ("Greedy",), (100, 200), TINY)
        assert set(sweep) == {100, 200}
        # More taxis never hurt the service rate on the same trace.
        small = sweep[100]["Greedy"].summary()
        large = sweep[200]["Greedy"].summary()
        assert large["service_rate"] >= small["service_rate"] - 1e-9


class TestMedianInRegistry:
    def test_nstd_m_resolves(self):
        dispatcher = make_dispatcher("NSTD-M", EuclideanDistance(), DispatchConfig())
        assert dispatcher.name == "NSTD-M"
