"""Serial/parallel equivalence of the experiment runners.

``workers > 1`` fans cells out over a process pool; because every cell
rederives its workload and configuration deterministically from its
arguments, the parallel run must be indistinguishable from the serial
one in everything except wall clock.  These tests assert that on the
full result surface — outcomes, assignments, and summary metrics —
while deliberately ignoring the timing telemetry
(``FrameStats.dispatch_ms``), which legitimately differs per host and
per scheduling.
"""

from repro.experiments import ExperimentScale, run_city_experiment, run_taxi_sweep
from repro.trace import boston_profile

TINY = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))
ALGORITHMS = ("Greedy", "NSTD-P")


def comparable(result):
    """Everything observable about a run except wall-clock telemetry."""
    return {
        "summary": result.summary(),
        "outcomes": [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s, o.dropoff_time_s)
            for o in result.outcomes
        ],
        "assignments": [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.revenue_km) for a in result.assignments
        ],
        "frames_run": result.frames_run,
        "taxi_stats": {
            taxi_id: (stats.driven_km, stats.rides, stats.requests_served, stats.revenue_km)
            for taxi_id, stats in result.taxi_stats.items()
        },
    }


class TestRunCityExperimentWorkers:
    def test_parallel_identical_to_serial(self):
        serial = run_city_experiment(boston_profile(), ALGORITHMS, TINY)
        parallel = run_city_experiment(boston_profile(), ALGORITHMS, TINY, workers=2)
        assert list(serial) == list(parallel)  # order follows `algorithms`
        for name in serial:
            assert comparable(serial[name]) == comparable(parallel[name]), name

    def test_single_algorithm_stays_serial(self):
        # workers > 1 with one algorithm has nothing to fan out; the
        # serial path must still produce the run.
        results = run_city_experiment(boston_profile(), ("Greedy",), TINY, workers=4)
        assert list(results) == ["Greedy"]


class TestRunTaxiSweepWorkers:
    def test_parallel_identical_to_serial(self):
        counts = (100, 200)
        serial = run_taxi_sweep(boston_profile(), ALGORITHMS, counts, TINY)
        parallel = run_taxi_sweep(boston_profile(), ALGORITHMS, counts, TINY, workers=2)
        assert list(serial) == list(parallel) == list(counts)
        for count in counts:
            assert list(serial[count]) == list(parallel[count])
            for name in serial[count]:
                assert comparable(serial[count][name]) == comparable(parallel[count][name]), (
                    count,
                    name,
                )
