"""Unit tests for the repro-taxi CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_figure_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.figure == "fig5"
        assert args.scale == 0.03
        assert args.seed == 2017
        assert args.hours is None

    def test_hours(self):
        args = build_parser().parse_args(["fig5", "--hours", "7", "11"])
        assert args.hours == [7.0, 11.0]

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_runs_tiny_experiment(self, capsys):
        code = main(["fig5", "--scale", "0.002", "--seed", "3", "--hours", "8", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "NSTD-P" in out


class TestOutputOptions:
    def test_output_and_save_trace(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        trace = tmp_path / "trace.csv"
        code = main(
            [
                "fig5", "--scale", "0.002", "--seed", "3", "--hours", "8", "9",
                "--output", str(out), "--save-trace", str(trace),
            ]
        )
        assert code == 0
        assert out.exists() and "Fig. 5" in out.read_text()
        from repro.trace.persistence import load_requests_csv

        requests = load_requests_csv(trace)
        assert len(requests) >= 1
