"""Unit tests for experiment settings."""

import pytest

from repro.core import ExperimentError
from repro.experiments import (
    NONSHARING_ALGORITHMS,
    SHARING_ALGORITHMS,
    ExperimentScale,
    city_dispatch_config,
    city_simulation_config,
    profile_by_name,
)
from repro.trace import boston_profile


class TestRosters:
    def test_paper_algorithm_names(self):
        assert NONSHARING_ALGORITHMS == ("NSTD-P", "NSTD-T", "Greedy", "MCBM", "MMCM")
        assert SHARING_ALGORITHMS == ("STD-P", "STD-T", "RAII", "SARP", "ILP")


class TestExperimentScale:
    def test_defaults(self):
        scale = ExperimentScale()
        assert scale.factor > 0
        assert scale.hours is None

    @pytest.mark.parametrize("kwargs", [{"factor": 0.0}, {"factor": -1.0}, {"hours": (5.0, 3.0)}, {"hours": (-1.0, 5.0)}])
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            ExperimentScale(**kwargs)


class TestCityConfigs:
    def test_paper_constants(self):
        profile = boston_profile()
        config = city_dispatch_config(profile)
        assert config.alpha == 1.0
        assert config.beta == 1.0
        assert config.theta_km == 5.0
        sim = city_simulation_config(profile)
        assert sim.frame_length_s == 60.0
        assert sim.taxi_speed_kmh == 20.0

    def test_thresholds_scale_with_city(self):
        from repro.trace import nyc_profile

        ny = city_dispatch_config(nyc_profile())
        bos = city_dispatch_config(boston_profile())
        assert ny.passenger_threshold_km > bos.passenger_threshold_km


class TestProfileByName:
    @pytest.mark.parametrize("name", ["new-york", "NYC", "ny", "NewYork"])
    def test_nyc_aliases(self, name):
        assert profile_by_name(name).name == "new-york"

    @pytest.mark.parametrize("name", ["boston", "BOS"])
    def test_boston_aliases(self, name):
        assert profile_by_name(name).name == "boston"

    def test_unknown_city(self):
        with pytest.raises(ExperimentError):
            profile_by_name("springfield")
