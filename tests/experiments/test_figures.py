"""Smoke tests for the per-figure harnesses (tiny scales)."""

import pytest

from repro.core import ExperimentError
from repro.experiments import FIGURES, ExperimentScale, run_figure

TINY = ExperimentScale(factor=0.003, seed=5, hours=(8.0, 9.0))


class TestRegistry:
    def test_all_six_figures_registered(self):
        assert set(FIGURES) == {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_unknown_figure(self):
        with pytest.raises(ExperimentError):
            run_figure("fig99", TINY)


class TestNonSharingFigures:
    @pytest.mark.parametrize("figure_id", ["fig4", "fig5"])
    def test_cdf_figures(self, figure_id):
        result = run_figure(figure_id, TINY)
        assert result.figure_id == figure_id
        assert set(result.series) == {"delay", "passenger", "taxi"}
        for name in ("NSTD-P", "NSTD-T", "Greedy", "MCBM", "MMCM"):
            assert name in result.summaries
        assert "dispatch delay CDF" in result.report
        assert "taxi dissatisfaction CDF" in result.report

    def test_fig6_sweep(self):
        result = run_figure("fig6", ExperimentScale(factor=0.002, seed=5, hours=(8.0, 9.0)))
        assert "taxis" in result.report
        assert "mean_taxi_dissatisfaction" in result.series
        # 5 fleet sizes x 5 algorithms.
        assert len(result.summaries) == 25

    def test_fig7_clock_time(self):
        result = run_figure("fig7", ExperimentScale(factor=0.002, seed=5))
        series = result.series["mean_dispatch_delay_min"]
        assert all(len(values) == 24 for values in series.values())
        assert "00h" in result.report and "23h" in result.report


class TestSharingFigures:
    @pytest.mark.parametrize("figure_id", ["fig8", "fig9"])
    def test_cdf_figures(self, figure_id):
        result = run_figure(figure_id, TINY)
        for name in ("STD-P", "STD-T", "RAII", "SARP", "ILP"):
            assert name in result.summaries
        assert set(result.series) == {"delay", "passenger", "taxi"}
