"""Event-queue ordering, determinism and monotonicity contracts.

The streaming engine's batch equivalence rests on the queue popping
same-timestamp events in priority order (releases, then arrivals, then
the epoch) with FIFO ties — and on the virtual clock never running
backwards.  These tests pin exactly those contracts.
"""

import math

import pytest

from repro.core.errors import SimulationError
from repro.core.types import PassengerRequest
from repro.geometry import Point
from repro.streaming import (
    PRIORITY_MATCHING_EPOCH,
    PRIORITY_REQUEST_ARRIVAL,
    PRIORITY_TAXI_RELEASE,
    EventQueue,
    MatchingEpoch,
    RequestArrival,
    TaxiRelease,
)


def _request(rid: int, t: float = 0.0) -> PassengerRequest:
    return PassengerRequest(
        request_id=rid,
        pickup=Point(0.0, 0.0),
        dropoff=Point(1.0, 0.0),
        request_time_s=t,
    )


class TestEventOrdering:
    def test_priorities_break_timestamp_ties(self):
        """At one timestamp: releases before arrivals before the epoch.

        That is what makes an epoch at time T see every taxi released
        at T and every request arriving at T — the batch engine's
        inclusive ``<=`` scans.
        """
        q = EventQueue()
        q.push(60.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        q.push(60.0, PRIORITY_REQUEST_ARRIVAL, RequestArrival(_request(1)))
        q.push(60.0, PRIORITY_TAXI_RELEASE, TaxiRelease(3))
        kinds = [type(q.pop()[1]) for _ in range(3)]
        assert kinds == [TaxiRelease, RequestArrival, MatchingEpoch]

    def test_time_dominates_priority(self):
        q = EventQueue()
        q.push(120.0, PRIORITY_TAXI_RELEASE, TaxiRelease(0))
        q.push(60.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        assert isinstance(q.pop()[1], MatchingEpoch)
        assert isinstance(q.pop()[1], TaxiRelease)

    def test_fifo_within_same_time_and_priority(self):
        q = EventQueue()
        for rid in (7, 3, 9):
            q.push(60.0, PRIORITY_REQUEST_ARRIVAL, RequestArrival(_request(rid)))
        popped = [q.pop()[1].request.request_id for _ in range(3)]
        assert popped == [7, 3, 9]

    def test_pop_returns_time(self):
        q = EventQueue()
        q.push(42.5, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        time_s, event = q.pop()
        assert time_s == pytest.approx(42.5)
        assert isinstance(event, MatchingEpoch)


class TestMonotonicity:
    def test_push_before_clock_rejected(self):
        q = EventQueue()
        q.push(100.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        q.pop()
        with pytest.raises(SimulationError):
            q.push(99.0, PRIORITY_TAXI_RELEASE, TaxiRelease(0))

    def test_push_at_clock_allowed(self):
        """Same-timestamp pushes stay legal (a release scheduled *at*
        the current epoch time must be admissible)."""
        q = EventQueue()
        q.push(100.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        q.pop()
        q.push(100.0, PRIORITY_TAXI_RELEASE, TaxiRelease(0))
        assert q.pop()[0] == pytest.approx(100.0)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_times_rejected(self, bad):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(bad, PRIORITY_MATCHING_EPOCH, MatchingEpoch())

    def test_clock_tracks_last_pop(self):
        q = EventQueue()
        q.push(10.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        q.push(20.0, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
        assert q.clock_s == -math.inf
        q.pop()
        assert q.clock_s == pytest.approx(10.0)
        q.pop()
        assert q.clock_s == pytest.approx(20.0)


class TestCountersAndViews:
    def test_len_bool_peek_and_counters(self):
        q = EventQueue()
        assert not q and len(q) == 0 and q.peek_time() is None
        q.push(5.0, PRIORITY_REQUEST_ARRIVAL, RequestArrival(_request(1, 5.0)))
        q.push(3.0, PRIORITY_TAXI_RELEASE, TaxiRelease(2))
        assert q and len(q) == 2
        assert q.peek_time() == pytest.approx(3.0)
        q.pop()
        q.pop()
        assert q.pushed == 2
        assert q.popped == 2
        assert not q
