"""Zone planning: grouping, boundary reconciliation, degenerate fallback.

Small hand-built geometries where the correct zone structure is
checkable by eye: the zone grid is explicit (``zone_km``), the
acceptability radius is the passenger threshold (the taxi threshold is
left unbounded), and every expected group is derived by hand.
"""

import math

import numpy as np
import pytest

from repro.core.config import DispatchConfig
from repro.core.types import PassengerRequest, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.streaming import DEGENERATE_ANCHOR, plan_epoch_zones, zone_queue_depths

ORACLE = EuclideanDistance()
#: Radius = min(passenger_threshold_km, ∞) = 2 km exactly.
CONFIG = DispatchConfig(passenger_threshold_km=2.0)
ZONE_KM = 2.0


def _taxi(tid: int, x: float, y: float = 0.0) -> Taxi:
    return Taxi(taxi_id=tid, location=Point(x, y))


def _request(rid: int, x: float, y: float = 0.0) -> PassengerRequest:
    return PassengerRequest(
        request_id=rid,
        pickup=Point(x, y),
        dropoff=Point(x + 1.0, y),
        request_time_s=0.0,
    )


def _plan(taxis, requests, *, config=CONFIG, zone_km=ZONE_KM):
    taxi_xy = np.array([[t.location.x, t.location.y] for t in taxis], dtype=np.float64)
    pick_xy = np.array([[r.pickup.x, r.pickup.y] for r in requests], dtype=np.float64)
    trip = np.array(
        [ORACLE.distance(r.pickup, r.dropoff) for r in requests], dtype=np.float64
    )
    rids = np.array([r.request_id for r in requests], dtype=np.int64)
    alpha_max = float(config.alpha)
    return plan_epoch_zones(
        taxi_xy, pick_xy, trip, rids, ORACLE, config,
        alpha_max=alpha_max, zone_km=zone_km,
    )


class TestZoneGrouping:
    def test_far_clusters_form_isolated_single_zone_groups(self):
        """Two clusters far beyond any radius: one group per zone, no
        boundary traffic recorded."""
        plan = _plan(
            [_taxi(1, 0.5), _taxi(2, 100.5)],
            [_request(10, 0.6), _request(11, 100.6)],
        )
        assert plan.degenerate_reason is None
        assert len(plan.groups) == 2
        assert all(g.zone_count == 1 for g in plan.groups)
        assert plan.boundary_merges == 0
        assert plan.zones_occupied == 2
        # Anchors are distinct packed zone keys, usable as identities.
        assert len({g.anchor for g in plan.groups}) == 2
        assert all(g.anchor != DEGENERATE_ANCHOR for g in plan.groups)

    def test_boundary_taxi_merges_adjacent_zones(self):
        """A taxi at x=1.9 (zone [0,2)) and a request at x=2.1 (zone
        [2,4)) are 0.2 km apart — well inside the 2 km radius.  The
        planner must merge the two zones into one group rather than
        lose the cross-boundary pair."""
        plan = _plan([_taxi(1, 1.9)], [_request(10, 2.1)])
        assert plan.degenerate_reason is None
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.zone_count == 2
        assert plan.boundary_merges == 1
        assert group.taxi_rows.tolist() == [0]
        assert group.request_rows.tolist() == [0]

    def test_taxi_reaching_two_request_zones_builds_one_group(self):
        """One taxi between two request zones chains all three zones
        into a single solvable group (two merges)."""
        plan = _plan(
            [_taxi(1, 2.9)],
            [_request(10, 1.0), _request(11, 4.5)],
        )
        assert len(plan.groups) == 1
        assert plan.groups[0].zone_count == 3
        assert plan.boundary_merges == 2

    def test_zero_supply_zone_produces_no_group(self):
        """Requests in a zone with no taxi in reach have no acceptable
        partner anywhere; they get no solve group and stay pending —
        exactly the global solve's behaviour."""
        plan = _plan(
            [_taxi(1, 0.5)],
            [_request(10, 0.6), _request(11, 50.0)],
        )
        assert len(plan.groups) == 1
        assert plan.groups[0].request_rows.tolist() == [0]
        # The stranded request's zone still counts as occupied
        # (taxi and near request share one cell, the far request another).
        assert plan.zones_occupied == 2

    def test_group_ordering_smallest_pair_count_first(self):
        plan = _plan(
            [_taxi(1, 0.5), _taxi(2, 50.0), _taxi(3, 50.4), _taxi(4, 50.8)],
            [_request(10, 0.6), _request(11, 50.1), _request(12, 50.5)],
        )
        pair_counts = [g.pair_count for g in plan.groups]
        assert pair_counts == sorted(pair_counts)
        assert pair_counts[0] == 1


class TestDegenerateFallback:
    def test_unbounded_radii_fall_back_to_city_wide_group(self):
        """Both thresholds at ∞ make every radius unbounded: the zone
        structure is unknown, so the plan is one city-wide group with
        the sentinel anchor and the fallback reason recorded."""
        plan = _plan(
            [_taxi(1, 0.5), _taxi(2, 100.5)],
            [_request(10, 0.6), _request(11, 100.6)],
            config=DispatchConfig(),
        )
        assert plan.degenerate_reason is not None
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.anchor == DEGENERATE_ANCHOR
        assert group.taxi_rows.tolist() == [0, 1]
        assert group.request_rows.tolist() == [0, 1]
        assert plan.boundary_merges == 0
        assert plan.zones_occupied == 0


class TestZoneQueueDepths:
    def test_counts_per_occupied_zone(self):
        pick_xy = np.array([[0.5, 0.0], [1.0, 0.0], [2.5, 0.0]], dtype=np.float64)
        depths = zone_queue_depths(pick_xy, ZONE_KM)
        assert sorted(depths.tolist()) == [1, 2]

    def test_empty_input(self):
        assert zone_queue_depths(np.empty((0, 2)), ZONE_KM).size == 0

    def test_unbucketable_coordinates_raise(self):
        with pytest.raises(ValueError):
            zone_queue_depths(np.array([[math.nan, 0.0]]), ZONE_KM)
