"""ZoneMatcher: global-solve equality, warm reuse, per-zone degradation.

The matcher's contract is that each epoch's union of per-group
matchings equals the global NSTD solve of the same inputs — warm or
cold — and that under an epoch budget only the over-budget group
degrades to the greedy answer while the others stay exact.
"""

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.types import PassengerRequest, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching.sharding import solve_shard
from repro.resilience import FrameBudget
from repro.streaming import ZoneMatcher

ORACLE = EuclideanDistance()
CONFIG = DispatchConfig(passenger_threshold_km=2.0)
ZONE_KM = 2.0


def _taxi(tid: int, x: float, y: float = 0.0) -> Taxi:
    return Taxi(taxi_id=tid, location=Point(x, y))


def _request(rid: int, x: float, y: float = 0.0) -> PassengerRequest:
    return PassengerRequest(
        request_id=rid,
        pickup=Point(x, y),
        dropoff=Point(x + 1.0, y),
        request_time_s=0.0,
    )


def _trip(requests) -> np.ndarray:
    return np.array(
        [ORACLE.distance(r.pickup, r.dropoff) for r in requests], dtype=np.float64
    )


def _global_pairs(taxis, requests) -> dict[int, int]:
    matched = solve_shard(
        taxis, requests, ORACLE, CONFIG,
        optimize_for="passenger", alpha_by_taxi=None, trip_km=_trip(requests),
    )
    return dict(matched.pairs)


def _matcher(**kwargs) -> ZoneMatcher:
    return ZoneMatcher(ORACLE, CONFIG, zone_km=ZONE_KM, **kwargs)


class TestEpochEquality:
    def test_multi_zone_epoch_equals_global_solve(self):
        taxis = [_taxi(1, 0.3), _taxi(2, 1.1), _taxi(3, 50.2), _taxi(4, 50.9)]
        requests = [
            _request(10, 0.5), _request(11, 1.4),
            _request(12, 50.4), _request(13, 51.0),
        ]
        report = _matcher().match_epoch(taxis, requests, trip_km=_trip(requests))
        assert report.pairs == _global_pairs(taxis, requests)
        assert report.plan is not None and report.plan.degenerate_reason is None
        assert report.cold_groups == len(report.plan.groups)
        assert report.degraded_groups == 0

    def test_cross_boundary_pair_is_kept(self):
        """The boundary taxi/request pair must survive zone sharding."""
        taxis = [_taxi(1, 1.9)]
        requests = [_request(10, 2.1)]
        report = _matcher().match_epoch(taxis, requests, trip_km=_trip(requests))
        assert report.pairs == {10: 1}
        assert report.plan.boundary_merges == 1

    def test_zero_supply_zone_requests_stay_unmatched(self):
        taxis = [_taxi(1, 0.5)]
        requests = [_request(10, 0.6), _request(11, 50.0)]
        report = _matcher().match_epoch(taxis, requests, trip_km=_trip(requests))
        assert report.pairs == {10: 1}
        assert 11 not in report.pairs

    def test_degenerate_epoch_still_equals_global_solve(self):
        """Unbounded radii: one city-wide group, exact nevertheless."""
        matcher = ZoneMatcher(ORACLE, DispatchConfig(), zone_km=ZONE_KM)
        taxis = [_taxi(1, 0.3), _taxi(2, 30.0)]
        requests = [_request(10, 0.5), _request(11, 30.2)]
        report = matcher.match_epoch(taxis, requests, trip_km=_trip(requests))
        matched = solve_shard(
            taxis, requests, ORACLE, DispatchConfig(),
            optimize_for="passenger", alpha_by_taxi=None, trip_km=_trip(requests),
        )
        assert report.pairs == dict(matched.pairs)
        assert report.plan.degenerate_reason is not None

    def test_empty_sides_return_empty_report(self):
        matcher = _matcher()
        report = matcher.match_epoch([], [_request(10, 0.5)], trip_km=_trip([_request(10, 0.5)]))
        assert report.pairs == {} and report.plan is None
        report = matcher.match_epoch([_taxi(1, 0.5)], [], trip_km=np.empty(0))
        assert report.pairs == {} and report.plan is None


class TestWarmReuse:
    def test_recurring_anchor_resumes_warm_and_stays_exact(self):
        """Epoch 2 presents the leftover taxi (same object) plus a new
        request: the zone's anchor recurs, the solve goes warm, and the
        result still equals the cold global solve of epoch 2's inputs."""
        matcher = _matcher()
        taxi_kept = _taxi(2, 1.2)
        taxis1 = [_taxi(1, 0.3), taxi_kept]
        requests1 = [_request(10, 0.4)]
        report1 = matcher.match_epoch(taxis1, requests1, trip_km=_trip(requests1))
        assert report1.pairs == {10: 1}
        assert report1.cold_groups >= 1 and report1.warm_groups == 0

        taxis2 = [taxi_kept]
        requests2 = [_request(11, 1.3)]
        report2 = matcher.match_epoch(taxis2, requests2, trip_km=_trip(requests2))
        assert report2.pairs == _global_pairs(taxis2, requests2) == {11: 2}
        assert report2.warm_groups == 1
        telemetry = matcher.run_telemetry()
        assert telemetry.get("warm_frames", 0) == 1
        assert telemetry.get("cold_frames", 0) >= 1

    def test_vanished_anchor_state_is_pruned(self):
        matcher = _matcher()
        taxis1 = [_taxi(1, 0.3), _taxi(2, 50.0)]
        requests1 = [_request(10, 0.4), _request(11, 50.2)]
        matcher.match_epoch(taxis1, requests1, trip_km=_trip(requests1))
        assert len(matcher._states) == 2
        # Next epoch only the first cluster is present: the other
        # anchor's state must be dropped, not pinned forever.
        taxis2 = [_taxi(3, 0.5)]
        requests2 = [_request(12, 0.6)]
        matcher.match_epoch(taxis2, requests2, trip_km=_trip(requests2))
        assert len(matcher._states) == 1

    def test_reset_drops_states(self):
        matcher = _matcher()
        taxis = [_taxi(1, 0.3)]
        requests = [_request(10, 0.4)]
        matcher.match_epoch(taxis, requests, trip_km=_trip(requests))
        assert matcher._states
        matcher.reset(counters=True)
        assert matcher._states == {}
        assert matcher.run_telemetry() == {}


class TestPerZoneDegradation:
    def test_hot_group_degrades_alone(self):
        """An injected clock burns the big group's slice only: the small
        group (solved first) stays exact and the hot group gets the
        greedy answer — one zone degrades, the city does not."""
        ticks = iter([0.0, 0.05, 5.0])
        budget = FrameBudget(1.0, clock=lambda: next(ticks, 5.0))
        matcher = _matcher()
        # Small group: 1×1 pairs at x≈0.  Big group: 3×3 pairs at x≈50.
        taxis = [_taxi(1, 0.3), _taxi(2, 50.0), _taxi(3, 50.4), _taxi(4, 50.8)]
        requests = [
            _request(10, 0.4),
            _request(11, 50.1), _request(12, 50.5), _request(13, 50.9),
        ]
        report = matcher.match_epoch(
            taxis, requests, trip_km=_trip(requests), budget=budget
        )
        assert report.degraded_groups == 1
        assert report.groups_solved == 1
        # The small group's stable pair survives exactly.
        assert report.pairs[10] == 1
        # The degraded group's entities still all got a (greedy) answer.
        assert {11, 12, 13} <= set(report.pairs)
        assert set(report.pairs.values()) == {1, 2, 3, 4}
        small, big = report.plan.groups[0], report.plan.groups[1]
        assert small.pair_count < big.pair_count
        assert report.zones_degraded == big.zone_count
        # The degraded group seeds no warm state; the solved one does.
        assert small.anchor in matcher._states
        assert big.anchor not in matcher._states
        telemetry = matcher.run_telemetry()
        assert telemetry.get("zone_groups_degraded") == 1
        # The budget is handed back at its full epoch deadline.
        assert budget.duration_s == 1.0

    def test_generous_budget_degrades_nothing(self):
        budget = FrameBudget(float("inf"))
        matcher = _matcher()
        taxis = [_taxi(1, 0.3), _taxi(2, 50.0)]
        requests = [_request(10, 0.4), _request(11, 50.2)]
        report = matcher.match_epoch(
            taxis, requests, trip_km=_trip(requests), budget=budget
        )
        assert report.degraded_groups == 0
        assert report.pairs == _global_pairs(taxis, requests)
