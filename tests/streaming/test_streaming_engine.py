"""StreamingEngine: batch equivalence, telemetry, degradation, guards.

The headline contract — epoch length equal to the frame length makes
the streaming engine bit-identical to the batch engine — is asserted
here on the same city-day smoke slice the engine suites use, down to
the per-frame statistics series.
"""

import pytest

from repro.core.errors import SimulationError
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.streaming import StreamingEngine
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()


@pytest.fixture(scope="module")
def workload():
    profile = nyc_profile()
    scale = ExperimentScale(factor=0.02, seed=5, hours=(17.0, 19.0))
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    return sim_config, fleet, requests


def _batch(sim_config, fleet, requests):
    dispatcher = NSTDDispatcher(
        ORACLE, sim_config.dispatch, optimize_for="passenger", warm_start=False
    )
    return Simulator(dispatcher, ORACLE, sim_config).run(fleet, requests)


def _observable(result):
    return (
        result.summary(),
        [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s,
             o.dropoff_time_s, o.passenger_dissatisfaction, o.abandoned)
            for o in result.outcomes
        ],
        [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.taxi_dissatisfaction,
             a.total_drive_km, a.revenue_km)
            for a in result.assignments
        ],
        [
            (f.time_s, f.queue_length, f.idle_taxis, f.dispatched_requests,
             f.dispatched_taxis, f.abandoned)
            for f in result.frame_stats
        ],
        result.frames_run,
        result.final_time_s,
    )


class TestBatchEquivalence:
    def test_epoch_equals_frame_is_bit_identical(self, workload):
        """The proven equivalence mode: warm zoned streaming vs the
        cold global batch engine, identical in everything observable."""
        sim_config, fleet, requests = workload
        reference = _batch(sim_config, fleet, requests)
        streamed = StreamingEngine(ORACLE, sim_config).run(fleet, requests)
        assert _observable(reference) == _observable(streamed)

    def test_cold_zones_equivalent_too(self, workload):
        sim_config, fleet, requests = workload
        reference = _batch(sim_config, fleet, requests)
        streamed = StreamingEngine(ORACLE, sim_config, warm_zones=False).run(
            fleet, requests
        )
        assert _observable(reference) == _observable(streamed)
        assert streamed.dispatch_telemetry.get("warm_frames", 0) == 0

    def test_explicit_zone_km_equivalent_too(self, workload):
        sim_config, fleet, requests = workload
        reference = _batch(sim_config, fleet, requests)
        streamed = StreamingEngine(ORACLE, sim_config, zone_km=1.0).run(
            fleet, requests
        )
        assert _observable(reference) == _observable(streamed)
        assert streamed.dispatch_telemetry.get("zone_km") == 1.0


class TestStreamingTelemetry:
    def test_event_and_zone_counters(self, workload):
        sim_config, fleet, requests = workload
        result = StreamingEngine(ORACLE, sim_config).run(fleet, requests)
        telemetry = result.dispatch_telemetry
        assert telemetry["events_arrivals"] == len(requests)
        assert telemetry["events_epochs"] == result.frames_run
        assert telemetry["events_processed"] == (
            telemetry["events_arrivals"]
            + telemetry["events_releases"]
            + telemetry["events_epochs"]
        )
        assert telemetry["epochs_run"] == result.frames_run
        assert telemetry["epoch_length_s"] == sim_config.frame_length_s
        assert telemetry["zones_active_max"] >= 1
        assert telemetry["zone_queue_depth_max"] >= 1
        assert telemetry["boundary_reconciliations"] >= 0
        assert telemetry["warm_frames"] > 0
        perf = result.perf_stats()
        assert perf["events_per_epoch"] >= 1.0
        assert perf["warm_hit_rate"] > 0.0
        assert "zone_groups_mean" in perf

    def test_dispatcher_name(self, workload):
        sim_config, fleet, requests = workload
        assert StreamingEngine(ORACLE, sim_config).name == "NSTD-P-streaming"
        assert (
            StreamingEngine(ORACLE, sim_config, optimize_for="taxi").name
            == "NSTD-T-streaming"
        )


class TestSubFrameEpochs:
    def test_shorter_epoch_reacts_faster(self, workload):
        """Half-minute epochs double the epoch count and never increase
        any individual dispatch delay beyond the one-minute run's
        (requests can only be seen sooner, never later)."""
        sim_config, fleet, requests = workload
        minute = StreamingEngine(ORACLE, sim_config).run(fleet, requests)
        half = StreamingEngine(ORACLE, sim_config, epoch_length_s=30.0).run(
            fleet, requests
        )
        assert half.frames_run > minute.frames_run
        assert half.service_rate > 0.0
        # Epoch times advance by the epoch length.
        times = [f.time_s for f in half.frame_stats[:4]]
        assert times == pytest.approx([30.0, 60.0, 90.0, 120.0])


class TestPerZoneDegradationEndToEnd:
    def test_zero_budget_degrades_every_group_but_completes(self, workload):
        """An already-expired epoch budget forces the greedy rung for
        every zone group: the run still completes with every counter
        consistent, no stable matching and no warm state."""
        sim_config, fleet, requests = workload
        result = StreamingEngine(ORACLE, sim_config, epoch_budget_s=0.0).run(
            fleet, requests
        )
        telemetry = result.dispatch_telemetry
        assert telemetry["zone_groups_degraded"] > 0
        assert telemetry["zones_degraded"] >= telemetry["zone_groups_degraded"]
        assert telemetry.get("warm_frames", 0) == 0
        assert result.service_rate > 0.0

    def test_injected_clock_controls_degradation(self, workload):
        """With a frozen injected clock the same zero budget degrades
        nothing: elapsed time never advances, every checkpoint passes,
        and the run is bit-identical to the unbudgeted one."""
        sim_config, fleet, requests = workload
        unbudgeted = StreamingEngine(ORACLE, sim_config).run(fleet, requests)
        frozen = StreamingEngine(
            ORACLE, sim_config, epoch_budget_s=0.0, budget_clock=lambda: 0.0
        ).run(fleet, requests)
        assert _observable(unbudgeted) == _observable(frozen)
        assert frozen.dispatch_telemetry.get("zone_groups_degraded", 0) == 0


class TestInputGuards:
    def test_duplicate_taxi_ids_rejected(self, workload):
        sim_config, fleet, requests = workload
        with pytest.raises(SimulationError):
            StreamingEngine(ORACLE, sim_config).run([fleet[0], fleet[0]], requests)

    def test_duplicate_request_ids_rejected(self, workload):
        sim_config, fleet, requests = workload
        with pytest.raises(SimulationError):
            StreamingEngine(ORACLE, sim_config).run(fleet, [requests[0], requests[0]])

    def test_bad_constructor_values_rejected(self):
        with pytest.raises(ValueError):
            StreamingEngine(ORACLE, epoch_length_s=0.0)
        with pytest.raises(ValueError):
            StreamingEngine(ORACLE, epoch_budget_s=-1.0)
        with pytest.raises(ValueError):
            StreamingEngine(ORACLE, optimize_for="both")
