"""Unit tests for the maximum set packing solvers."""

import itertools
import random

import pytest

from repro.core import PackingError
from repro.packing import (
    exact_set_packing,
    greedy_set_packing,
    local_search_packing,
    verify_packing,
)


def brute_force_optimum(sets):
    normalized = [frozenset(s) for s in sets]
    best = 0
    for k in range(len(normalized), 0, -1):
        for combo in itertools.combinations(range(len(normalized)), k):
            union = set()
            ok = True
            for index in combo:
                if union & normalized[index]:
                    ok = False
                    break
                union |= normalized[index]
            if ok:
                return k
    return best


def random_sets(rng, n_sets, universe, max_size=3):
    return [
        frozenset(rng.sample(range(universe), rng.randint(2, max_size)))
        for _ in range(n_sets)
    ]


class TestVerifyPacking:
    def test_accepts_disjoint(self):
        assert verify_packing([{1, 2}, {3, 4}], [0, 1])

    def test_rejects_overlap(self):
        assert not verify_packing([{1, 2}, {2, 3}], [0, 1])

    def test_rejects_out_of_range_and_duplicates(self):
        assert not verify_packing([{1}], [1])
        assert not verify_packing([{1}, {2}], [0, 0])

    def test_rejects_empty_set(self):
        with pytest.raises(PackingError):
            verify_packing([set()], [])


class TestGreedy:
    def test_produces_valid_packing(self):
        rng = random.Random(0)
        for _ in range(50):
            sets = random_sets(rng, rng.randint(1, 12), 10)
            result = greedy_set_packing(sets)
            assert verify_packing(sets, result.chosen)

    def test_prefers_low_conflict_sets(self):
        # {4,5} conflicts with nothing; the three mutually overlapping
        # sets allow only one more pick.
        sets = [{1, 2}, {2, 3}, {1, 3}, {4, 5}]
        result = greedy_set_packing(sets)
        assert 3 in result.chosen
        assert result.size == 2

    def test_covered_matches_chosen(self):
        sets = [{1, 2}, {3}]
        result = greedy_set_packing(sets)
        assert result.covered == frozenset({1, 2, 3})

    def test_deterministic(self):
        sets = [{1, 2}, {2, 3}, {3, 4}]
        assert greedy_set_packing(sets).chosen == greedy_set_packing(sets).chosen


class TestLocalSearch:
    def test_never_worse_than_greedy(self):
        rng = random.Random(1)
        for _ in range(40):
            sets = random_sets(rng, rng.randint(1, 12), 9)
            greedy = greedy_set_packing(sets)
            improved = local_search_packing(sets)
            assert improved.size >= greedy.size
            assert verify_packing(sets, improved.chosen)

    def test_one_two_swap_improves(self):
        # Greedy-from-{0} locks {1..4}; swapping it out fits two sets.
        sets = [{1, 2, 3}, {1, 4}, {2, 5}]
        result = local_search_packing(sets, initial=[0], swap_out=1)
        assert result.size == 2
        assert set(result.chosen) == {1, 2}

    def test_respects_initial_validity(self):
        with pytest.raises(PackingError):
            local_search_packing([{1}, {1}], initial=[0, 1])

    def test_rejects_negative_swap(self):
        with pytest.raises(PackingError):
            local_search_packing([{1}], swap_out=-1)

    def test_achieves_optimum_on_small_instances(self):
        rng = random.Random(2)
        gaps = 0
        for _ in range(40):
            sets = random_sets(rng, rng.randint(1, 10), 8)
            result = local_search_packing(sets, swap_out=2)
            if result.size < brute_force_optimum(sets):
                gaps += 1
        # (2,3)-local search is an approximation; it should be optimal on
        # the vast majority of tiny instances.
        assert gaps <= 4


class TestExact:
    def test_matches_brute_force(self):
        rng = random.Random(3)
        for _ in range(40):
            sets = random_sets(rng, rng.randint(1, 11), 9)
            result = exact_set_packing(sets)
            assert verify_packing(sets, result.chosen)
            assert result.size == brute_force_optimum(sets)

    def test_at_least_local_search(self):
        rng = random.Random(4)
        for _ in range(30):
            sets = random_sets(rng, rng.randint(1, 10), 8)
            assert exact_set_packing(sets).size >= local_search_packing(sets).size

    def test_node_limit_raises(self):
        sets = [{i, i + 100} for i in range(30)]
        with pytest.raises(PackingError):
            exact_set_packing(sets, node_limit=5)

    def test_empty_input(self):
        assert exact_set_packing([]).size == 0
