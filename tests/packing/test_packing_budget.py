"""Anytime behaviour of the sharing pack stage under work budgets."""

from repro.core import DispatchConfig, PassengerRequest
from repro.geometry import EuclideanDistance, Point
from repro.packing import enumerate_feasible_groups
from repro.packing.set_packing import (
    exact_set_packing,
    local_search_packing,
    verify_packing,
)
from repro.resilience import WorkBudget

CHAIN_SETS = [frozenset({i, i + 1}) for i in range(12)]


def shareable_requests(n=8):
    """Requests clustered so many pairs are feasible."""
    return [
        PassengerRequest(
            j,
            Point(0.05 * j, 0.0),
            Point(0.05 * j, 5.0),
            request_time_s=0.0,
        )
        for j in range(n)
    ]


class TestExactPackingBudget:
    def test_unbudgeted_result_untouched(self):
        result = exact_set_packing(CHAIN_SETS)
        assert not result.truncated
        assert result.chosen == (0, 2, 4, 6, 8, 10)

    def test_truncated_result_is_valid_best_so_far(self):
        result = exact_set_packing(CHAIN_SETS, budget=WorkBudget(2))
        assert result.truncated
        assert verify_packing(CHAIN_SETS, result.chosen)
        assert result.size <= 6

    def test_generous_budget_is_exact_and_untruncated(self):
        result = exact_set_packing(CHAIN_SETS, budget=WorkBudget(10**6))
        assert not result.truncated
        assert result.chosen == exact_set_packing(CHAIN_SETS).chosen


class TestLocalSearchBudget:
    def test_unbudgeted_result_untouched(self):
        result = local_search_packing(CHAIN_SETS)
        assert not result.truncated
        assert verify_packing(CHAIN_SETS, result.chosen)

    def test_truncated_result_is_valid(self):
        result = local_search_packing(CHAIN_SETS, budget=WorkBudget(0))
        assert result.truncated
        assert verify_packing(CHAIN_SETS, result.chosen)
        # The greedy seed survives: truncation never yields an empty
        # packing when the greedy pass found one.
        assert result.size > 0


class TestFeasibilityBudget:
    def test_unbudgeted_enumeration_untouched(self):
        requests = shareable_requests()
        oracle = EuclideanDistance()
        config = DispatchConfig(theta_km=2.0, max_group_size=2)
        groups, stats = enumerate_feasible_groups(
            requests, oracle, config, with_stats=True
        )
        assert groups
        assert not stats.truncated

    def test_budget_truncates_enumeration(self):
        requests = shareable_requests()
        oracle = EuclideanDistance()
        config = DispatchConfig(theta_km=2.0, max_group_size=2)
        full = enumerate_feasible_groups(requests, oracle, config)
        part, stats = enumerate_feasible_groups(
            requests, oracle, config, with_stats=True, budget=WorkBudget(3)
        )
        assert stats.truncated
        assert any("work budget" in note for note in stats.notes)
        assert len(part) < len(full)
        # The prefix property: truncated groups are the first candidates
        # the unbudgeted enumeration would emit, same ids and order.
        assert [g.request_ids for g in part] == [
            g.request_ids for g in full[: len(part)]
        ]

    def test_budget_skips_triples_after_pairs_exhaust(self):
        requests = shareable_requests(6)
        oracle = EuclideanDistance()
        config = DispatchConfig(theta_km=5.0, max_group_size=3)
        _, stats = enumerate_feasible_groups(
            requests, oracle, config, with_stats=True, budget=WorkBudget(2)
        )
        assert stats.truncated
        assert stats.triples_tested == 0
