"""Unit tests for feasible-group enumeration (Algorithm 3, line 1)."""

import pytest

from repro.core import DispatchConfig, PackingError, PassengerRequest
from repro.geometry import EuclideanDistance, Point
from repro.packing import enumerate_feasible_groups, group_is_feasible


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def request(rid, sx, sy, dx, dy, passengers=1):
    return PassengerRequest(rid, Point(sx, sy), Point(dx, dy), passengers=passengers)


class TestGroupIsFeasible:
    def test_parallel_trips_share_with_zero_detour(self, oracle):
        # Two collinear nested trips: optimal route has no detour at all.
        a = request(1, 0, 0, 4, 0)
        b = request(2, 1, 0, 3, 0)
        assert group_is_feasible((a, b), oracle, theta_km=0.0)

    def test_theta_bound_enforced(self, oracle):
        # Perpendicular trips force a real detour on someone.
        a = request(1, 0, 0, 10, 0)
        b = request(2, 5, 5, 5, -5)
        assert not group_is_feasible((a, b), oracle, theta_km=0.1)
        assert group_is_feasible((a, b), oracle, theta_km=50.0)

    def test_max_passengers(self, oracle):
        a = request(1, 0, 0, 1, 0, passengers=3)
        b = request(2, 0, 0, 1, 0, passengers=2)
        assert not group_is_feasible((a, b), oracle, theta_km=10.0, max_passengers=4)
        assert group_is_feasible((a, b), oracle, theta_km=10.0, max_passengers=5)

    def test_empty_group_raises(self, oracle):
        with pytest.raises(PackingError):
            group_is_feasible((), oracle, 1.0)

    def test_singleton_always_feasible(self, oracle):
        assert group_is_feasible((request(1, 0, 0, 5, 0),), oracle, theta_km=0.0)


class TestEnumeration:
    def test_finds_pairs_and_triples(self, oracle):
        # Three nested collinear trips: every subset shares perfectly.
        requests = [
            request(1, 0, 0, 6, 0),
            request(2, 1, 0, 5, 0),
            request(3, 2, 0, 4, 0),
        ]
        groups = enumerate_feasible_groups(requests, oracle, DispatchConfig(theta_km=0.5))
        sizes = sorted(g.size for g in groups)
        assert sizes == [2, 2, 2, 3]

    def test_group_ids_consecutive(self, oracle):
        requests = [request(i, 0.1 * i, 0, 5, 0) for i in range(1, 5)]
        groups = enumerate_feasible_groups(requests, oracle, DispatchConfig())
        assert [g.group_id for g in groups] == list(range(len(groups)))

    def test_max_group_size_one_yields_nothing(self, oracle):
        requests = [request(1, 0, 0, 5, 0), request(2, 0, 0, 5, 0)]
        groups = enumerate_feasible_groups(
            requests, oracle, DispatchConfig(max_group_size=1)
        )
        assert groups == []

    def test_metric_pruning_is_a_subset_and_pair_exact(self, oracle):
        import numpy as np

        rng = np.random.default_rng(0)
        requests = [
            request(i, *rng.uniform(-3, 3, 2), *rng.uniform(-3, 3, 2)) for i in range(9)
        ]
        config = DispatchConfig(theta_km=2.0)
        pruned = enumerate_feasible_groups(requests, oracle, config, assume_metric=True)
        full = enumerate_feasible_groups(requests, oracle, config, assume_metric=False)
        pruned_ids = {g.request_ids for g in pruned}
        full_ids = {g.request_ids for g in full}
        # The heuristic never invents groups and is exact on pairs.
        assert pruned_ids <= full_ids
        assert {ids for ids in pruned_ids if len(ids) == 2} == {
            ids for ids in full_ids if len(ids) == 2
        }
        # It keeps the vast majority of triples on realistic geometry.
        full_triples = {ids for ids in full_ids if len(ids) == 3}
        pruned_triples = {ids for ids in pruned_ids if len(ids) == 3}
        if full_triples:
            assert len(pruned_triples) >= 0.5 * len(full_triples)

    def test_pairing_radius_prunes_distant_pairs(self, oracle):
        # Far-apart pickups form a degenerate sequential "share".
        a = request(1, 0, 0, 1, 0)
        b = request(2, 50, 0, 51, 0)
        config = DispatchConfig(theta_km=5.0)
        without = enumerate_feasible_groups([a, b], oracle, config)
        with_radius = enumerate_feasible_groups(
            [a, b], oracle, config, pairing_radius_km=10.0
        )
        assert len(without) == 1  # the sequential pair is theta-feasible
        assert with_radius == []

    def test_stats(self, oracle):
        requests = [
            request(1, 0, 0, 6, 0),
            request(2, 1, 0, 5, 0),
            request(3, 2, 0, 4, 0),
        ]
        _, stats = enumerate_feasible_groups(
            requests, oracle, DispatchConfig(theta_km=0.5), with_stats=True
        )
        assert stats.pairs_tested == 3
        assert stats.pairs_feasible == 3
        assert stats.triples_feasible == 1
        assert stats.groups == 4

    def test_cache_skips_recomputation(self, oracle):
        requests = [request(i, 0.2 * i, 0, 5, 0) for i in range(1, 7)]
        config = DispatchConfig()
        cache = {}
        first, stats1 = enumerate_feasible_groups(
            requests, oracle, config, cache=cache, with_stats=True
        )
        second, stats2 = enumerate_feasible_groups(
            requests, oracle, config, cache=cache, with_stats=True
        )
        assert {g.request_ids for g in first} == {g.request_ids for g in second}
        assert stats2.pairs_tested == 0
        assert stats2.triples_tested == 0

    def test_cached_groups_get_fresh_ids(self, oracle):
        requests = [request(i, 0.1 * i, 0, 5, 0) for i in range(1, 4)]
        cache = {}
        enumerate_feasible_groups(requests, oracle, DispatchConfig(), cache=cache)
        groups = enumerate_feasible_groups(requests, oracle, DispatchConfig(), cache=cache)
        assert [g.group_id for g in groups] == list(range(len(groups)))

    def test_group_detours_within_theta(self, oracle):
        import numpy as np

        rng = np.random.default_rng(1)
        requests = [
            request(i, *rng.uniform(-3, 3, 2), *rng.uniform(-3, 3, 2)) for i in range(8)
        ]
        theta = 1.5
        groups = enumerate_feasible_groups(requests, oracle, DispatchConfig(theta_km=theta))
        for group in groups:
            for member in group.requests:
                assert group.detour_km(member.request_id, oracle) <= theta + 1e-6
