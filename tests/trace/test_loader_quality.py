"""Data-quality accounting in the trace loaders: per-reason skip counts,
the lossy-load warning, and the timestamp/coordinate rejection paths."""

import warnings

import pytest

from repro.core import TraceFormatError
from repro.trace import load_generic_trace, load_nyc_trace
from repro.trace.loader import _degenerate, parse_timestamp

NYC_HEADER = (
    "VendorID,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_count,"
    "trip_distance,pickup_longitude,pickup_latitude,RatecodeID,store_and_fwd_flag,"
    "dropoff_longitude,dropoff_latitude,payment_type,fare_amount"
)

GOOD_NYC = "2,2016-01-01 00:00:00,2016-01-01 00:10:00,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0"


def write_nyc(tmp_path, rows):
    path = tmp_path / "yellow.csv"
    path.write_text(NYC_HEADER + "\n" + "\n".join(rows) + "\n")
    return path


def write_generic(tmp_path, rows):
    path = tmp_path / "boston.csv"
    path.write_text("time,plon,plat,dlon,dlat,passengers\n" + "\n".join(rows) + "\n")
    return path


class TestParseTimestampRejection:
    @pytest.mark.parametrize(
        "value",
        [
            "",
            "   ",
            "yesterday",
            "2016-13-01 00:00:00",  # month 13
            "2016-01-01 25:00:00",  # hour 25
            "2016-01-01",  # date only
            "00:30:00",  # time only
            "1451606400",  # epoch seconds are not a timestamp format
        ],
    )
    def test_rejects(self, value):
        with pytest.raises(TraceFormatError):
            parse_timestamp(value)

    def test_accepts_all_documented_formats(self):
        for value in (
            "2016-01-01 00:30:00",
            "2016-01-01T00:30:00",
            "01/02/2016 10:00:00",
            "01/02/2016 10:00",
        ):
            assert parse_timestamp(value).year == 2016

    def test_strips_whitespace(self):
        assert parse_timestamp("  2016-01-01 00:30:00  ").minute == 30


class TestDegenerateFilter:
    def test_origin_is_degenerate(self):
        assert _degenerate(0.0, 0.0)
        assert _degenerate(1e-12, -1e-12)

    def test_real_coordinates_are_not(self):
        assert not _degenerate(-73.99, 40.73)
        # Zero on a single axis is a legitimate coordinate (Greenwich).
        assert not _degenerate(0.0, 51.48)
        assert not _degenerate(-73.99, 0.0)


class TestSkipReasonsNYC:
    def test_each_reason_counted(self, tmp_path):
        path = write_nyc(
            tmp_path,
            [
                GOOD_NYC,
                "2,not-a-time,x,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:01:00,x,1,2.1,oops,40.73,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:02:00,x,bogus,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:03:00,x,1,2.1,0,0,1,N,-73.98,40.75,1,9.0",
            ],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = load_nyc_trace(path)
        assert report.loaded_rows == 1
        assert report.skipped_rows == 4
        assert report.skip_reasons == {
            "bad_timestamp": 1,
            "bad_coordinate": 1,
            "bad_passengers": 1,
            "degenerate_coords": 1,
        }
        assert sum(report.skip_reasons.values()) == report.skipped_rows

    def test_clean_load_has_empty_reasons(self, tmp_path):
        report = load_nyc_trace(write_nyc(tmp_path, [GOOD_NYC]))
        assert report.skip_reasons == {}
        assert report.skip_ratio == 0.0


class TestSkipReasonsGeneric:
    def test_each_reason_counted(self, tmp_path):
        path = write_generic(
            tmp_path,
            [
                "0,1.0,1.0,2.0,2.0,1",
                "only,two",
                "whenever,1.0,1.0,2.0,2.0,1",
                "10,nope,1.0,2.0,2.0,1",
                "20,1.0,1.0,2.0,2.0,many",
                "30,0,0,2.0,2.0,1",
            ],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = load_generic_trace(path)
        assert report.loaded_rows == 1
        assert report.skip_reasons == {
            "short_row": 1,
            "bad_timestamp": 1,
            "bad_coordinate": 1,
            "bad_passengers": 1,
            "degenerate_coords": 1,
        }
        assert sum(report.skip_reasons.values()) == report.skipped_rows


class TestLossyWarning:
    def test_warns_above_one_percent(self, tmp_path):
        path = write_nyc(tmp_path, [GOOD_NYC, GOOD_NYC.replace("-73.99", "0").replace("40.73", "0")])
        with pytest.warns(RuntimeWarning, match="degenerate_coords=1"):
            load_nyc_trace(path)

    def test_quiet_below_threshold(self, tmp_path):
        rows = [GOOD_NYC] * 200
        rows.append("2,not-a-time,x,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0")
        path = write_nyc(tmp_path, rows)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            report = load_nyc_trace(path)  # 1/201 < 1%: no warning
        assert report.skipped_rows == 1

    def test_skip_ratio_property(self, tmp_path):
        path = write_generic(tmp_path, ["0,1.0,1.0,2.0,2.0,1", "only,two"])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = load_generic_trace(path)
        assert report.skip_ratio == pytest.approx(0.5)
