"""Unit tests for trip records and projections."""

import pytest

from repro.core import TraceFormatError
from repro.trace import (
    EquirectangularProjection,
    IdentityProjection,
    TripRecord,
    records_to_requests,
)


class TestTripRecord:
    def test_rejects_negative_time(self):
        with pytest.raises(TraceFormatError):
            TripRecord(-1.0, (0, 0), (1, 1))

    def test_rejects_bad_party(self):
        with pytest.raises(TraceFormatError):
            TripRecord(0.0, (0, 0), (1, 1), passengers=0)


class TestProjections:
    def test_identity(self):
        point = IdentityProjection().to_point((3.5, -2.0))
        assert (point.x, point.y) == (3.5, -2.0)

    def test_equirectangular_latitude_scale(self):
        projection = EquirectangularProjection(ref_lon=0.0, ref_lat=0.0)
        point = projection.to_point((0.0, 1.0))
        assert point.y == pytest.approx(111.32)
        assert point.x == pytest.approx(0.0)

    def test_equirectangular_longitude_shrinks_with_latitude(self):
        at_equator = EquirectangularProjection(0.0, 0.0).to_point((1.0, 0.0)).x
        at_60 = EquirectangularProjection(0.0, 60.0).to_point((1.0, 60.0)).x
        assert at_60 == pytest.approx(at_equator * 0.5, rel=1e-3)

    def test_centered_on(self):
        records = [
            TripRecord(0.0, (10.0, 50.0), (10.1, 50.1)),
            TripRecord(1.0, (12.0, 52.0), (12.1, 52.1)),
        ]
        projection = EquirectangularProjection.centered_on(records)
        center = projection.to_point((11.0, 51.0))
        assert center.x == pytest.approx(0.0)
        assert center.y == pytest.approx(0.0)

    def test_centered_on_empty_raises(self):
        with pytest.raises(TraceFormatError):
            EquirectangularProjection.centered_on([])


class TestRecordsToRequests:
    def test_sorted_and_ids_follow_time(self):
        records = [
            TripRecord(100.0, (1.0, 0.0), (2.0, 0.0)),
            TripRecord(50.0, (0.0, 0.0), (1.0, 0.0), passengers=2),
        ]
        requests = records_to_requests(records, start_id=10)
        assert [r.request_id for r in requests] == [10, 11]
        assert requests[0].request_time_s == 50.0
        assert requests[0].passengers == 2

    def test_identity_projection_default(self):
        records = [TripRecord(0.0, (1.0, 2.0), (3.0, 4.0))]
        (request,) = records_to_requests(records)
        assert (request.pickup.x, request.pickup.y) == (1.0, 2.0)
        assert (request.dropoff.x, request.dropoff.y) == (3.0, 4.0)
