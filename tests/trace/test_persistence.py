"""Unit tests for trace persistence round trips."""

import pytest

from repro.core import TraceFormatError
from repro.trace import boston_profile
from repro.trace.persistence import (
    load_fleet_csv,
    load_requests_csv,
    save_fleet_csv,
    save_requests_csv,
)
from repro.trace.synthetic import SyntheticTraceGenerator


@pytest.fixture()
def workload():
    profile = boston_profile().scaled(0.005)
    generator = SyntheticTraceGenerator(profile, seed=4)
    return generator.requests_for_day(), generator.fleet(9)


class TestRequestsRoundTrip:
    def test_bit_faithful_round_trip(self, tmp_path, workload):
        requests, _ = workload
        path = tmp_path / "trace.csv"
        written = save_requests_csv(requests, path)
        assert written == len(requests)
        loaded = load_requests_csv(path)
        assert len(loaded) == len(requests)
        for original, restored in zip(
            sorted(requests, key=lambda r: (r.request_time_s, r.request_id)), loaded
        ):
            assert restored.request_time_s == pytest.approx(original.request_time_s, abs=1e-6)
            assert restored.pickup.x == pytest.approx(original.pickup.x, rel=1e-9)
            assert restored.dropoff.y == pytest.approx(original.dropoff.y, rel=1e-9)
            assert restored.passengers == original.passengers

    def test_ids_reassigned_in_time_order(self, tmp_path, workload):
        requests, _ = workload
        path = tmp_path / "trace.csv"
        save_requests_csv(requests, path)
        loaded = load_requests_csv(path, start_id=50)
        assert [r.request_id for r in loaded] == list(range(50, 50 + len(loaded)))
        times = [r.request_time_s for r in loaded]
        assert times == sorted(times)

    def test_corrupt_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,plon,plat,dlon,dlat,passengers\nx,y,z,w,v,u\n")
        with pytest.raises(TraceFormatError):
            load_requests_csv(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert save_requests_csv([], path) == 0
        assert load_requests_csv(path) == []


class TestFleetRoundTrip:
    def test_round_trip(self, tmp_path, workload):
        _, fleet = workload
        path = tmp_path / "fleet.csv"
        assert save_fleet_csv(fleet, path) == len(fleet)
        loaded = load_fleet_csv(path)
        assert [t.taxi_id for t in loaded] == [t.taxi_id for t in sorted(fleet, key=lambda t: t.taxi_id)]
        assert all(a.seats == b.seats for a, b in zip(loaded, sorted(fleet, key=lambda t: t.taxi_id)))
        assert loaded[0].location.x == pytest.approx(
            sorted(fleet, key=lambda t: t.taxi_id)[0].location.x, rel=1e-9
        )

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceFormatError):
            load_fleet_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("taxi_id,x,y,seats\nnope,1,2,4\n")
        with pytest.raises(TraceFormatError):
            load_fleet_csv(path)
