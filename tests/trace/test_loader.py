"""Unit tests for the real-trace CSV loaders."""

import pytest

from repro.core import TraceFormatError
from repro.trace import (
    EquirectangularProjection,
    load_generic_trace,
    load_nyc_trace,
    records_to_requests,
)
from repro.trace.loader import parse_timestamp

NYC_HEADER = (
    "VendorID,tpep_pickup_datetime,tpep_dropoff_datetime,passenger_count,"
    "trip_distance,pickup_longitude,pickup_latitude,RatecodeID,store_and_fwd_flag,"
    "dropoff_longitude,dropoff_latitude,payment_type,fare_amount"
)


def write_nyc(tmp_path, rows):
    path = tmp_path / "yellow.csv"
    path.write_text(NYC_HEADER + "\n" + "\n".join(rows) + "\n")
    return path


class TestParseTimestamp:
    def test_formats(self):
        assert parse_timestamp("2016-01-01 00:30:00").minute == 30
        assert parse_timestamp("2016-01-01T00:30:00").hour == 0
        assert parse_timestamp("01/02/2016 10:00:00").month == 1

    def test_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            parse_timestamp("not a time")


class TestNYCLoader:
    def test_loads_valid_rows(self, tmp_path):
        path = write_nyc(
            tmp_path,
            [
                "2,2016-01-01 00:00:00,2016-01-01 00:10:00,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:05:00,2016-01-01 00:20:00,2,3.0,-73.97,40.76,1,N,-73.99,40.72,1,12.0",
            ],
        )
        report = load_nyc_trace(path)
        assert report.loaded_rows == 2
        assert report.skipped_rows == 0
        assert report.records[0].request_time_s == 0.0
        assert report.records[1].request_time_s == 300.0
        assert report.records[1].passengers == 2

    def test_skips_zero_coordinates(self, tmp_path):
        path = write_nyc(
            tmp_path,
            [
                "2,2016-01-01 00:00:00,2016-01-01 00:10:00,1,2.1,0,0,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:05:00,2016-01-01 00:20:00,1,3.0,-73.97,40.76,1,N,-73.99,40.72,1,12.0",
            ],
        )
        report = load_nyc_trace(path)
        assert report.loaded_rows == 1
        assert report.skipped_rows == 1
        assert report.total_rows == 2

    def test_skips_malformed_rows(self, tmp_path):
        path = write_nyc(
            tmp_path,
            [
                "2,not-a-time,x,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0",
                "2,2016-01-01 00:05:00,2016-01-01 00:20:00,abc,3.0,-73.97,40.76,1,N,-73.99,40.72,1,12.0",
            ],
        )
        report = load_nyc_trace(path)
        assert report.loaded_rows == 0
        assert report.skipped_rows == 2

    def test_max_rows(self, tmp_path):
        rows = [
            f"2,2016-01-01 00:0{i}:00,2016-01-01 00:10:00,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0"
            for i in range(5)
        ]
        report = load_nyc_trace(write_nyc(tmp_path, rows), max_rows=3)
        assert report.loaded_rows == 3

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            load_nyc_trace(path)

    def test_projection_roundtrip(self, tmp_path):
        path = write_nyc(
            tmp_path,
            ["2,2016-01-01 00:00:00,2016-01-01 00:10:00,1,2.1,-73.99,40.73,1,N,-73.98,40.75,1,9.0"],
        )
        report = load_nyc_trace(path)
        projection = EquirectangularProjection.centered_on(report.records)
        (request,) = records_to_requests(report.records, projection)
        # pickup and dropoff are ~2.4 km apart on the ground.
        assert 1.0 < request.pickup.distance_to(request.dropoff) < 4.0


class TestGenericLoader:
    def test_numeric_times(self, tmp_path):
        path = tmp_path / "boston.csv"
        path.write_text(
            "time,plon,plat,dlon,dlat,passengers\n"
            "100,-71.06,42.36,-71.09,42.34,1\n"
            "40,-71.07,42.35,-71.05,42.37,2\n"
        )
        report = load_generic_trace(path)
        assert report.loaded_rows == 2
        times = sorted(r.request_time_s for r in report.records)
        assert times == [0.0, 60.0]

    def test_timestamp_times(self, tmp_path):
        path = tmp_path / "boston.csv"
        path.write_text(
            "time,plon,plat,dlon,dlat\n"
            "2012-09-01 08:00:00,-71.06,42.36,-71.09,42.34\n"
            "2012-09-01 08:01:00,-71.07,42.35,-71.05,42.37\n"
        )
        report = load_generic_trace(path)
        assert [r.request_time_s for r in report.records] == [0.0, 60.0]
        assert all(r.passengers == 1 for r in report.records)

    def test_short_rows_skipped(self, tmp_path):
        path = tmp_path / "boston.csv"
        path.write_text("time,plon,plat,dlon,dlat\n1,2,3\n10,-71.0,42.0,-71.1,42.1\n")
        report = load_generic_trace(path)
        assert report.loaded_rows == 1
        assert report.skipped_rows == 1

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_generic_trace(path)

    def test_no_valid_rows(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("time,plon,plat,dlon,dlat\nx,y,z,w,v\n")
        report = load_generic_trace(path)
        assert report.records == []
        assert report.skipped_rows == 1
