"""Unit tests for the calibrated city profiles."""

import pytest

from repro.core import ConfigurationError
from repro.trace import COMMUTER_HOURLY_WEIGHTS, CityProfile, boston_profile, nyc_profile


class TestCalibration:
    def test_nyc_volume_matches_trace(self):
        profile = nyc_profile()
        # 1,445,285 requests over January's 31 days.
        assert profile.daily_requests == pytest.approx(1_445_285 / 31, abs=1.0)
        assert profile.n_taxis == 700

    def test_boston_volume_matches_trace(self):
        profile = boston_profile()
        # 406,247 requests over September's 30 days.
        assert profile.daily_requests == pytest.approx(406_247 / 30, abs=1.0)
        assert profile.n_taxis == 200

    def test_nyc_covers_larger_area_than_boston(self):
        assert nyc_profile().pickup_sigma_km > boston_profile().pickup_sigma_km

    def test_commuter_weights_peak_at_rush_hours(self):
        weights = COMMUTER_HOURLY_WEIGHTS
        morning_peak = max(range(6, 12), key=lambda h: weights[h])
        evening_peak = max(range(12, 24), key=lambda h: weights[h])
        assert morning_peak == 9
        assert evening_peak == 18

    def test_normalized_weights_sum_to_one(self):
        assert sum(nyc_profile().normalized_hourly_weights) == pytest.approx(1.0)


class TestScaling:
    def test_scaled_preserves_ratio(self):
        profile = boston_profile()
        scaled = profile.scaled(0.1)
        original_ratio = profile.daily_requests / profile.n_taxis
        scaled_ratio = scaled.daily_requests / scaled.n_taxis
        assert scaled_ratio == pytest.approx(original_ratio, rel=0.05)

    def test_scaled_never_empty(self):
        tiny = boston_profile().scaled(1e-6)
        assert tiny.daily_requests >= 1
        assert tiny.n_taxis >= 1

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            boston_profile().scaled(0.0)

    def test_dynamic_similarity_space_scale(self):
        import math

        profile = boston_profile()
        scaled = profile.scaled(0.04)
        assert scaled.space_scale == pytest.approx(0.2)
        # Every length shrinks by sqrt(factor): sigmas, hotspots, trips.
        assert scaled.pickup_sigma_km == pytest.approx(0.2 * profile.pickup_sigma_km)
        assert scaled.taxi_sigma_km == pytest.approx(0.2 * profile.taxi_sigma_km)
        x, y, sigma, weight = scaled.demand_hotspots[0]
        x0, y0, sigma0, weight0 = profile.demand_hotspots[0]
        assert (x, y, sigma) == pytest.approx((0.2 * x0, 0.2 * y0, 0.2 * sigma0))
        assert weight == weight0
        assert scaled.trip_length_mean_log == pytest.approx(
            profile.trip_length_mean_log + math.log(0.2)
        )

    def test_scaling_composes(self):
        once = boston_profile().scaled(0.25).scaled(0.25)
        direct = boston_profile().scaled(0.0625)
        assert once.space_scale == pytest.approx(direct.space_scale)
        assert once.pickup_sigma_km == pytest.approx(direct.pickup_sigma_km)

    def test_shrink_geometry_false_keeps_lengths(self):
        profile = boston_profile()
        scaled = profile.scaled(0.1, shrink_geometry=False)
        assert scaled.space_scale == 1.0
        assert scaled.pickup_sigma_km == profile.pickup_sigma_km
        assert scaled.trip_length_mean_log == profile.trip_length_mean_log

    def test_with_taxis_preserves_space_scale(self):
        scaled = boston_profile().scaled(0.04).with_taxis(99)
        assert scaled.space_scale == pytest.approx(0.2)

    def test_with_taxis(self):
        profile = boston_profile().with_taxis(123)
        assert profile.n_taxis == 123
        assert profile.daily_requests == boston_profile().daily_requests


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="x",
            daily_requests=100,
            n_taxis=10,
            pickup_sigma_km=2.0,
            trip_length_mean_log=1.0,
            trip_length_sigma_log=0.5,
            taxi_sigma_km=2.0,
        )
        base.update(overrides)
        return base

    @pytest.mark.parametrize(
        "overrides",
        [
            {"daily_requests": 0},
            {"n_taxis": 0},
            {"pickup_sigma_km": 0.0},
            {"taxi_sigma_km": -1.0},
            {"trip_length_sigma_log": 0.0},
            {"hourly_weights": (1.0,) * 23},
            {"hourly_weights": (0.0,) * 24},
            {"hourly_weights": (-1.0,) + (1.0,) * 23},
        ],
    )
    def test_rejects_bad_profiles(self, overrides):
        with pytest.raises(ConfigurationError):
            CityProfile(**self._kwargs(**overrides))
