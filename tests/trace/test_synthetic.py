"""Unit tests for the synthetic trace generator."""

import math

import numpy as np
import pytest

from repro.trace import CityProfile, SyntheticTraceGenerator, boston_profile, generate_day, generate_fleet


@pytest.fixture()
def profile():
    return boston_profile().scaled(0.02)  # ~271 requests, 4 taxis


class TestRequests:
    def test_deterministic_with_seed(self, profile):
        a = SyntheticTraceGenerator(profile, seed=7).requests_for_day()
        b = SyntheticTraceGenerator(profile, seed=7).requests_for_day()
        assert [(r.request_time_s, r.pickup, r.dropoff) for r in a] == [
            (r.request_time_s, r.pickup, r.dropoff) for r in b
        ]

    def test_different_seeds_differ(self, profile):
        a = SyntheticTraceGenerator(profile, seed=1).requests_for_day()
        b = SyntheticTraceGenerator(profile, seed=2).requests_for_day()
        assert a[0].pickup != b[0].pickup

    def test_count_and_ordering(self, profile):
        requests = SyntheticTraceGenerator(profile, seed=0).requests_for_day()
        assert len(requests) == profile.daily_requests
        times = [r.request_time_s for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < 24 * 3600 for t in times)

    def test_ids_consecutive_from_start_id(self, profile):
        requests = SyntheticTraceGenerator(profile, seed=0).requests_for_day(start_id=100)
        assert [r.request_id for r in requests] == list(range(100, 100 + len(requests)))

    def test_trips_have_positive_length(self, profile):
        requests = SyntheticTraceGenerator(profile, seed=0).requests_for_day()
        floor = 0.2 * profile.space_scale
        assert all(r.pickup.distance_to(r.dropoff) >= floor - 1e-9 for r in requests)

    def test_rush_hours_busier_than_night(self):
        profile = boston_profile().scaled(0.5)
        requests = SyntheticTraceGenerator(profile, seed=3).requests_for_day()
        by_hour = np.bincount([int(r.request_time_s // 3600) for r in requests], minlength=24)
        assert by_hour[9] > 2 * by_hour[3]
        assert by_hour[18] > 2 * by_hour[3]

    def test_party_sizes_mostly_single(self):
        profile = boston_profile().scaled(0.2)
        requests = SyntheticTraceGenerator(profile, seed=0).requests_for_day()
        parties = [r.passengers for r in requests]
        assert set(parties) <= {1, 2, 3}
        assert parties.count(1) / len(parties) > 0.5

    def test_zero_requests(self, profile):
        assert SyntheticTraceGenerator(profile, seed=0).requests_for_day(0) == []

    def test_rejects_negative_count(self, profile):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(profile, seed=0).requests_for_day(-1)

    def test_rejects_bad_commute_bias(self, profile):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(profile, commute_bias=1.5)


class TestWindow:
    def test_times_inside_window(self, profile):
        gen = SyntheticTraceGenerator(profile, seed=0)
        requests = gen.requests_for_window(7 * 3600.0, 10 * 3600.0, 50)
        assert len(requests) == 50
        assert all(7 * 3600.0 <= r.request_time_s < 10 * 3600.0 for r in requests)

    def test_rejects_bad_window(self, profile):
        gen = SyntheticTraceGenerator(profile, seed=0)
        with pytest.raises(ValueError):
            gen.requests_for_window(10 * 3600.0, 7 * 3600.0, 10)


class TestFleet:
    def test_count_and_normal_spread(self, profile):
        fleet = SyntheticTraceGenerator(profile, seed=0).fleet(400)
        assert len(fleet) == 400
        xs = np.array([t.location.x for t in fleet])
        # 2-D normal around the centre: sample std close to taxi_sigma_km.
        assert abs(xs.mean()) < profile.taxi_sigma_km
        assert xs.std() == pytest.approx(profile.taxi_sigma_km, rel=0.25)

    def test_default_count_from_profile(self, profile):
        assert len(SyntheticTraceGenerator(profile, seed=0).fleet()) == profile.n_taxis

    def test_seats(self, profile):
        fleet = SyntheticTraceGenerator(profile, seed=0).fleet(3, seats=6)
        assert all(t.seats == 6 for t in fleet)

    def test_convenience_wrappers_are_independent(self, profile):
        requests = generate_day(profile, seed=5)
        fleet = generate_fleet(profile, seed=5)
        assert len(requests) == profile.daily_requests
        assert len(fleet) == profile.n_taxis
