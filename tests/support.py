"""Shared helpers for the test suite."""

from __future__ import annotations

import random

from repro.matching import PreferenceTable

__all__ = ["random_table", "TAXI_ID_BASE"]

TAXI_ID_BASE = 100


def random_table(
    rng: random.Random,
    n_proposers: int,
    n_reviewers: int,
    acceptance: float = 0.7,
) -> PreferenceTable:
    """A random preference market with random mutual acceptability.

    Proposer ids are 0..n−1; reviewer ids start at ``TAXI_ID_BASE`` so
    the two sides can never be confused in assertions.
    """
    proposers = list(range(n_proposers))
    reviewers = list(range(TAXI_ID_BASE, TAXI_ID_BASE + n_reviewers))
    pairs = [(p, r) for p in proposers for r in reviewers if rng.random() < acceptance]
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (pp, r) in pairs if pp == p]
        rng.shuffle(acceptable)
        proposer_prefs[p] = tuple(acceptable)
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = [p for (p, rr) in pairs if rr == r]
        rng.shuffle(acceptable)
        reviewer_prefs[r] = tuple(acceptable)
    return PreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)
