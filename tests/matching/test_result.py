"""Unit tests for the Matching value object."""

import pytest

from repro.core import MatchingError
from repro.matching import Matching


class TestConstruction:
    def test_from_dict_and_pairs(self):
        assert Matching({1: 100}) == Matching([(1, 100)])

    def test_rejects_duplicate_proposer(self):
        with pytest.raises(MatchingError):
            Matching([(1, 100), (1, 101)])

    def test_rejects_duplicate_reviewer(self):
        with pytest.raises(MatchingError):
            Matching([(1, 100), (2, 100)])

    def test_empty(self):
        empty = Matching({})
        assert empty.size == 0
        assert len(empty) == 0


class TestQueries:
    def test_partner_lookups(self):
        matching = Matching({1: 100, 2: 101})
        assert matching.reviewer_of(1) == 100
        assert matching.proposer_of(101) == 2
        assert matching.reviewer_of(9) is None
        assert matching.proposer_of(999) is None

    def test_matched_sets(self):
        matching = Matching({1: 100})
        assert matching.matched_proposers == {1}
        assert matching.matched_reviewers == {100}
        assert matching.unmatched_proposers([1, 2, 3]) == [2, 3]
        assert matching.unmatched_reviewers([100, 101]) == [101]

    def test_iteration_sorted(self):
        matching = Matching({3: 100, 1: 102, 2: 101})
        assert list(matching) == [(1, 102), (2, 101), (3, 100)]

    def test_as_dict_is_a_copy(self):
        matching = Matching({1: 100})
        d = matching.as_dict()
        d[2] = 200
        assert matching.reviewer_of(2) is None


class TestCopyOnWrite:
    def test_with_pair_releases_old_partners(self):
        matching = Matching({1: 100, 2: 101})
        updated = matching.with_pair(3, 100)
        assert updated.proposer_of(100) == 3
        assert updated.reviewer_of(1) is None
        # Original untouched.
        assert matching.proposer_of(100) == 1

    def test_without_proposer(self):
        matching = Matching({1: 100})
        assert matching.without_proposer(1).size == 0
        assert matching.without_proposer(9) == matching


class TestEquality:
    def test_hash_and_eq_by_pairs(self):
        a = Matching({1: 100, 2: 101})
        b = Matching([(2, 101), (1, 100)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_to_other_types(self):
        assert Matching({}) != {}
