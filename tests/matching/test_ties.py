"""Unit tests for SMTI support and Király's approximation algorithm."""

import random

import pytest

from repro.core import DispatchConfig, PassengerRequest, PreferenceError, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    Matching,
    TiedPreferenceTable,
    build_tied_nonsharing_table,
    find_weak_blocking_pairs,
    kiraly_max_stable,
    max_weakly_stable_brute_force,
    weakly_stable,
)


def random_tied_table(rng, n_proposers, n_reviewers, acceptance=0.7):
    proposers = list(range(n_proposers))
    reviewers = list(range(100, 100 + n_reviewers))
    pairs = [(p, r) for p in proposers for r in reviewers if rng.random() < acceptance]
    proposer_prefs = {}
    for p in proposers:
        acceptable = [r for (q, r) in pairs if q == p]
        rng.shuffle(acceptable)
        proposer_prefs[p] = tuple(acceptable)
    reviewer_prefs = {}
    for r in reviewers:
        acceptable = [p for (p, q) in pairs if q == r]
        rng.shuffle(acceptable)
        groups = []
        index = 0
        while index < len(acceptable):
            size = rng.randint(1, len(acceptable) - index)
            groups.append(tuple(sorted(acceptable[index : index + size])))
            index += size
        reviewer_prefs[r] = tuple(groups)
    return TiedPreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)


class TestTiedPreferenceTable:
    def test_tie_levels(self):
        table = TiedPreferenceTable(
            proposer_prefs={0: (100,), 1: (100,), 2: (100,)},
            reviewer_prefs={100: ((0, 1), (2,))},
        )
        assert table.reviewer_tie_level(100, 0) == 0
        assert table.reviewer_tie_level(100, 1) == 0
        assert table.reviewer_tie_level(100, 2) == 1
        assert table.reviewer_tie_level(100, 9) is None

    def test_rejects_duplicates_and_inconsistency(self):
        with pytest.raises(PreferenceError):
            TiedPreferenceTable(
                proposer_prefs={0: (100,)}, reviewer_prefs={100: ((0,), (0,))}
            )
        with pytest.raises(PreferenceError):
            TiedPreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: ()})


class TestWeakStability:
    def test_indifferent_reviewer_does_not_block(self):
        # 1 would love reviewer 100, but 100 is indifferent between 0 and
        # 1, so (1, 100) does not weakly block.
        table = TiedPreferenceTable(
            proposer_prefs={0: (100,), 1: (100, 101)},
            reviewer_prefs={100: ((0, 1),), 101: ((1,),)},
        )
        matching = Matching({0: 100, 1: 101})
        assert weakly_stable(table, matching)

    def test_strict_preference_blocks(self):
        table = TiedPreferenceTable(
            proposer_prefs={0: (100,), 1: (100, 101)},
            reviewer_prefs={100: ((1,), (0,)), 101: ((1,),)},
        )
        matching = Matching({0: 100, 1: 101})
        assert find_weak_blocking_pairs(table, matching) == [(1, 100)]

    def test_unacceptable_pair_invalid(self):
        table = TiedPreferenceTable(proposer_prefs={0: ()}, reviewer_prefs={100: ()})
        assert not weakly_stable(table, Matching({0: 100}))


class TestKiraly:
    def test_output_always_weakly_stable(self):
        rng = random.Random(0)
        for _ in range(150):
            table = random_tied_table(rng, rng.randint(1, 6), rng.randint(1, 6))
            matching = kiraly_max_stable(table)
            assert weakly_stable(table, matching)

    def test_two_thirds_guarantee(self):
        rng = random.Random(1)
        for _ in range(120):
            table = random_tied_table(rng, rng.randint(1, 5), rng.randint(1, 5))
            approx = kiraly_max_stable(table).size
            optimum = max_weakly_stable_brute_force(table).size
            if optimum:
                assert 3 * approx >= 2 * optimum

    def test_promotion_recovers_a_tied_slot(self):
        # Textbook SMTI case: proposer-optimal GS with arbitrary tie
        # breaking can strand proposer 1; promotion lets it displace an
        # equally-ranked rival that has other options.
        table = TiedPreferenceTable(
            proposer_prefs={0: (100, 101), 1: (100,)},
            reviewer_prefs={100: ((0, 1),), 101: ((0,),)},
        )
        matching = kiraly_max_stable(table)
        assert matching.size == 2
        assert matching.reviewer_of(1) == 100
        assert matching.reviewer_of(0) == 101

    def test_empty_market(self):
        table = TiedPreferenceTable(proposer_prefs={}, reviewer_prefs={})
        assert kiraly_max_stable(table).size == 0


class TestTiedDispatchTable:
    def test_quantization_produces_ties(self):
        oracle = EuclideanDistance()
        taxis = [Taxi(0, Point(0, 0))]
        # Two requests with driver scores 0.301 and 0.349: equal at a
        # 0.1 km resolution.
        requests = [
            PassengerRequest(0, Point(1.301, 0), Point(2.301, 0)),
            PassengerRequest(1, Point(1.349, 0), Point(2.349, 0)),
        ]
        table = build_tied_nonsharing_table(taxis, requests, oracle, resolution_km=0.1)
        assert table.reviewer_tie_level(0, 0) == table.reviewer_tie_level(0, 1)

    def test_respects_thresholds_and_seats(self):
        oracle = EuclideanDistance()
        taxis = [Taxi(0, Point(0, 0), seats=1)]
        requests = [
            PassengerRequest(0, Point(50, 0), Point(51, 0)),
            PassengerRequest(1, Point(1, 0), Point(2, 0), passengers=3),
        ]
        config = DispatchConfig(passenger_threshold_km=10.0)
        table = build_tied_nonsharing_table(taxis, requests, oracle, config)
        assert table.proposer_prefs[0] == ()
        assert table.proposer_prefs[1] == ()

    def test_rejects_bad_resolution(self):
        with pytest.raises(PreferenceError):
            build_tied_nonsharing_table([], [], EuclideanDistance(), resolution_km=0.0)

    def test_kiraly_runs_on_dispatch_table(self):
        import numpy as np

        rng = np.random.default_rng(0)
        oracle = EuclideanDistance()
        taxis = [Taxi(i, Point(*rng.normal(0, 2, 2))) for i in range(6)]
        requests = [
            PassengerRequest(j, Point(*rng.normal(0, 2, 2)), Point(*rng.normal(0, 2, 2)))
            for j in range(9)
        ]
        table = build_tied_nonsharing_table(taxis, requests, oracle, resolution_km=0.5)
        matching = kiraly_max_stable(table)
        assert weakly_stable(table, matching)
        assert matching.size >= 1
