"""The paper's worked micro-examples (Figs. 1–3) as executable tests.

The published figures redact entity labels in our source text, so each
test reconstructs a concrete instance exhibiting exactly the behaviour
the prose describes, then checks the algorithms reproduce it.
"""

import numpy as np
import pytest

from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings,
    deferred_acceptance,
    is_stable,
    min_cost_matching,
)


class TestFigure1:
    """Two requests, two taxis: company efficiency vs. fairness.

    Schedule S1 pairs everyone with distances (2, 10) — total 12; S2
    pairs them with (4, 4) — total 8.  S2 wins on total taxi travel
    distance, yet in both schedules exactly one passenger and one taxi
    get their best partner, so fairness cannot separate them (the
    paper's motivation for stability as the fairness notion).
    """

    # cost[request][taxi] = pickup distance
    COSTS = np.array([[2.0, 4.0], [4.0, 10.0]])

    def test_s2_minimizes_total_distance(self):
        pairs = sorted(min_cost_matching(self.COSTS))
        assert pairs == [(0, 1), (1, 0)]  # S2
        total = sum(self.COSTS[r, c] for r, c in pairs)
        assert total == pytest.approx(8.0)
        s1_total = self.COSTS[0, 0] + self.COSTS[1, 1]
        assert s1_total == pytest.approx(12.0)

    def test_both_schedules_tie_on_best_partner_counts(self):
        # In S1 request 0 gets its best taxi (cost 2 < 4); in S2 request 1
        # does (4 < 10).  Symmetrically for taxis (columns).
        s1 = [(0, 0), (1, 1)]
        s2 = [(0, 1), (1, 0)]

        def best_partner_count(schedule):
            requests = sum(
                1 for r, c in schedule if self.COSTS[r, c] == min(self.COSTS[r])
            )
            taxis = sum(
                1 for r, c in schedule if self.COSTS[r, c] == min(self.COSTS[:, c])
            )
            return requests + taxis

        assert best_partner_count(s1) == best_partner_count(s2) == 2


class TestFigure2:
    """Algorithm 1's proposal/refusal trace.

    The prose: the first request is accepted; the second proposes to the
    same taxi, is refused, and falls to its dummy; the third displaces
    the first, which then wins its second choice.
    """

    @pytest.fixture()
    def table(self):
        return PreferenceTable(
            proposer_prefs={
                1: (100, 101),  # r1: t1 then t2
                2: (100,),      # r2: only t1 is acceptable
                3: (100, 101),
            },
            reviewer_prefs={
                100: (3, 1, 2),  # t1 prefers r3 over r1 over r2
                101: (1, 3),
            },
        )

    def test_final_matching(self, table):
        matching = deferred_acceptance(table)
        assert matching == Matching({1: 101, 3: 100})

    def test_r2_unserved_with_stats(self, table):
        matching, stats = deferred_acceptance(table, with_stats=True)
        assert matching.reviewer_of(2) is None
        # r1 proposes twice (t1 then, after displacement, t2); r2 once;
        # r3 once — at least four proposals and two refusals.
        assert stats.proposals >= 4
        assert stats.refusals >= 2

    def test_result_is_stable(self, table):
        assert is_stable(table, deferred_acceptance(table))


class TestFigure3:
    """Algorithm 2's BreakDispatch trace.

    Passenger-optimal: r1→tA, r2→tB, r3 unserved.  Breaking r1's match
    succeeds (tB prefers r1; freed tA prefers r2 over r1) producing the
    taxi-optimal matching; breaking r2 violates Rule 2; breaking r3 is
    blocked by Rule 3.  Exactly two stable matchings exist.
    """

    @pytest.fixture()
    def table(self):
        return PreferenceTable(
            proposer_prefs={
                1: (100, 101),  # r1: tA then tB
                2: (101, 100),  # r2: tB then tA
                3: (100, 101),
            },
            reviewer_prefs={
                100: (2, 1, 3),  # tA prefers r2 > r1 > r3
                101: (1, 2, 3),  # tB prefers r1 > r2 > r3
            },
        )

    def test_passenger_optimal(self, table):
        assert deferred_acceptance(table) == Matching({1: 100, 2: 101})

    def test_exactly_two_stable_matchings(self, table):
        matchings = all_stable_matchings(table)
        assert set(matchings) == {
            Matching({1: 100, 2: 101}),
            Matching({1: 101, 2: 100}),
        }

    def test_r3_unserved_in_all(self, table):
        # Theorem 2: unserved in the passenger-optimal matching means
        # unserved in every stable matching.
        for matching in all_stable_matchings(table):
            assert matching.reviewer_of(3) is None
