"""Unit tests for the bipartite matching baselines (MCBM / MMCM cores)."""

import itertools
import math

import networkx as nx
import numpy as np
import pytest

from repro.core import MatchingError
from repro.matching import (
    hopcroft_karp,
    matching_total_cost,
    maximum_matching_size,
    min_cost_matching,
    minimax_matching,
)


def brute_force_best(matrix, objective):
    """Best matching of maximum cardinality by exhaustive search."""
    matrix = np.asarray(matrix, dtype=float)
    n_rows, n_cols = matrix.shape
    best = None
    best_size = -1
    for k in range(min(n_rows, n_cols), -1, -1):
        for rows in itertools.permutations(range(n_rows), k):
            for cols in itertools.combinations(range(n_cols), k):
                for perm in itertools.permutations(cols):
                    pairs = list(zip(rows, perm))
                    if any(not math.isfinite(matrix[r, c]) for r, c in pairs):
                        continue
                    if best is None or objective(pairs) < objective(best):
                        best = pairs
                        best_size = k
        if best is not None:
            break
    return best, best_size


class TestHopcroftKarp:
    def test_matches_networkx_on_random_graphs(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n_left, n_right = int(rng.integers(1, 9)), int(rng.integers(1, 9))
            adjacency = [
                [v for v in range(n_right) if rng.random() < 0.4] for _ in range(n_left)
            ]
            graph = nx.Graph()
            graph.add_nodes_from((f"l{u}" for u in range(n_left)), bipartite=0)
            graph.add_nodes_from((f"r{v}" for v in range(n_right)), bipartite=1)
            for u, nbrs in enumerate(adjacency):
                for v in nbrs:
                    graph.add_edge(f"l{u}", f"r{v}")
            expected = len(nx.bipartite.maximum_matching(graph, top_nodes=[f"l{u}" for u in range(n_left)])) // 2
            assert maximum_matching_size(n_left, n_right, adjacency) == expected

    def test_returns_valid_matching(self):
        matching = hopcroft_karp(3, 3, [[0, 1], [0], [2]])
        assert len(set(matching.values())) == len(matching)
        assert matching[1] == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            hopcroft_karp(2, 2, [[0]])
        with pytest.raises(IndexError):
            hopcroft_karp(1, 1, [[5]])


class TestMinCostMatching:
    def test_optimal_on_random_instances(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            matrix = rng.uniform(0, 10, size=(int(rng.integers(1, 5)), int(rng.integers(1, 5))))
            pairs = min_cost_matching(matrix)
            expected, size = brute_force_best(matrix, lambda ps: sum(matrix[r, c] for r, c in ps))
            assert len(pairs) == size
            got_cost = matching_total_cost(matrix, pairs)
            want_cost = sum(matrix[r, c] for r, c in expected)
            assert got_cost == pytest.approx(want_cost)

    def test_forbidden_pairs_excluded(self):
        matrix = [[math.inf, 1.0], [2.0, math.inf]]
        pairs = sorted(min_cost_matching(matrix))
        assert pairs == [(0, 1), (1, 0)]

    def test_all_forbidden_matches_nothing(self):
        assert min_cost_matching([[math.inf]]) == []

    def test_empty_matrix(self):
        assert min_cost_matching(np.zeros((0, 0))) == []

    def test_rejects_bad_dimensions(self):
        with pytest.raises(MatchingError):
            min_cost_matching(np.zeros(3))

    def test_forbidden_never_sacrifices_cardinality(self):
        # One forbidden entry with an expensive detour: cardinality first.
        matrix = [[1.0, math.inf], [1.0, 100.0]]
        pairs = sorted(min_cost_matching(matrix))
        assert pairs == [(0, 0), (1, 1)]


class TestMinimaxMatching:
    def test_optimal_on_random_instances(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            matrix = rng.uniform(0, 10, size=(int(rng.integers(1, 5)), int(rng.integers(1, 5))))
            pairs = minimax_matching(matrix)
            expected, size = brute_force_best(
                matrix, lambda ps: max((matrix[r, c] for r, c in ps), default=0.0)
            )
            assert len(pairs) == size
            got = max((matrix[r, c] for r, c in pairs), default=0.0)
            want = max((matrix[r, c] for r, c in expected), default=0.0)
            assert got == pytest.approx(want)

    def test_minimax_bound_not_worse_than_mincost(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            matrix = rng.uniform(0, 10, size=(4, 4))
            minimax_pairs = minimax_matching(matrix)
            mincost_pairs = min_cost_matching(matrix)
            assert max(matrix[r, c] for r, c in minimax_pairs) <= max(
                matrix[r, c] for r, c in mincost_pairs
            ) + 1e-9

    def test_all_forbidden(self):
        assert minimax_matching([[math.inf, math.inf]]) == []

    def test_empty(self):
        assert minimax_matching(np.zeros((0, 3))) == []


class TestMatchingTotalCost:
    def test_sums_costs(self):
        assert matching_total_cost([[1.0, 2.0], [3.0, 4.0]], [(0, 0), (1, 1)]) == 5.0

    def test_rejects_forbidden(self):
        with pytest.raises(MatchingError):
            matching_total_cost([[math.inf]], [(0, 0)])
