"""The aligned-preference uniqueness theorem, and its failure under
driver heterogeneity.

A structural finding of this reproduction: with the paper's preference
model, a taxi's score for a request is the passenger's score minus a
*request-only* term (α·trip length).  Around any candidate trading
cycle, summing the passengers' strict improvement inequalities and the
taxis' strict improvement inequalities makes the trip terms cancel and
yields Σ D(t_i, s_i) < Σ D(t_i, s_i) — a contradiction.  Hence no
rotation exists, the stable lattice is a single point, and NSTD-P
coincides with NSTD-T on every instance.

Heterogeneous per-driver α (this library's extension) breaks the
alignment and admits genuine lattices.
"""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, PreferenceError, Taxi
from repro.geometry import EuclideanDistance, ManhattanDistance, Point
from repro.matching import all_stable_matchings, build_nonsharing_table


def random_market(seed, n_taxis, n_requests, oracle_cls=EuclideanDistance):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests, oracle_cls()


class TestHomogeneousAlphaUniqueness:
    @pytest.mark.parametrize("seed", range(25))
    def test_unique_stable_matching_square_market(self, seed):
        taxis, requests, oracle = random_market(seed, 6, 6)
        table = build_nonsharing_table(taxis, requests, oracle, DispatchConfig())
        assert len(all_stable_matchings(table)) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_unique_with_thresholds_and_unequal_sides(self, seed):
        taxis, requests, oracle = random_market(seed, 4, 8)
        config = DispatchConfig(passenger_threshold_km=5.0, taxi_threshold_km=5.0)
        table = build_nonsharing_table(taxis, requests, oracle, config)
        assert len(all_stable_matchings(table)) == 1

    @pytest.mark.parametrize("alpha", [0.0, 0.5, 2.0])
    def test_unique_for_any_alpha(self, alpha):
        taxis, requests, oracle = random_market(3, 5, 5)
        table = build_nonsharing_table(taxis, requests, oracle, DispatchConfig(alpha=alpha))
        assert len(all_stable_matchings(table)) == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_unique_under_manhattan_metric(self, seed):
        taxis, requests, oracle = random_market(seed, 5, 5, ManhattanDistance)
        table = build_nonsharing_table(taxis, requests, oracle, DispatchConfig())
        assert len(all_stable_matchings(table)) == 1


class TestHeterogeneousAlpha:
    def test_can_produce_multiple_stable_matchings(self):
        # Seed 1 of this construction is a known two-point lattice (see
        # examples/all_stable_matchings_tour.py).
        rng = np.random.default_rng(1)
        oracle = EuclideanDistance()
        n = 8
        taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n)]
        requests = [
            PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
            for j in range(n)
        ]
        alphas = {i: float(rng.uniform(0.0, 4.0)) for i in range(n)}
        config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
        table = build_nonsharing_table(taxis, requests, oracle, config, alpha_by_taxi=alphas)
        assert len(all_stable_matchings(table)) == 2

    def test_missing_ids_fall_back_to_config_alpha(self):
        taxis, requests, oracle = random_market(0, 3, 3)
        config = DispatchConfig(alpha=1.0)
        with_empty = build_nonsharing_table(
            taxis, requests, oracle, config, alpha_by_taxi={}
        )
        without = build_nonsharing_table(taxis, requests, oracle, config)
        assert with_empty.reviewer_prefs == without.reviewer_prefs

    def test_negative_alpha_rejected(self):
        taxis, requests, oracle = random_market(0, 2, 2)
        with pytest.raises(PreferenceError):
            build_nonsharing_table(
                taxis, requests, oracle, DispatchConfig(), alpha_by_taxi={0: -1.0}
            )

    def test_alpha_zero_driver_ranks_by_pickup_distance(self):
        oracle = EuclideanDistance()
        taxi = Taxi(0, Point(0, 0))
        requests = [
            PassengerRequest(0, Point(1, 0), Point(50, 0)),  # long fare, farther? no: 1 km away
            PassengerRequest(1, Point(0.5, 0), Point(0.6, 0)),  # tiny fare, nearest
        ]
        table = build_nonsharing_table(
            [taxi], requests, oracle, DispatchConfig(alpha=1.0), alpha_by_taxi={0: 0.0}
        )
        # With alpha 0 the driver ignores fares and prefers the nearest.
        assert table.reviewer_prefs[0] == (1, 0)
