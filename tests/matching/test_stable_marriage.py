"""Unit tests for classic Gale–Shapley and the Theorem 1 completion."""

import random

import pytest

from repro.core import PreferenceError
from repro.matching import (
    complete_with_dummies,
    deferred_acceptance,
    gale_shapley,
    project_completed_matching,
)
from tests.support import random_table


class TestGaleShapley:
    def test_textbook_example(self):
        proposer_prefs = {0: [10, 11, 12], 1: [11, 10, 12], 2: [10, 11, 12]}
        reviewer_prefs = {10: [1, 0, 2], 11: [0, 1, 2], 12: [0, 1, 2]}
        assert gale_shapley(proposer_prefs, reviewer_prefs) == {0: 10, 1: 11, 2: 12}

    def test_single_pair(self):
        assert gale_shapley({0: [10]}, {10: [0]}) == {0: 10}

    def test_rejects_unequal_sides(self):
        with pytest.raises(PreferenceError):
            gale_shapley({0: [10], 1: [10]}, {10: [0, 1]})

    def test_rejects_incomplete_lists(self):
        with pytest.raises(PreferenceError):
            gale_shapley({0: [10], 1: [10]}, {10: [0, 1], 11: [0, 1]})

    def test_result_is_perfect_matching(self):
        rng = random.Random(2)
        n = 8
        proposer_prefs = {p: rng.sample(range(10, 10 + n), n) for p in range(n)}
        reviewer_prefs = {r: rng.sample(range(n), n) for r in range(10, 10 + n)}
        matching = gale_shapley(proposer_prefs, reviewer_prefs)
        assert sorted(matching) == list(range(n))
        assert sorted(matching.values()) == list(range(10, 10 + n))

    def test_no_blocking_pair(self):
        rng = random.Random(3)
        n = 7
        proposer_prefs = {p: rng.sample(range(10, 10 + n), n) for p in range(n)}
        reviewer_prefs = {r: rng.sample(range(n), n) for r in range(10, 10 + n)}
        matching = gale_shapley(proposer_prefs, reviewer_prefs)
        p_rank = {p: {r: k for k, r in enumerate(prefs)} for p, prefs in proposer_prefs.items()}
        r_rank = {r: {p: k for k, p in enumerate(prefs)} for r, prefs in reviewer_prefs.items()}
        partner_of_reviewer = {r: p for p, r in matching.items()}
        for p in range(n):
            for r in range(10, 10 + n):
                if matching[p] == r:
                    continue
                blocks = (
                    p_rank[p][r] < p_rank[p][matching[p]]
                    and r_rank[r][p] < r_rank[r][partner_of_reviewer[r]]
                )
                assert not blocks


class TestTheoremOneCompletion:
    def test_completion_has_square_shape(self):
        rng = random.Random(4)
        table = random_table(rng, 3, 5)
        proposer_prefs, reviewer_prefs = complete_with_dummies(table)
        assert len(proposer_prefs) == len(reviewer_prefs) == 3 + 5
        size = 3 + 5
        assert all(len(prefs) == size for prefs in proposer_prefs.values())
        assert all(len(prefs) == size for prefs in reviewer_prefs.values())

    def test_projection_matches_thresholded_algorithm(self):
        # Theorem 1's construction: GS on the completed market, projected
        # back, must equal Algorithm 1 on the thresholded market.
        rng = random.Random(5)
        for _ in range(60):
            table = random_table(rng, rng.randint(1, 5), rng.randint(1, 5))
            completed = gale_shapley(*complete_with_dummies(table))
            projected = project_completed_matching(completed)
            assert projected == deferred_acceptance(table)

    def test_projection_drops_dummy_pairs(self):
        rng = random.Random(6)
        table = random_table(rng, 2, 4, acceptance=0.4)
        completed = gale_shapley(*complete_with_dummies(table))
        projected = project_completed_matching(completed)
        real_proposers = set(table.proposer_prefs)
        real_reviewers = set(table.reviewer_prefs)
        for p, r in projected.pairs:
            assert p in real_proposers
            assert r in real_reviewers
