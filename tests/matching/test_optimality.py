"""Unit tests for optimality selection (Property 2, Section IV-D)."""

import random

import pytest

from repro.core import MatchingError, PassengerRequest
from repro.geometry import EuclideanDistance, Point
from repro.matching import (
    PreferenceTable,
    all_stable_matchings,
    company_optimal,
    company_revenue,
    passenger_optimal,
    rank_profile,
    taxi_optimal,
    taxi_optimal_exact,
)
from tests.support import random_table


@pytest.fixture()
def latin_square_table():
    return PreferenceTable(
        proposer_prefs={
            0: (100, 101, 102),
            1: (101, 102, 100),
            2: (102, 100, 101),
        },
        reviewer_prefs={
            100: (1, 2, 0),
            101: (2, 0, 1),
            102: (0, 1, 2),
        },
    )


class TestDuality:
    def test_passenger_optimal_is_taxi_pessimal(self, latin_square_table):
        table = latin_square_table
        p_best = passenger_optimal(table)
        t_best = taxi_optimal(table)
        p_rank_p, p_rank_t = rank_profile(table, p_best)
        t_rank_p, t_rank_t = rank_profile(table, t_best)
        # Property 2: among all stable matchings the passenger-optimal one
        # gives requests their best ranks and taxis their worst.
        assert p_rank_p < t_rank_p
        assert p_rank_t > t_rank_t

    def test_fast_path_equals_exact(self):
        rng = random.Random(3)
        for _ in range(120):
            table = random_table(rng, rng.randint(1, 6), rng.randint(1, 6))
            assert taxi_optimal(table) == taxi_optimal_exact(table)

    def test_rank_extremes_over_lattice(self, latin_square_table):
        table = latin_square_table
        lattice = all_stable_matchings(table)
        p_ranks = [rank_profile(table, m)[0] for m in lattice]
        t_ranks = [rank_profile(table, m)[1] for m in lattice]
        assert rank_profile(table, passenger_optimal(table))[0] == min(p_ranks)
        assert rank_profile(table, taxi_optimal(table))[1] == min(t_ranks)

    def test_rank_profile_empty(self):
        table = PreferenceTable(proposer_prefs={0: ()}, reviewer_prefs={})
        assert rank_profile(table, passenger_optimal(table)) == (0.0, 0.0)


class TestCompanySelection:
    def _requests(self):
        return [
            PassengerRequest(0, Point(0, 0), Point(5, 0)),
            PassengerRequest(1, Point(1, 0), Point(1, 3)),
            PassengerRequest(2, Point(2, 0), Point(2, 1)),
        ]

    def test_company_revenue_sums_served_trips(self):
        oracle = EuclideanDistance()
        requests = self._requests()
        from repro.matching import Matching

        revenue = company_revenue(Matching({0: 100, 2: 101}), requests, oracle)
        assert revenue == pytest.approx(5.0 + 1.0)

    def test_company_optimal_ties_on_default_objective(self, latin_square_table):
        # All stable matchings serve the same requests (Theorem 2), so
        # revenue is constant across the lattice.
        oracle = EuclideanDistance()
        requests = self._requests()
        best, value = company_optimal(latin_square_table, requests, oracle)
        assert value == pytest.approx(sum(r.trip_distance(oracle) for r in requests))

    def test_company_optimal_custom_objective(self, latin_square_table):
        # A taxi-centric objective must pick the taxi-optimal matching.
        table = latin_square_table

        def objective(matching):
            return -rank_profile(table, matching)[1]

        best, _ = company_optimal(table, self._requests(), EuclideanDistance(), objective=objective)
        assert best == taxi_optimal(table)

    def test_empty_market_raises(self):
        table = PreferenceTable(proposer_prefs={}, reviewer_prefs={})
        # One (empty) stable matching exists, so selection still works.
        best, value = company_optimal(table, [], EuclideanDistance())
        assert best.size == 0 and value == 0.0

    def test_taxi_optimal_exact_requires_matchings(self):
        table = PreferenceTable(proposer_prefs={}, reviewer_prefs={})
        # Even an empty market has the empty stable matching.
        assert taxi_optimal_exact(table).size == 0
