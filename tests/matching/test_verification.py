"""Unit tests for the stability verifier (Definition 1)."""

import pytest

from repro.core import UnstableMatchingError
from repro.matching import (
    Matching,
    PreferenceTable,
    assert_stable,
    find_blocking_pairs,
    is_stable,
    is_valid_matching,
)


@pytest.fixture()
def square_table():
    # Two proposers, two reviewers, everyone acceptable.
    return PreferenceTable(
        proposer_prefs={0: (100, 101), 1: (100, 101)},
        reviewer_prefs={100: (0, 1), 101: (0, 1)},
    )


class TestBlockingPairs:
    def test_stable_matching_has_none(self, square_table):
        assert find_blocking_pairs(square_table, Matching({0: 100, 1: 101})) == []

    def test_detects_classic_block(self, square_table):
        # 0 and 100 prefer each other over their partners.
        blocking = find_blocking_pairs(square_table, Matching({0: 101, 1: 100}))
        assert (0, 100) in blocking

    def test_unmatched_acceptable_pair_blocks(self):
        # Dummy semantics: both would rather be together than unmatched.
        table = PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: (0,)})
        assert find_blocking_pairs(table, Matching({})) == [(0, 100)]

    def test_unmatched_reviewer_blocks_with_badly_matched_proposer(self, square_table):
        # 1 matched to its second choice while 100 sits free.
        blocking = find_blocking_pairs(square_table, Matching({1: 101}))
        assert (1, 100) in blocking

    def test_unacceptable_pair_never_blocks(self):
        table = PreferenceTable(
            proposer_prefs={0: (), 1: (100,)}, reviewer_prefs={100: (1,)}
        )
        assert find_blocking_pairs(table, Matching({1: 100})) == []

    def test_results_sorted(self, square_table):
        blocking = find_blocking_pairs(square_table, Matching({}))
        assert blocking == sorted(blocking)


class TestValidity:
    def test_unknown_ids_invalid(self, square_table):
        assert not is_valid_matching(square_table, Matching({9: 100}))
        assert not is_valid_matching(square_table, Matching({0: 999}))

    def test_unacceptable_pair_invalid(self):
        table = PreferenceTable(
            proposer_prefs={0: (), 1: (100,)}, reviewer_prefs={100: (1,)}
        )
        assert not is_valid_matching(table, Matching({0: 100}))


class TestAssertStable:
    def test_passes_on_stable(self, square_table):
        assert_stable(square_table, Matching({0: 100, 1: 101}))

    def test_raises_with_blocking_pairs_attached(self, square_table):
        with pytest.raises(UnstableMatchingError) as excinfo:
            assert_stable(square_table, Matching({}))
        assert excinfo.value.blocking_pairs

    def test_raises_on_invalid(self, square_table):
        with pytest.raises(UnstableMatchingError, match="unacceptable or unknown"):
            assert_stable(square_table, Matching({0: 999}))

    def test_is_stable_shortcut(self, square_table):
        assert is_stable(square_table, Matching({0: 100, 1: 101}))
        assert not is_stable(square_table, Matching({0: 101, 1: 100}))
