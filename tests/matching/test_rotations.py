"""Unit tests for the rotation machinery (complete markets)."""

import random

import pytest

from repro.core import MatchingError
from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings,
    all_stable_matchings_by_rotations,
    deferred_acceptance,
    eliminate_rotation,
    exposed_rotations,
    is_stable,
    taxi_optimal,
)
from tests.support import random_table


@pytest.fixture()
def latin_square_table():
    return PreferenceTable(
        proposer_prefs={
            0: (100, 101, 102),
            1: (101, 102, 100),
            2: (102, 100, 101),
        },
        reviewer_prefs={
            100: (1, 2, 0),
            101: (2, 0, 1),
            102: (0, 1, 2),
        },
    )


class TestExposedRotations:
    def test_latin_square_has_one_big_rotation(self, latin_square_table):
        table = latin_square_table
        optimal = deferred_acceptance(table)
        rotations = exposed_rotations(table, optimal)
        assert len(rotations) == 1
        (rotation,) = rotations
        assert len(rotation) == 3
        # Normalized to start at the smallest proposer.
        assert rotation[0][0] == 0

    def test_taxi_optimal_exposes_nothing(self, latin_square_table):
        table = latin_square_table
        assert exposed_rotations(table, taxi_optimal(table)) == []

    def test_unique_matching_market(self):
        table = PreferenceTable(
            proposer_prefs={0: (100, 101), 1: (101, 100)},
            reviewer_prefs={100: (0, 1), 101: (1, 0)},
        )
        assert exposed_rotations(table, deferred_acceptance(table)) == []

    def test_requires_complete_market(self):
        table = PreferenceTable(proposer_prefs={0: (100,), 1: ()}, reviewer_prefs={100: (0,)})
        with pytest.raises(MatchingError):
            exposed_rotations(table, deferred_acceptance(table))


class TestEliminate:
    def test_elimination_moves_down_the_lattice(self, latin_square_table):
        table = latin_square_table
        optimal = deferred_acceptance(table)
        (rotation,) = exposed_rotations(table, optimal)
        produced = eliminate_rotation(optimal, rotation)
        assert produced != optimal
        assert is_stable(table, produced)
        # Every rotating proposer got strictly worse.
        for proposer, old_reviewer in rotation:
            new_reviewer = produced.reviewer_of(proposer)
            assert table.proposer_prefers(proposer, old_reviewer, new_reviewer)

    def test_rejects_stale_rotation(self, latin_square_table):
        table = latin_square_table
        optimal = deferred_acceptance(table)
        (rotation,) = exposed_rotations(table, optimal)
        moved = eliminate_rotation(optimal, rotation)
        with pytest.raises(MatchingError):
            eliminate_rotation(moved, rotation)

    def test_rejects_tiny_rotation(self):
        with pytest.raises(MatchingError):
            eliminate_rotation(Matching({0: 100}), ((0, 100),))


class TestEnumerationCrossValidation:
    def test_matches_algorithm_2_on_random_complete_markets(self):
        rng = random.Random(3)
        for _ in range(120):
            n = rng.randint(1, 6)
            table = random_table(rng, n, n, acceptance=1.0)
            assert set(all_stable_matchings_by_rotations(table)) == set(
                all_stable_matchings(table)
            )

    def test_first_element_is_proposer_optimal(self, latin_square_table):
        matchings = all_stable_matchings_by_rotations(latin_square_table)
        assert matchings[0] == deferred_acceptance(latin_square_table)
        assert len(matchings) == 3
