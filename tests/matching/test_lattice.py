"""Unit tests for the stable-matching lattice operations."""

import random

import pytest

from repro.core import MatchingError
from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings,
    deferred_acceptance,
    is_stable,
    join,
    lattice_extremes,
    median_stable_matching,
    meet,
    taxi_optimal,
)
from tests.support import random_table


@pytest.fixture()
def latin_square_table():
    return PreferenceTable(
        proposer_prefs={
            0: (100, 101, 102),
            1: (101, 102, 100),
            2: (102, 100, 101),
        },
        reviewer_prefs={
            100: (1, 2, 0),
            101: (2, 0, 1),
            102: (0, 1, 2),
        },
    )


class TestJoinMeet:
    def test_join_of_extremes_is_proposer_optimal(self, latin_square_table):
        table = latin_square_table
        matchings = all_stable_matchings(table)
        top = deferred_acceptance(table)
        for matching in matchings:
            assert join(table, top, matching) == top
            assert meet(table, matching, top) == matching

    def test_join_and_meet_are_stable(self):
        rng = random.Random(0)
        checked = 0
        while checked < 10:
            table = random_table(rng, rng.randint(2, 6), rng.randint(2, 6))
            matchings = all_stable_matchings(table)
            if len(matchings) < 2:
                continue
            checked += 1
            for a in matchings:
                for b in matchings:
                    assert is_stable(table, join(table, a, b))
                    assert is_stable(table, meet(table, a, b))

    def test_commutative(self, latin_square_table):
        table = latin_square_table
        a, b = all_stable_matchings(table)[:2]
        assert join(table, a, b) == join(table, b, a)
        assert meet(table, a, b) == meet(table, b, a)

    def test_mismatched_matched_sets_rejected(self, latin_square_table):
        with pytest.raises(MatchingError):
            join(latin_square_table, Matching({0: 100}), Matching({1: 100}))


class TestMedian:
    def test_median_of_latin_square_is_the_middle_matching(self, latin_square_table):
        table = latin_square_table
        median = median_stable_matching(table)
        # The three matchings give proposer 0 partners 100/101/102 in
        # preference order 100 > 101 > 102; the median partner is 101.
        assert median == Matching({0: 101, 1: 102, 2: 100})
        assert is_stable(table, median)

    def test_median_is_always_stable(self):
        rng = random.Random(1)
        checked = 0
        while checked < 15:
            table = random_table(rng, rng.randint(2, 6), rng.randint(2, 6))
            matchings = all_stable_matchings(table)
            if len(matchings) < 2:
                continue
            checked += 1
            assert is_stable(table, median_stable_matching(table, matchings))

    def test_median_of_unique_matching_is_it(self):
        table = PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: (0,)})
        assert median_stable_matching(table) == Matching({0: 100})

    def test_requires_matchings(self):
        table = PreferenceTable(proposer_prefs={}, reviewer_prefs={})
        with pytest.raises(MatchingError):
            median_stable_matching(table, [])


class TestExtremes:
    def test_extremes_match_the_named_algorithms(self):
        rng = random.Random(2)
        for _ in range(25):
            table = random_table(rng, rng.randint(1, 6), rng.randint(1, 6))
            top, bottom = lattice_extremes(table)
            assert top == deferred_acceptance(table)
            assert bottom == taxi_optimal(table)
