"""Unit tests for preference construction (Section IV-A)."""

import pytest

from repro.core import DispatchConfig, PassengerRequest, PreferenceError, Taxi
from repro.geometry import EuclideanDistance, Point
from repro.matching import PreferenceTable, build_nonsharing_table, passenger_score, taxi_score


@pytest.fixture()
def oracle():
    return EuclideanDistance()


class TestScores:
    def test_passenger_score_is_pickup_distance(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        request = PassengerRequest(1, Point(3, 4), Point(10, 0))
        assert passenger_score(taxi, request, oracle) == pytest.approx(5.0)

    def test_taxi_score_trades_pickup_against_fare(self, oracle):
        taxi = Taxi(0, Point(0, 0))
        request = PassengerRequest(1, Point(3, 4), Point(3, 10))  # trip 6 km
        assert taxi_score(taxi, request, oracle, alpha=1.0) == pytest.approx(5.0 - 6.0)
        assert taxi_score(taxi, request, oracle, alpha=0.5) == pytest.approx(5.0 - 3.0)


class TestBuildNonsharing:
    def test_passenger_prefers_nearest_taxi(self, oracle):
        taxis = [Taxi(0, Point(5, 0)), Taxi(1, Point(1, 0)), Taxi(2, Point(3, 0))]
        requests = [PassengerRequest(0, Point(0, 0), Point(0, 5))]
        table = build_nonsharing_table(taxis, requests, oracle)
        assert table.proposer_prefs[0] == (1, 2, 0)

    def test_taxi_prefers_profitable_requests(self, oracle):
        # Same pickup distance; the longer trip wins for the driver.
        taxis = [Taxi(0, Point(0, 0))]
        requests = [
            PassengerRequest(0, Point(1, 0), Point(2, 0)),   # trip 1 km
            PassengerRequest(1, Point(-1, 0), Point(-9, 0)),  # trip 8 km
        ]
        table = build_nonsharing_table(taxis, requests, oracle)
        assert table.reviewer_prefs[0] == (1, 0)

    def test_passenger_threshold_inserts_dummy(self, oracle):
        taxis = [Taxi(0, Point(1, 0)), Taxi(1, Point(50, 0))]
        requests = [PassengerRequest(0, Point(0, 0), Point(0, 5))]
        config = DispatchConfig(passenger_threshold_km=10.0)
        table = build_nonsharing_table(taxis, requests, oracle, config)
        assert table.proposer_prefs[0] == (0,)
        # Consistency: the far taxi must not list the request either.
        assert table.reviewer_prefs[1] == ()

    def test_taxi_threshold_inserts_dummy(self, oracle):
        taxis = [Taxi(0, Point(10, 0))]
        requests = [
            PassengerRequest(0, Point(0, 0), Point(0.5, 0)),  # score 10 - 0.5 = 9.5
            PassengerRequest(1, Point(9, 0), Point(9, 8)),    # score 1 - 8 = -7
        ]
        config = DispatchConfig(taxi_threshold_km=0.0)
        table = build_nonsharing_table(taxis, requests, oracle, config)
        assert table.reviewer_prefs[0] == (1,)
        assert table.proposer_prefs[0] == ()

    def test_seat_infeasibility_is_mutual(self, oracle):
        taxis = [Taxi(0, Point(0, 0), seats=2)]
        requests = [PassengerRequest(0, Point(1, 0), Point(2, 0), passengers=3)]
        table = build_nonsharing_table(taxis, requests, oracle)
        assert table.proposer_prefs[0] == ()
        assert table.reviewer_prefs[0] == ()

    def test_scores_recorded(self, oracle):
        taxis = [Taxi(0, Point(1, 0))]
        requests = [PassengerRequest(0, Point(0, 0), Point(0, 2))]
        table = build_nonsharing_table(taxis, requests, oracle)
        assert table.proposer_scores[(0, 0)] == pytest.approx(1.0)
        assert table.reviewer_scores[(0, 0)] == pytest.approx(1.0 - 2.0)

    def test_duplicate_ids_rejected(self, oracle):
        taxis = [Taxi(0, Point(0, 0)), Taxi(0, Point(1, 1))]
        with pytest.raises(PreferenceError):
            build_nonsharing_table(taxis, [], oracle)


class TestPreferenceTable:
    def test_mutual_consistency_enforced(self):
        with pytest.raises(PreferenceError):
            PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: ()})

    def test_duplicate_entries_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceTable(
                proposer_prefs={0: (100, 100)}, reviewer_prefs={100: (0, 0)}
            )

    def test_rank_lookup(self):
        table = PreferenceTable(
            proposer_prefs={0: (101, 100), 1: (100,)},
            reviewer_prefs={100: (1, 0), 101: (0,)},
        )
        assert table.proposer_rank(0, 101) == 0
        assert table.proposer_rank(0, 100) == 1
        assert table.reviewer_rank(100, 1) == 0
        assert table.proposer_rank(1, 101) is None

    def test_prefers_semantics_with_dummies(self):
        table = PreferenceTable(
            proposer_prefs={0: (101, 100)},
            reviewer_prefs={100: (0,), 101: (0,)},
        )
        assert table.proposer_prefers(0, 101, 100)
        assert not table.proposer_prefers(0, 100, 101)
        # Any acceptable partner beats an unacceptable (dummy-side) one.
        assert table.proposer_prefers(0, 100, 999)
        assert not table.proposer_prefers(0, 999, 100)

    def test_reversed_swaps_roles(self):
        table = PreferenceTable(
            proposer_prefs={0: (101, 100)},
            reviewer_prefs={100: (0,), 101: (0,)},
            proposer_scores={(0, 101): 1.0, (0, 100): 2.0},
            reviewer_scores={(0, 101): -1.0, (0, 100): -2.0},
        )
        reverse = table.reversed()
        assert reverse.proposer_prefs == {100: (0,), 101: (0,)}
        assert reverse.reviewer_prefs == {0: (101, 100)}
        assert reverse.proposer_scores[(101, 0)] == -1.0
        assert reverse.reviewer_scores[(100, 0)] == 2.0
        # Reversing twice restores the original orientation.
        assert reverse.reversed().proposer_prefs == table.proposer_prefs

    def test_validate_false_skips_consistency_check(self):
        # The vectorized builders emit consistent-by-construction tables
        # and opt out of the O(pairs) check; the flag must actually skip it.
        inconsistent = PreferenceTable(
            proposer_prefs={0: (100,)}, reviewer_prefs={100: ()}, validate=False
        )
        assert inconsistent.proposer_prefs[0] == (100,)
        with pytest.raises(PreferenceError):
            PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: ()})

    def test_reversed_seeds_rank_caches(self):
        table = PreferenceTable(
            proposer_prefs={0: (101, 100)},
            reviewer_prefs={100: (0,), 101: (0,)},
        )
        # Force both caches, then reverse: the swapped table must reuse
        # them instead of rebuilding lazily.
        assert table.proposer_rank(0, 100) == 1
        assert table.reviewer_rank(101, 0) == 0
        reverse = table.reversed()
        assert reverse._proposer_rank_cache is table._reviewer_rank_cache
        assert reverse._reviewer_rank_cache is table._proposer_rank_cache
        assert reverse.proposer_rank(100, 0) == 0
