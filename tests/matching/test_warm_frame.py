"""Unit tests for the warm frame solver (``repro.matching.warm_frame``).

The sweeping bit-identity guarantees live in
``tests/property/test_warm_start_properties.py``; these tests pin the
module's *contracts* one by one — address-based retention, matched-row
presentation, fallback triggers, the new-trip callback — so a failure
names the broken rule instead of just "the matching changed".
"""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.core.errors import WarmStartError
from repro.geometry import EuclideanDistance, Point
from repro.matching import build_nonsharing_arrays, passenger_optimal
from repro.matching.warm_frame import (
    frame_state_from_cold,
    request_trips,
    warm_frame_solve,
)

ORACLE = EuclideanDistance()
CONFIG = DispatchConfig()
# Leaves survivors on *both* sides with the frames below (an
# unthresholded market always exhausts its short side), which the
# retention tests rely on.
CONFIG_THRESH = DispatchConfig(passenger_threshold_km=1.0, taxi_threshold_km=2.0)


def _frame(n_taxis=4, n_requests=4, seed=3, spread=1.5):
    rng = np.random.default_rng(seed)
    taxis = [
        Taxi(i, Point(*(float(c) for c in rng.normal(0.0, spread, 2))))
        for i in range(n_taxis)
    ]
    requests = [
        PassengerRequest(
            j,
            Point(*(float(c) for c in rng.normal(0.0, spread, 2))),
            Point(*(float(c) for c in rng.normal(0.0, spread, 2))),
        )
        for j in range(n_requests)
    ]
    return taxis, requests


def _seed_state(taxis, requests, config=CONFIG):
    arrays = build_nonsharing_arrays(taxis, requests, ORACLE, config)
    matching = passenger_optimal(arrays)
    trips = request_trips(requests, ORACLE)
    return matching, frame_state_from_cold(taxis, requests, matching, trip=trips)


class TestRetentionByAddress:
    def test_same_objects_are_retained(self):
        taxis, requests = _frame(6, 5, seed=2)
        matching, state = _seed_state(taxis, requests, CONFIG_THRESH)
        # Next frame: the unmatched survivors, as the same objects.
        matched_r = {p for p, _ in matching.pairs}
        matched_t = {t for _, t in matching.pairs}
        next_requests = [r for r in requests if r.request_id not in matched_r]
        next_taxis = [t for t in taxis if t.taxi_id not in matched_t]
        assert next_taxis and next_requests
        _, _, stats, _ = warm_frame_solve(
            state, next_taxis, next_requests, ORACLE, CONFIG_THRESH
        )
        assert stats.retained_taxis == len(next_taxis)
        assert stats.retained_requests == len(next_requests)
        assert stats.pairs_scored == 0

    def test_rebuilt_equal_objects_classify_as_new(self):
        # Equality is not identity: a caller that rebuilds its entities
        # each frame soundly degrades to all-new (a cold-sized build),
        # never to a wrong answer.
        taxis, requests = _frame(6, 5, seed=2)
        matching, state = _seed_state(taxis, requests, CONFIG_THRESH)
        matched_r = {p for p, _ in matching.pairs}
        matched_t = {t for _, t in matching.pairs}
        clones_r = [
            PassengerRequest(r.request_id, r.pickup, r.dropoff, r.request_time_s, r.passengers)
            for r in requests
            if r.request_id not in matched_r
        ]
        clones_t = [
            Taxi(t.taxi_id, t.location, t.seats) for t in taxis if t.taxi_id not in matched_t
        ]
        assert clones_t and clones_r
        _, _, stats, _ = warm_frame_solve(state, clones_t, clones_r, ORACLE, CONFIG_THRESH)
        assert stats.retained_taxis == 0
        assert stats.retained_requests == 0
        assert stats.pairs_scored == stats.full_pairs

    def test_matched_entity_re_presented_is_new(self):
        # A matched entity's object can legally reappear (a taxi that
        # finished a trip within one frame and did not move); holding
        # its old address must not classify it as retained, because the
        # stability invariant only covers previously *unmatched* pairs.
        taxis, requests = _frame(6, 5, seed=2)
        matching, state = _seed_state(taxis, requests, CONFIG_THRESH)
        assert matching.pairs
        _, _, stats, _ = warm_frame_solve(
            state, list(taxis), list(requests), ORACLE, CONFIG_THRESH
        )
        assert stats.retained_taxis == len(taxis) - len({t for _, t in matching.pairs})
        assert stats.retained_requests == len(requests) - len(
            {p for p, _ in matching.pairs}
        )


class TestSolveOutputs:
    def test_matching_identical_to_cold_and_rows_aligned(self):
        taxis, requests = _frame(5, 6, seed=11)
        _, state = _seed_state(taxis, requests)
        new_taxis, new_requests = _frame(4, 5, seed=12)
        new_taxis = [Taxi(t.taxi_id + 10, t.location, t.seats) for t in new_taxis]
        new_requests = [
            PassengerRequest(r.request_id + 10, r.pickup, r.dropoff) for r in new_requests
        ]
        matching, matched_rows, _, _ = warm_frame_solve(
            state, new_taxis, new_requests, ORACLE, CONFIG
        )
        cold = passenger_optimal(build_nonsharing_arrays(new_taxis, new_requests, ORACLE, CONFIG))
        assert matching.pairs == cold.pairs
        t_rows, r_rows = matched_rows
        # Rows index the *presented* sequences, sorted by request id —
        # exactly the order the dispatcher emits assignments in.
        pairs = [
            (new_requests[r].request_id, new_taxis[t].taxi_id)
            for t, r in zip(t_rows.tolist(), r_rows.tolist())
        ]
        assert pairs == sorted(matching.pairs)

    def test_on_new_trips_reports_only_new_requests(self):
        taxis, requests = _frame()
        matching, state = _seed_state(taxis, requests)
        matched_r = {p for p, _ in matching.pairs}
        survivors = [r for r in requests if r.request_id not in matched_r]
        fresh = [PassengerRequest(100, Point(0.5, 0.5), Point(1.5, -0.5))]
        seen: list[tuple[list[int], list[float]]] = []
        warm_frame_solve(
            state,
            [Taxi(50, Point(0.0, 0.0))],
            survivors + fresh,
            ORACLE,
            CONFIG,
            on_new_trips=lambda ids, km: seen.append((ids.tolist(), km.tolist())),
        )
        assert len(seen) == 1
        ids, km = seen[0]
        assert ids == [100]
        np.testing.assert_allclose(km, [fresh[0].trip_distance(ORACLE)])


class TestFallbacks:
    def test_duplicate_taxi_ids_raise(self):
        taxis, requests = _frame()
        _, state = _seed_state(taxis, requests)
        dupes = [Taxi(9, Point(1.0, 0.0)), Taxi(8, Point(0.0, 1.0)), Taxi(8, Point(1.0, 1.0))]
        with pytest.raises(WarmStartError) as err:
            warm_frame_solve(state, dupes, [PassengerRequest(99, Point(0, 0), Point(1, 1))], ORACLE, CONFIG)
        assert err.value.reason == "duplicate-ids"

    def test_duplicate_request_ids_raise(self):
        taxis, requests = _frame()
        _, state = _seed_state(taxis, requests)
        dupes = [
            PassengerRequest(9, Point(0, 0), Point(1, 1)),
            PassengerRequest(8, Point(1, 0), Point(0, 1)),
            PassengerRequest(8, Point(0, 1), Point(1, 0)),
        ]
        with pytest.raises(WarmStartError) as err:
            warm_frame_solve(state, [Taxi(50, Point(0.0, 0.0))], dupes, ORACLE, CONFIG)
        assert err.value.reason == "duplicate-ids"

    def test_negative_alpha_raises(self):
        taxis, requests = _frame()
        _, state = _seed_state(taxis, requests)
        with pytest.raises(WarmStartError) as err:
            warm_frame_solve(
                state,
                [Taxi(50, Point(0.0, 0.0))],
                [PassengerRequest(99, Point(0, 0), Point(1, 1))],
                ORACLE,
                CONFIG,
                alpha_by_taxi={50: -1.0},
            )
        assert err.value.reason == "bad-alpha"


class TestRequestTrips:
    def test_matches_scalar_oracle(self):
        _, requests = _frame(1, 7, seed=21)
        np.testing.assert_array_equal(
            request_trips(requests, ORACLE),
            np.array([r.trip_distance(ORACLE) for r in requests]),
        )

    def test_empty(self):
        assert request_trips([], ORACLE).size == 0
