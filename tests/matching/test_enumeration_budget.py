"""Anytime behaviour of the Algorithm 2 enumeration under work budgets."""

import pytest

from repro.core.errors import EnumerationBudgetError, MatchingError
from repro.matching import (
    all_stable_matchings,
    break_dispatch,
    deferred_acceptance,
    enumerate_all_stable_matchings,
)
from repro.matching.preferences import PreferenceTable
from repro.resilience import FrameBudget, WorkBudget


def cyclic_market(n=6):
    """A market with a rich stable-matching lattice (cyclic preferences)."""
    return PreferenceTable(
        proposer_prefs={i: [(i + k) % n for k in range(n)] for i in range(n)},
        reviewer_prefs={j: [(j + k + 1) % n for k in range(n)] for j in range(n)},
    )


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAnytimeEnumeration:
    def test_alias_is_the_same_function(self):
        assert enumerate_all_stable_matchings is all_stable_matchings

    def test_unbudgeted_path_unchanged(self):
        table = cyclic_market()
        plain = all_stable_matchings(table)
        via_kwargs, stats = all_stable_matchings(table, with_stats=True)
        assert plain == via_kwargs
        assert not stats.truncated
        assert stats.nodes == 0  # no budget attached
        assert stats.duplicates == 0

    def test_max_nodes_truncates_to_a_prefix(self):
        table = cyclic_market()
        full = all_stable_matchings(table)
        assert len(full) > 1
        part, stats = all_stable_matchings(table, with_stats=True, max_nodes=3)
        assert stats.truncated
        assert stats.nodes > 0
        assert 1 <= len(part) < len(full)
        # Anytime contract: the truncated result is a prefix of the
        # untruncated enumeration, passenger-optimal matching first.
        assert part == full[: len(part)]
        assert part[0] == deferred_acceptance(table)

    def test_generous_budget_matches_unbudgeted(self):
        table = cyclic_market()
        full = all_stable_matchings(table)
        budgeted, stats = all_stable_matchings(table, with_stats=True, max_nodes=10**6)
        assert budgeted == full
        assert not stats.truncated
        assert stats.nodes > 0

    def test_on_budget_raise_carries_partial_lattice(self):
        table = cyclic_market()
        with pytest.raises(EnumerationBudgetError) as excinfo:
            all_stable_matchings(table, max_nodes=3, on_budget="raise")
        err = excinfo.value
        assert err.matchings  # the anytime prefix rides on the error
        assert err.matchings[0] == deferred_acceptance(table)
        assert err.nodes > 3

    def test_on_budget_validation(self):
        with pytest.raises(MatchingError):
            all_stable_matchings(cyclic_market(), on_budget="explode")

    def test_deadline_budget_truncates(self):
        clock = FakeClock()
        deadline = FrameBudget(10.0, clock=clock)
        table = cyclic_market()
        clock.now = 11.0  # already past the deadline: first spend fails
        part, stats = all_stable_matchings(table, with_stats=True, deadline=deadline)
        assert stats.truncated
        assert part == [deferred_acceptance(table)]


class TestBreakDispatchBudget:
    def test_budgeted_cascade_raises_typed_error(self):
        """The bounded-cascade guard: a tiny budget stops the proposal
        cascade with a typed error instead of unbounded work."""
        table = cyclic_market()
        matching = deferred_acceptance(table)
        budget = WorkBudget(0)
        with pytest.raises(EnumerationBudgetError) as excinfo:
            break_dispatch(table, matching, 0, budget=budget)
        assert excinfo.value.nodes >= 1
        assert "work budget" in str(excinfo.value)

    def test_unbudgeted_cascade_unchanged(self):
        table = cyclic_market()
        matching = deferred_acceptance(table)
        produced = break_dispatch(table, matching, 0)
        budgeted = break_dispatch(table, matching, 0, budget=WorkBudget(10**6))
        assert produced == budgeted

    def test_unknown_request_still_rejected(self):
        table = cyclic_market()
        with pytest.raises(MatchingError):
            break_dispatch(table, deferred_acceptance(table), 999, budget=WorkBudget(5))
