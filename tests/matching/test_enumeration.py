"""Unit tests for Algorithm 2 (all stable matchings)."""

import random

import pytest

from repro.core import MatchingError
from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings,
    all_stable_matchings_brute_force,
    break_dispatch,
    deferred_acceptance,
    is_stable,
)
from tests.support import random_table


@pytest.fixture()
def latin_square_table():
    # The classic 3x3 instance with three stable matchings.
    return PreferenceTable(
        proposer_prefs={
            0: (100, 101, 102),
            1: (101, 102, 100),
            2: (102, 100, 101),
        },
        reviewer_prefs={
            100: (1, 2, 0),
            101: (2, 0, 1),
            102: (0, 1, 2),
        },
    )


class TestBreakDispatch:
    def test_rule3_unserved_request_fails(self):
        table = PreferenceTable(
            proposer_prefs={0: (100,), 1: (100,)}, reviewer_prefs={100: (0, 1)}
        )
        matching = deferred_acceptance(table)
        assert matching.reviewer_of(1) is None
        assert break_dispatch(table, matching, 1) is None

    def test_unique_stable_matching_cannot_break(self):
        table = PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: (0,)})
        matching = deferred_acceptance(table)
        assert break_dispatch(table, matching, 0) is None

    def test_successful_break_yields_new_stable_matching(self, latin_square_table):
        optimal = deferred_acceptance(latin_square_table)
        produced = break_dispatch(latin_square_table, optimal, 0)
        assert produced is not None
        assert produced != optimal
        assert is_stable(latin_square_table, produced)

    def test_unknown_request_raises(self, latin_square_table):
        optimal = deferred_acceptance(latin_square_table)
        with pytest.raises(MatchingError):
            break_dispatch(latin_square_table, optimal, 42)


class TestAllStableMatchings:
    def test_latin_square_has_three(self, latin_square_table):
        matchings = all_stable_matchings(latin_square_table)
        assert len(matchings) == 3
        assert matchings[0] == deferred_acceptance(latin_square_table)
        expected = {
            Matching({0: 100, 1: 101, 2: 102}),  # passenger-optimal
            Matching({0: 102, 1: 100, 2: 101}),  # taxi-optimal
            Matching({0: 101, 1: 102, 2: 100}),  # the median one
        }
        assert set(matchings) == expected

    def test_matches_brute_force_on_random_markets(self):
        rng = random.Random(7)
        for _ in range(200):
            table = random_table(rng, rng.randint(1, 6), rng.randint(1, 6))
            enumerated, stats = all_stable_matchings(table, with_stats=True)
            assert set(enumerated) == set(all_stable_matchings_brute_force(table))
            # Theorem 4: each stable matching produced exactly once.
            assert stats.duplicates == 0

    def test_matched_sets_invariant(self):
        # Theorem 2 and its taxi-side analogue: the served/dispatched sets
        # are identical across all stable matchings.
        rng = random.Random(8)
        for _ in range(80):
            table = random_table(rng, rng.randint(2, 6), rng.randint(2, 6), acceptance=0.5)
            matchings = all_stable_matchings(table)
            proposers = {m.matched_proposers for m in matchings}
            reviewers = {m.matched_reviewers for m in matchings}
            assert len(proposers) == 1
            assert len(reviewers) == 1

    def test_limit_truncates(self, latin_square_table):
        matchings, stats = all_stable_matchings(latin_square_table, limit=2, with_stats=True)
        assert len(matchings) == 2
        assert stats.truncated

    def test_empty_market(self):
        table = PreferenceTable(proposer_prefs={}, reviewer_prefs={})
        assert all_stable_matchings(table) == [Matching({})]

    def test_stats_counters(self, latin_square_table):
        _, stats = all_stable_matchings(latin_square_table, with_stats=True)
        assert stats.stable_matchings == 3
        assert stats.break_successes == 2
        assert stats.break_attempts >= stats.break_successes
