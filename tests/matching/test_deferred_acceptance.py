"""Unit tests for Algorithm 1 (deferred acceptance with dummies)."""

import random

import pytest

from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings_brute_force,
    deferred_acceptance,
    is_stable,
)
from tests.support import TAXI_ID_BASE, random_table


class TestBasics:
    def test_empty_market(self):
        table = PreferenceTable(proposer_prefs={}, reviewer_prefs={})
        assert deferred_acceptance(table).size == 0

    def test_single_mutual_pair(self):
        table = PreferenceTable(proposer_prefs={0: (100,)}, reviewer_prefs={100: (0,)})
        assert deferred_acceptance(table) == Matching({0: 100})

    def test_unacceptable_stays_unmatched(self):
        table = PreferenceTable(
            proposer_prefs={0: (), 1: (100,)}, reviewer_prefs={100: (1,)}
        )
        matching = deferred_acceptance(table)
        assert matching.reviewer_of(0) is None
        assert matching.reviewer_of(1) == 100

    def test_textbook_instance(self):
        # Classic 3x3 with a known proposer-optimal outcome.
        table = PreferenceTable(
            proposer_prefs={
                0: (100, 101, 102),
                1: (101, 100, 102),
                2: (100, 101, 102),
            },
            reviewer_prefs={
                100: (1, 0, 2),
                101: (0, 1, 2),
                102: (0, 1, 2),
            },
        )
        matching = deferred_acceptance(table)
        assert matching == Matching({0: 100, 1: 101, 2: 102})

    def test_refusal_cascade(self):
        # 1 displaces 0 at reviewer 100; 0 falls to 101.
        table = PreferenceTable(
            proposer_prefs={0: (100, 101), 1: (100,)},
            reviewer_prefs={100: (1, 0), 101: (0,)},
        )
        matching = deferred_acceptance(table)
        assert matching == Matching({0: 101, 1: 100})


class TestStatsAndProperties:
    def test_stats_counters(self):
        table = PreferenceTable(
            proposer_prefs={0: (100, 101), 1: (100,)},
            reviewer_prefs={100: (1, 0), 101: (0,)},
        )
        matching, stats = deferred_acceptance(table, with_stats=True)
        assert stats.matched_pairs == matching.size == 2
        assert stats.proposals >= 2
        assert stats.refusals >= 1

    def test_always_stable_on_random_markets(self):
        rng = random.Random(0)
        for _ in range(150):
            table = random_table(rng, rng.randint(1, 7), rng.randint(1, 7))
            matching = deferred_acceptance(table)
            assert is_stable(table, matching)

    def test_proposer_optimality_against_brute_force(self):
        rng = random.Random(1)
        for _ in range(60):
            table = random_table(rng, rng.randint(1, 5), rng.randint(1, 5))
            matching = deferred_acceptance(table)
            for other in all_stable_matchings_brute_force(table):
                for proposer in table.proposer_prefs:
                    mine = matching.reviewer_of(proposer)
                    theirs = other.reviewer_of(proposer)
                    if mine == theirs:
                        continue
                    # The proposer must weakly prefer its Algorithm-1 partner.
                    assert mine is not None, "optimal match lost a partner"
                    if theirs is not None:
                        assert table.proposer_prefers(proposer, mine, theirs)

    def test_large_adversarial_market_is_iterative(self):
        # Identical proposer lists with reviewers preferring later arrivals
        # maximize displacements (O(n²) proposals); the paper's recursive
        # Proposal/Refusal would hit Python's stack limit long before this.
        n = 600
        reviewers = tuple(range(TAXI_ID_BASE, TAXI_ID_BASE + n))
        table = PreferenceTable(
            proposer_prefs={p: reviewers for p in range(n)},
            reviewer_prefs={r: tuple(range(n - 1, -1, -1)) for r in reviewers},
        )
        matching = deferred_acceptance(table)
        assert matching.size == n
        assert is_stable(table, matching)


@pytest.mark.parametrize("n", [1, 2, 5, 9])
def test_full_acceptance_market_is_perfectly_matched(n):
    rng = random.Random(n)
    table = random_table(rng, n, n, acceptance=1.0)
    assert deferred_acceptance(table).size == n
