"""Unit tests for FrameBudget and WorkBudget."""

import math

import pytest

from repro.core.errors import FrameBudgetExceededError
from repro.resilience import FrameBudget, WorkBudget


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestFrameBudget:
    def test_checkpoint_passes_before_deadline(self):
        clock = FakeClock()
        budget = FrameBudget(10.0, clock=clock)
        clock.advance(9.9)
        budget.checkpoint("stage")
        assert budget.checkpoints == 1
        assert not budget.expired()

    def test_checkpoint_raises_past_deadline(self):
        clock = FakeClock()
        budget = FrameBudget(10.0, clock=clock)
        clock.advance(10.5)
        with pytest.raises(FrameBudgetExceededError) as excinfo:
            budget.checkpoint("prefs-built")
        assert excinfo.value.elapsed_s == pytest.approx(10.5)
        assert excinfo.value.budget_s == pytest.approx(10.0)
        assert "prefs-built" in str(excinfo.value)

    def test_elapsed_remaining(self):
        clock = FakeClock(5.0)
        budget = FrameBudget(30.0, clock=clock)
        clock.advance(12.0)
        assert budget.elapsed() == pytest.approx(12.0)
        assert budget.remaining() == pytest.approx(18.0)

    def test_restart_reanchors(self):
        clock = FakeClock()
        budget = FrameBudget(1.0, clock=clock)
        clock.advance(5.0)
        assert budget.expired()
        budget.restart()
        assert not budget.expired()

    def test_extend_to_shares_anchor(self):
        clock = FakeClock()
        budget = FrameBudget(10.0, clock=clock)
        clock.advance(15.0)
        assert budget.expired()
        budget.extend_to(20.0)
        # The anchor is the original start, so only 5 s remain.
        assert budget.remaining() == pytest.approx(5.0)
        assert not budget.expired()

    def test_infinite_budget_never_expires(self):
        clock = FakeClock()
        budget = FrameBudget(math.inf, clock=clock)
        clock.advance(1e9)
        budget.checkpoint()
        assert not budget.expired()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FrameBudget(-1.0)
        budget = FrameBudget(1.0)
        with pytest.raises(ValueError):
            budget.extend_to(-0.1)


class TestWorkBudget:
    def test_node_cap(self):
        budget = WorkBudget(3)
        assert budget.spend()
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()
        assert budget.nodes == 4
        assert budget.exhausted

    def test_exhaustion_is_sticky(self):
        budget = WorkBudget(1)
        budget.spend(5)
        assert budget.exhausted
        # Even a zero-cost poll stays exhausted.
        assert not budget.spend(0)

    def test_unbounded_never_exhausts(self):
        budget = WorkBudget()
        assert budget.unbounded
        assert budget.spend(10**6)
        assert not budget.exhausted

    def test_deadline_exhausts_without_raising(self):
        clock = FakeClock()
        frame = FrameBudget(10.0, clock=clock)
        budget = WorkBudget(deadline=frame)
        assert budget.spend()
        clock.advance(11.0)
        assert not budget.spend()
        assert budget.exhausted

    def test_infinite_deadline_counts_as_unbounded(self):
        frame = FrameBudget(math.inf)
        assert WorkBudget(deadline=frame).unbounded
        assert not WorkBudget(5, deadline=frame).unbounded

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            WorkBudget(-1)
