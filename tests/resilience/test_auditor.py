"""Unit behaviour of the sampled runtime stability auditor.

Covers the stateless hash sampler (deterministic, resume-stable, mode
gated), pair extraction from both schedule representations, the clean
audit of a genuine warm frame, and the injected-corruption path: a
deliberately swapped matching must be flagged as diverged, healed by a
cold recompute, and documented in a :class:`StabilityAuditRecord` with
the dispatcher's warm state invalidated under the ``audit-divergence``
telemetry reason.
"""

import pytest

from repro.core import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import single_assignment
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.geometry import EuclideanDistance, Point
from repro.resilience import (
    AUDITED_MODES,
    DEFAULT_AUDIT_RATE,
    StabilityAuditor,
    schedule_pairs,
)
from repro.resilience.auditor import INVALID_MATCHING

ORACLE = EuclideanDistance()


def frame():
    """Two far-apart passenger/taxi clusters: the stable matching pairs
    each request with its near taxi, so swapping the two assignments
    makes both near pairs blocking."""
    taxis = [Taxi(0, Point(0.0, 0.0)), Taxi(1, Point(50.0, 0.0))]
    requests = [
        PassengerRequest(0, Point(1.0, 0.0), Point(2.0, 0.0)),
        PassengerRequest(1, Point(49.0, 0.0), Point(48.0, 0.0)),
    ]
    return taxis, requests


def warm_dispatcher():
    return NSTDDispatcher(ORACLE, warm_start=True)


def warm_frame(dispatcher, taxis, requests):
    """Dispatch twice so the second frame runs the warm path."""
    dispatcher.dispatch(taxis, requests)
    schedule = dispatcher.dispatch(taxis, requests)
    assert dispatcher.last_frame_mode == "warm"
    return schedule


class TestSampler:
    def test_deterministic_and_resume_stable(self):
        first = StabilityAuditor(seed=3, rate=0.25)
        second = StabilityAuditor(seed=3, rate=0.25)
        decisions = [first.should_audit(i, "warm") for i in range(512)]
        assert decisions == [second.should_audit(i, "warm") for i in range(512)]
        # Roughly the configured fraction fires; exactness is not the
        # contract, stability is.
        assert 0.15 < sum(decisions) / 512 < 0.35

    def test_mode_gating(self):
        auditor = StabilityAuditor(rate=1.0)
        assert auditor.modes == AUDITED_MODES
        assert auditor.should_audit(0, "warm")
        assert auditor.should_audit(0, "warm_sharded")
        assert not auditor.should_audit(0, "cold")
        assert not auditor.should_audit(0, None)

    def test_rate_bounds(self):
        assert not StabilityAuditor(rate=0.0).should_audit(5, "warm")
        assert StabilityAuditor(rate=1.0).should_audit(5, "warm")
        with pytest.raises(ValueError):
            StabilityAuditor(rate=1.5)
        assert 0.0 < DEFAULT_AUDIT_RATE < 0.05


class TestSchedulePairs:
    def test_single_rider_schedule(self):
        taxis, requests = frame()
        schedule = DispatchSchedule()
        schedule.add(single_assignment(taxis[0], requests[0]))
        schedule.add(single_assignment(taxis[1], requests[1]))
        assert schedule_pairs(schedule, taxis, requests) == {0: 0, 1: 1}

    def test_ride_sharing_schedule_is_not_auditable(self):
        from repro.core.types import Assignment, RouteStop

        taxis, requests = frame()
        shared = Assignment(
            taxi_id=0,
            request_ids=(0, 1),
            stops=tuple(
                RouteStop(request_id=r.request_id, is_pickup=pickup, point=point)
                for r in requests
                for pickup, point in ((True, r.pickup), (False, r.dropoff))
            ),
        )
        schedule = DispatchSchedule()
        schedule.add(shared)
        assert schedule_pairs(schedule, taxis, requests) is None


class TestAuditFrame:
    def test_clean_warm_frame_passes_untouched(self):
        taxis, requests = frame()
        dispatcher = warm_dispatcher()
        schedule = warm_frame(dispatcher, taxis, requests)
        auditor = StabilityAuditor(rate=1.0)
        shipped, record = auditor.audit_frame(
            frame_index=1,
            time_s=30.0,
            dispatcher=dispatcher,
            taxis=taxis,
            requests=requests,
            schedule=schedule,
        )
        assert shipped is schedule
        assert record is not None
        assert not record.diverged and record.blocking_pairs == 0
        assert auditor.report.divergences == []
        summary = auditor.report.summary()
        assert summary["frames_audited"] == 1.0
        assert summary["audit_divergences"] == 0.0

    def test_unsampled_frame_is_skipped(self):
        taxis, requests = frame()
        dispatcher = warm_dispatcher()
        schedule = warm_frame(dispatcher, taxis, requests)
        auditor = StabilityAuditor(rate=0.0)
        shipped, record = auditor.audit_frame(
            frame_index=1,
            time_s=30.0,
            dispatcher=dispatcher,
            taxis=taxis,
            requests=requests,
            schedule=schedule,
        )
        assert shipped is schedule and record is None
        assert len(auditor.report.frames) == 0

    def test_injected_corruption_is_detected_healed_and_recorded(self):
        taxis, requests = frame()
        dispatcher = warm_dispatcher()
        warm_frame(dispatcher, taxis, requests)
        # Corrupt the matching the fast path "shipped": swap the two
        # assignments so each passenger is sent the far taxi.
        corrupt = DispatchSchedule()
        corrupt.add(single_assignment(taxis[1], requests[0]))
        corrupt.add(single_assignment(taxis[0], requests[1]))
        auditor = StabilityAuditor(rate=1.0)
        healed, record = auditor.audit_frame(
            frame_index=1,
            time_s=30.0,
            dispatcher=dispatcher,
            taxis=taxis,
            requests=requests,
            schedule=corrupt,
        )
        assert record is not None and record.diverged
        assert record.blocking_pairs > 0
        assert record.healed
        # The healed schedule is the cold recompute: near pairs restored.
        assert schedule_pairs(healed, taxis, requests) == {0: 0, 1: 1}
        # The warm state was dropped under the enumerated reason.
        telemetry = dispatcher.run_telemetry()
        assert telemetry.get("warm_invalidation_audit-divergence", 0) == 1
        assert len(auditor.report.divergences) == 1
        summary = auditor.report.summary()
        assert summary["audit_divergences"] == 1.0
        assert summary["audit_healed"] == 1.0
        assert record.audit_ms >= 0.0

    def test_structurally_invalid_matching_is_flagged(self):
        taxis, requests = frame()
        dispatcher = warm_dispatcher()
        warm_frame(dispatcher, taxis, requests)
        # Assign both requests to the same taxi: is_valid_matching fails
        # before blocking pairs are even enumerable.
        auditor = StabilityAuditor(rate=1.0)
        violations = auditor._violations(dispatcher, taxis, requests, {0: 0, 1: 0})
        assert violations == INVALID_MATCHING
