"""Snapshot store semantics: atomicity, validation, pruning, refusal.

The store's contract mirrors the journal's asymmetry: a torn or
checksum-damaged snapshot is *skipped with a warning* (older snapshots
exist to absorb exactly that), while schema skew is a typed refusal —
silently falling back to a much older frame would masquerade as a
healthy resume.
"""

import json

import pytest

from repro.core.errors import CheckpointSchemaError, ResumeError
from repro.resilience import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    DurabilityConfig,
    DurabilityManager,
)


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path, keep=3)


def state(frame):
    return {"frame_marker": frame, "floats": [0.1 + frame, 2.0 / 3.0]}


class TestStore:
    def test_round_trip_preserves_floats_bitwise(self, store):
        store.write(7, {"state": state(7)})
        loaded = store.latest_valid()
        assert loaded["frame"] == 7
        assert loaded["schema"] == CHECKPOINT_SCHEMA
        # JSON floats round-trip via repr: bit equality, not approximate.
        assert loaded["state"] == state(7)
        assert loaded["state"]["floats"][1] == 2.0 / 3.0

    def test_latest_valid_picks_newest(self, store):
        for frame in (3, 11, 19):
            store.write(frame, {"state": state(frame)})
        assert store.latest_valid()["frame"] == 19

    def test_prune_keeps_newest_k(self, store):
        for frame in range(6):
            store.write(frame, {"state": state(frame)})
        kept = [p.name for p in store.snapshot_paths()]
        assert kept == ["snap-00000003.json", "snap-00000004.json", "snap-00000005.json"]

    def test_damaged_snapshot_is_skipped_with_warning(self, store):
        store.write(1, {"state": state(1)})
        newest = store.write(2, {"state": state(2)})
        newest.write_text(newest.read_text()[:-25])  # tear the newest
        with pytest.warns(RuntimeWarning, match="skipping invalid snapshot"):
            loaded = store.latest_valid()
        assert loaded["frame"] == 1  # older sibling absorbs the damage

    def test_flipped_byte_fails_checksum(self, store):
        path = store.write(4, {"state": state(4)})
        body = json.loads(path.read_text())
        body["state"]["frame_marker"] = 999  # edit without re-checksumming
        path.write_text(json.dumps(body, sort_keys=True, separators=(",", ":")))
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert store.latest_valid() is None

    def test_schema_skew_is_a_hard_refusal(self, store):
        import zlib

        path = store.write(5, {"state": state(5)})
        body = json.loads(path.read_text())
        del body["crc"]
        body["schema"] = "repro-checkpoint/99"
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = zlib.crc32(canonical.encode())  # integrity intact
        path.write_text(json.dumps(body, sort_keys=True, separators=(",", ":")))
        with pytest.raises(CheckpointSchemaError, match="repro-checkpoint/99"):
            store.latest_valid()

    def test_empty_directory_has_no_snapshot(self, store):
        assert store.latest_valid() is None
        assert store.snapshot_paths() == []


class TestConfig:
    def test_rejects_nonpositive_cadence_and_keep(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every_frames"):
            DurabilityConfig(tmp_path, checkpoint_every_frames=0)
        with pytest.raises(ValueError, match="keep"):
            DurabilityConfig(tmp_path, keep=0)

    def test_directory_is_coerced_to_path(self, tmp_path):
        config = DurabilityConfig(str(tmp_path / "sub"))
        assert config.directory == tmp_path / "sub"


class TestManagerGuards:
    def test_resuming_without_prepare_is_refused(self, tmp_path):
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        with pytest.raises(ResumeError, match="prepare_resume"):
            manager.begin_run({"dispatcher": "NSTD-P"}, resuming=True)

    def test_fresh_run_replaces_stale_artifacts(self, tmp_path):
        manager = DurabilityManager(DurabilityConfig(tmp_path))
        manager.store.write(9, {"state": state(9)})
        manager.journal_path.write_text("stale\n")
        manager.begin_run({"dispatcher": "NSTD-P"}, resuming=False)
        assert manager.store.snapshot_paths() == []
        from repro.resilience import read_journal

        assert read_journal(manager.journal_path).header["dispatcher"] == "NSTD-P"
