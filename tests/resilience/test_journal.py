"""Journal failure semantics: the asymmetry is the contract.

A torn final line is the expected SIGKILL signature and is dropped with
a warning; a damaged line anywhere else is corruption and a typed hard
failure; an unknown schema version is a typed refusal.  These tests
damage journals byte-by-byte and assert each case lands in the right
bucket — a corrupt journal must never be silently replayed.
"""

import warnings

import pytest

from repro.core.errors import JournalCorruptionError, JournalSchemaError
from repro.resilience import (
    JOURNAL_SCHEMA,
    FrameDigest,
    JournalWriter,
    frame_pairs_crc,
    read_journal,
)


def digest(frame, pairs, *, cum=0):
    return FrameDigest(
        frame=frame,
        time_s=frame * 30.0,
        queue=3,
        idle=5,
        dispatched=len(pairs),
        abandoned=0,
        pairs_crc=frame_pairs_crc(pairs),
        cum_crc=frame_pairs_crc(pairs, seed=cum),
        rung="primary",
        mode="warm",
    )


@pytest.fixture()
def journal_path(tmp_path):
    path = tmp_path / "journal.jsonl"
    with JournalWriter(path) as writer:
        writer.write_header({"dispatcher": "NSTD-P", "n_taxis": 4, "n_requests": 9})
        cum = 0
        for frame in range(3):
            pairs = [(frame * 10 + 1, 2), (frame * 10 + 3, 4)]
            writer.write_frame(digest(frame, pairs, cum=cum))
            cum = frame_pairs_crc(pairs, seed=cum)
    return path


class TestRoundTrip:
    def test_written_journal_reads_back_exactly(self, journal_path):
        contents = read_journal(journal_path)
        assert contents.header["dispatcher"] == "NSTD-P"
        assert [d.frame for d in contents.frames] == [0, 1, 2]
        assert contents.last_frame == 2
        assert not contents.truncated_tail
        assert not contents.needs_newline
        assert contents.valid_bytes == journal_path.stat().st_size
        # Digests survive the JSON round trip bit-identically.
        assert contents.frames[1] == digest(
            1, [(11, 2), (13, 4)], cum=frame_pairs_crc([(1, 2), (3, 4)])
        )

    def test_end_record_marks_completion(self, journal_path):
        with JournalWriter(journal_path, append=True) as writer:
            writer.write_end({"frames": 3})
        contents = read_journal(journal_path)
        assert contents.end is not None
        assert contents.end["frames"] == 3

    def test_pairs_crc_is_order_invariant(self):
        forward = frame_pairs_crc([(1, 2), (3, 4), (5, 6)])
        shuffled = frame_pairs_crc([(5, 6), (1, 2), (3, 4)])
        assert forward == shuffled
        assert frame_pairs_crc([(1, 2)]) != frame_pairs_crc([(1, 3)])


class TestTornTail:
    """Crash-mid-append: accepted with a warning, never an exception."""

    def test_truncated_final_line_is_dropped_with_warning(self, journal_path):
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:-20])  # tear the last record mid-line
        with pytest.warns(RuntimeWarning, match="torn final journal line"):
            contents = read_journal(journal_path)
        assert [d.frame for d in contents.frames] == [0, 1]
        assert contents.truncated_tail
        # The trusted prefix excludes the torn bytes: truncating the file
        # to valid_bytes yields a journal that reads back cleanly.
        journal_path.write_bytes(raw[: contents.valid_bytes])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_journal(journal_path).last_frame == 1

    def test_missing_final_newline_keeps_the_record(self, journal_path):
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:-1])  # only the "\n" is lost
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            contents = read_journal(journal_path)
        assert [d.frame for d in contents.frames] == [0, 1, 2]
        assert contents.needs_newline
        assert not contents.truncated_tail


class TestCorruption:
    """Damage anywhere but the tail is a typed hard failure."""

    def test_flipped_byte_mid_journal_raises(self, journal_path):
        raw = bytearray(journal_path.read_bytes())
        # Flip one digit inside the second line's payload, away from the
        # tail, keeping the JSON parseable so only the checksum trips.
        second_line_start = raw.index(b"\n") + 1
        target = raw.index(b'"queue":3', second_line_start) + len(b'"queue":')
        raw[target] = ord("7")
        journal_path.write_bytes(bytes(raw))
        with pytest.raises(JournalCorruptionError, match="checksum mismatch"):
            read_journal(journal_path)

    def test_unparseable_middle_line_raises(self, journal_path):
        lines = journal_path.read_text().splitlines(keepends=True)
        lines[2] = "not json at all\n"
        journal_path.write_text("".join(lines))
        with pytest.raises(JournalCorruptionError, match="not valid JSON"):
            read_journal(journal_path)

    def test_record_without_checksum_raises(self, journal_path):
        with journal_path.open("a") as handle:
            handle.write('{"kind":"frame","frame":3}\n')
        with pytest.raises(JournalCorruptionError, match="no checksum"):
            read_journal(journal_path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        with pytest.raises(JournalCorruptionError, match="no valid records"):
            read_journal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JournalWriter(path) as writer:
            writer.write_frame(digest(0, [(1, 2)]))
        with pytest.raises(JournalCorruptionError, match="not a header"):
            read_journal(path)


class TestSchemaSkew:
    def test_unknown_schema_version_is_a_typed_refusal(self, tmp_path, journal_path):
        # Rewrite the header with a future version, re-checksummed so
        # only the version — not integrity — is at issue.
        from repro.resilience.journal import _checksummed_line

        lines = journal_path.read_text().splitlines(keepends=True)
        future = {"kind": "header", "schema": "repro-journal/99", "dispatcher": "NSTD-P"}
        lines[0] = _checksummed_line(future)
        skewed = tmp_path / "skewed.jsonl"
        skewed.write_text("".join(lines))
        with pytest.raises(JournalSchemaError, match="repro-journal/99"):
            read_journal(skewed)
        assert JOURNAL_SCHEMA == "repro-journal/1"
