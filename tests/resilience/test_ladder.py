"""Unit tests for the degradation ladder and resilience policy."""

import math
import pickle

import pytest

from repro.core.config import DispatchConfig
from repro.dispatch.nonsharing.greedy import GreedyNearestDispatcher
from repro.dispatch.nonsharing.nstd import NSTDDispatcher
from repro.geometry import EuclideanDistance
from repro.resilience import FaultInjector, ResiliencePolicy, Rung, default_ladder


class TestDefaultLadder:
    def test_shape(self):
        ladder = default_ladder()
        assert [r.name for r in ladder] == [
            "primary",
            "nstd-arrays",
            "nstd-threshold",
            "greedy",
        ]
        assert ladder[0].factory is None
        assert all(r.budgeted for r in ladder[:-1])
        assert not ladder[-1].budgeted

    def test_factories_build_expected_dispatchers(self):
        oracle = EuclideanDistance()
        config = DispatchConfig(theta_km=1.0)
        _, arrays_rung, threshold_rung, greedy_rung = default_ladder()
        arrays = arrays_rung.factory(oracle, config)
        assert isinstance(arrays, NSTDDispatcher)
        thresholded = threshold_rung.factory(oracle, config)
        assert isinstance(thresholded, NSTDDispatcher)
        assert thresholded.config.passenger_threshold_km <= 2.0 * config.theta_km
        assert thresholded.config.taxi_threshold_km <= 2.0 * config.theta_km
        assert isinstance(greedy_rung.factory(oracle, config), GreedyNearestDispatcher)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(budget_fraction=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(headroom_fraction=1.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(transient_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(ladder=())

    def test_primary_budget(self):
        assert ResiliencePolicy(budget_fraction=0.5).primary_budget_s(60.0) == 30.0
        assert ResiliencePolicy(frame_budget_s=7.0).primary_budget_s(60.0) == 7.0

    def test_rung_deadlines_are_nondecreasing_and_within_frame(self):
        policy = ResiliencePolicy(budget_fraction=0.5, headroom_fraction=0.95)
        deadlines = [policy.rung_deadline_s(i, 3, 60.0) for i in range(3)]
        assert deadlines == sorted(deadlines)
        assert deadlines[0] == pytest.approx(30.0)
        assert all(d <= 0.95 * 60.0 + 1e-9 for d in deadlines)

    def test_resolved_clock_precedence(self):
        injector = FaultInjector(0)
        explicit = lambda: 42.0  # noqa: E731
        assert ResiliencePolicy().resolved_clock().__qualname__  # perf_counter
        assert ResiliencePolicy(fault_injector=injector).resolved_clock() == injector.clock
        assert (
            ResiliencePolicy(fault_injector=injector, clock=explicit).resolved_clock()
            is explicit
        )

    def test_make_budget_uses_policy_clock(self):
        injector = FaultInjector(0)
        policy = ResiliencePolicy(budget_fraction=0.5, fault_injector=injector)
        budget = policy.make_budget(60.0)
        assert budget.duration_s == 30.0
        injector.advance(31.0)
        assert budget.expired()

    def test_with_injector_returns_bound_copy(self):
        policy = ResiliencePolicy()
        injector = FaultInjector(5)
        bound = policy.with_injector(injector)
        assert bound.fault_injector is injector
        assert policy.fault_injector is None

    def test_build_rungs_reuses_primary(self):
        oracle = EuclideanDistance()
        primary = NSTDDispatcher(oracle, DispatchConfig())
        rungs = ResiliencePolicy().build_rungs(primary, oracle)
        assert rungs[0][1] is primary
        assert all(d.config is not None for _, d in rungs)

    def test_policy_is_picklable(self):
        # Pool workers receive the policy; module-level rung factories
        # keep it picklable.
        policy = ResiliencePolicy(budget_fraction=0.4, transient_retries=1)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.budget_fraction == 0.4
        assert [r.name for r in clone.ladder] == [r.name for r in policy.ladder]

    def test_unbudgeted_deadline(self):
        assert math.isinf(ResiliencePolicy.unbudgeted_deadline())

    def test_custom_ladder_rung(self):
        rung = Rung("only-greedy", None, budgeted=False)
        policy = ResiliencePolicy(ladder=(rung,))
        assert policy.ladder[0].name == "only-greedy"
