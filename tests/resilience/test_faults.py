"""Unit tests for the deterministic fault-injection harness."""

import pickle

import pytest

from repro.core.errors import TransientFaultError
from repro.geometry import EuclideanDistance, Point
from repro.geometry.batch import oracle_pairwise
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultyOracle,
    in_worker_process,
    maybe_crash_worker,
)


class TestFaultInjector:
    def test_deterministic_schedule(self):
        def schedule(seed):
            injector = FaultInjector(seed, latency_rate=0.3, error_rate=0.2)
            events = []
            for _ in range(50):
                spikes = injector.latency_spikes
                try:
                    injector.before_call()
                except TransientFaultError:
                    events.append("error")
                else:
                    events.append("spike" if injector.latency_spikes > spikes else "ok")
            return events

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_latency_advances_virtual_clock_only(self):
        injector = FaultInjector(0, latency_rate=1.0, latency_s=5.0)
        assert injector.clock() == 0.0
        injector.before_call()
        assert injector.clock() == pytest.approx(5.0)
        assert injector.latency_spikes == 1

    def test_per_call_cost_charged_even_disarmed(self):
        injector = FaultInjector(0, per_call_cost_s=0.5, error_rate=1.0)
        injector.disarm()
        injector.before_call()  # would raise if armed
        assert injector.clock() == pytest.approx(0.5)
        assert injector.errors_raised == 0

    def test_disarmed_calls_do_not_consume_rng(self):
        armed_only = FaultInjector(3, latency_rate=0.5)
        interleaved = FaultInjector(3, latency_rate=0.5)
        for _ in range(20):
            armed_only.before_call()
        for i in range(40):
            if i % 2:
                interleaved.disarm()
            else:
                interleaved.arm()
            interleaved.before_call()
        # 20 armed calls either way -> identical spike count.
        assert interleaved.latency_spikes == armed_only.latency_spikes

    def test_fail_first_calls(self):
        injector = FaultInjector(0, fail_first_calls=2)
        with pytest.raises(TransientFaultError):
            injector.before_call()
        with pytest.raises(TransientFaultError):
            injector.before_call()
        injector.before_call()  # third call is clean
        assert injector.errors_raised == 2

    def test_advance(self):
        injector = FaultInjector(0)
        injector.advance(3.25)
        assert injector.clock() == pytest.approx(3.25)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(0, latency_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(0, error_rate=-0.1)


class TestFaultyOracle:
    def test_disarmed_is_observationally_identical(self):
        base = EuclideanDistance()
        injector = FaultInjector(0, error_rate=1.0)
        injector.disarm()
        wrapped = injector.wrap(base)
        a, b = Point(0, 0), Point(3, 4)
        assert wrapped.distance(a, b) == base.distance(a, b)
        assert wrapped.batch_exact == bool(getattr(base, "batch_exact", False))

    def test_armed_errors_propagate(self):
        injector = FaultInjector(0, error_rate=1.0)
        wrapped = injector.wrap(EuclideanDistance())
        with pytest.raises(TransientFaultError):
            wrapped.distance(Point(0, 0), Point(1, 1))

    def test_batch_calls_count_one_fault_opportunity(self):
        injector = FaultInjector(0)
        wrapped = injector.wrap(EuclideanDistance())
        points = [Point(0, 0), Point(1, 1)]
        matrix = wrapped.pairwise(points, points)
        assert injector.calls == 1
        assert matrix.shape == (2, 2)
        # And the wrapper is itself usable through the batch helpers.
        assert oracle_pairwise(wrapped, sources=points, targets=points).shape == (2, 2)

    def test_base_and_injector_accessors(self):
        base = EuclideanDistance()
        injector = FaultInjector(0)
        wrapped = FaultyOracle(base, injector)
        assert wrapped.base is base
        assert wrapped.injector is injector


class TestFaultPlan:
    def test_picklable(self):
        plan = FaultPlan(seed=9, latency_rate=0.1, crash_algorithms=("STD-P",))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_injector_derivation_is_stable_and_distinct(self):
        plan = FaultPlan(seed=1, latency_rate=0.2)
        a0 = plan.build_injector("city:10:NSTD-P", attempt=0)
        a0_again = plan.build_injector("city:10:NSTD-P", attempt=0)
        a1 = plan.build_injector("city:10:NSTD-P", attempt=1)
        b0 = plan.build_injector("city:10:GREEDY", attempt=0)
        assert a0.seed == a0_again.seed
        assert a0.seed != a1.seed
        assert a0.seed != b0.seed

    def test_fail_attempts_gate(self):
        plan = FaultPlan(seed=0, fail_attempts=2)
        assert plan.build_injector("k", attempt=0).fail_first_calls == 1
        assert plan.build_injector("k", attempt=1).fail_first_calls == 1
        assert plan.build_injector("k", attempt=2).fail_first_calls == 0

    def test_wrap_oracle(self):
        plan = FaultPlan(seed=0)
        oracle, injector = plan.wrap_oracle(EuclideanDistance(), "k")
        assert isinstance(oracle, FaultyOracle)
        assert oracle.injector is injector


class TestWorkerCrash:
    def test_not_in_worker_process_here(self):
        assert not in_worker_process()

    def test_maybe_crash_worker_noop_in_parent(self):
        # Would os._exit(3) inside a pool worker; in the parent process
        # (this test) it must be a no-op even for a targeted cell.
        plan = FaultPlan(seed=0, crash_algorithms=("NSTD-P",))
        maybe_crash_worker(plan, "NSTD-P")
        maybe_crash_worker(plan, "GREEDY")
        maybe_crash_worker(None, "NSTD-P")
