"""Unit tests for configuration validation and derived quantities."""

import math

import pytest

from repro.core import ConfigurationError, DispatchConfig, SimulationConfig


class TestDispatchConfig:
    def test_paper_defaults(self):
        config = DispatchConfig()
        assert config.alpha == 1.0
        assert config.beta == 1.0
        assert config.theta_km == 5.0
        assert config.max_group_size == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -0.1},
            {"beta": -1.0},
            {"theta_km": -2.0},
            {"max_group_size": 0},
            {"max_group_size": 5},
            {"passenger_threshold_km": 0.0},
            {"passenger_threshold_km": -3.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            DispatchConfig(**kwargs)

    def test_infinite_thresholds_allowed(self):
        config = DispatchConfig(passenger_threshold_km=math.inf, taxi_threshold_km=math.inf)
        assert math.isinf(config.passenger_threshold_km)


class TestSimulationConfig:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.frame_length_s == 60.0
        assert config.taxi_speed_kmh == 20.0

    def test_speed_conversion(self):
        config = SimulationConfig(taxi_speed_kmh=36.0)
        assert config.taxi_speed_kms == pytest.approx(0.01)

    def test_travel_time(self):
        config = SimulationConfig(taxi_speed_kmh=20.0)
        # 20 km at 20 km/h is one hour.
        assert config.travel_time_s(20.0) == pytest.approx(3600.0)
        assert config.travel_time_s(0.0) == 0.0

    def test_travel_time_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulationConfig().travel_time_s(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frame_length_s": 0.0},
            {"taxi_speed_kmh": -5.0},
            {"passenger_patience_s": 0.0},
            {"horizon_s": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)
