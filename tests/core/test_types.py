"""Unit tests for the core domain entities."""

import pytest

from repro.core import (
    Assignment,
    DispatchSchedule,
    PassengerRequest,
    RideGroup,
    RouteStop,
    Taxi,
)
from repro.geometry import EuclideanDistance, Point


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def stop(rid, pickup, x, y):
    return RouteStop(request_id=rid, is_pickup=pickup, point=Point(x, y))


class TestPassengerRequest:
    def test_trip_distance(self, oracle):
        request = PassengerRequest(1, Point(0.0, 0.0), Point(3.0, 4.0))
        assert request.trip_distance(oracle) == pytest.approx(5.0)

    def test_rejects_non_positive_party(self):
        with pytest.raises(ValueError):
            PassengerRequest(1, Point(0, 0), Point(1, 1), passengers=0)

    def test_rejects_negative_request_time(self):
        with pytest.raises(ValueError):
            PassengerRequest(1, Point(0, 0), Point(1, 1), request_time_s=-1.0)

    def test_is_hashable_and_frozen(self):
        request = PassengerRequest(1, Point(0, 0), Point(1, 1))
        assert hash(request) is not None
        with pytest.raises(AttributeError):
            request.request_id = 2


class TestTaxi:
    def test_can_carry_respects_seats(self):
        taxi = Taxi(0, Point(0, 0), seats=2)
        assert taxi.can_carry(PassengerRequest(1, Point(0, 0), Point(1, 1), passengers=2))
        assert not taxi.can_carry(PassengerRequest(2, Point(0, 0), Point(1, 1), passengers=3))

    def test_rejects_zero_seats(self):
        with pytest.raises(ValueError):
            Taxi(0, Point(0, 0), seats=0)


class TestRideGroup:
    def _group(self, oracle):
        r1 = PassengerRequest(1, Point(0, 0), Point(4, 0))
        r2 = PassengerRequest(2, Point(1, 0), Point(3, 0))
        route = (
            stop(1, True, 0, 0),
            stop(2, True, 1, 0),
            stop(2, False, 3, 0),
            stop(1, False, 4, 0),
        )
        return RideGroup(
            group_id=0,
            requests=(r1, r2),
            route=route,
            route_length_km=4.0,
            onboard_distance_km={1: 4.0, 2: 2.0},
            pickup_offset_km={1: 0.0, 2: 1.0},
        )

    def test_accessors(self, oracle):
        group = self._group(oracle)
        assert group.size == 2
        assert group.request_ids == (1, 2)
        assert group.total_passengers == 2
        assert group.route_start == Point(0, 0)
        assert group.total_trip_distance(oracle) == pytest.approx(6.0)

    def test_detour_is_onboard_minus_direct(self, oracle):
        group = self._group(oracle)
        assert group.detour_km(1, oracle) == pytest.approx(0.0)
        assert group.detour_km(2, oracle) == pytest.approx(0.0)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            RideGroup(0, (), (), 0.0, {}, {})

    def test_rejects_duplicate_members(self):
        r1 = PassengerRequest(1, Point(0, 0), Point(1, 0))
        with pytest.raises(ValueError):
            RideGroup(0, (r1, r1), (stop(1, True, 0, 0),), 0.0, {}, {})


class TestAssignment:
    def test_valid_single(self):
        assignment = Assignment(
            taxi_id=0,
            request_ids=(1,),
            stops=(stop(1, True, 0, 0), stop(1, False, 1, 0)),
        )
        assert assignment.pickup_stop_of(1).point == Point(0, 0)

    def test_rejects_dropoff_before_pickup(self):
        with pytest.raises(ValueError, match="before pickup"):
            Assignment(0, (1,), (stop(1, False, 1, 0), stop(1, True, 0, 0)))

    def test_rejects_double_pickup(self):
        with pytest.raises(ValueError, match="twice"):
            Assignment(
                0,
                (1,),
                (stop(1, True, 0, 0), stop(1, True, 0, 0), stop(1, False, 1, 0)),
            )

    def test_rejects_stop_set_mismatch(self):
        with pytest.raises(ValueError, match="exactly"):
            Assignment(0, (1, 2), (stop(1, True, 0, 0), stop(1, False, 1, 0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Assignment(0, (), ())

    def test_pickup_stop_of_unknown_raises(self):
        assignment = Assignment(0, (1,), (stop(1, True, 0, 0), stop(1, False, 1, 0)))
        with pytest.raises(KeyError):
            assignment.pickup_stop_of(9)


class TestDispatchSchedule:
    def _assignment(self, taxi_id, rid):
        return Assignment(
            taxi_id, (rid,), (stop(rid, True, 0, 0), stop(rid, False, 1, 0))
        )

    def test_maps(self):
        schedule = DispatchSchedule()
        schedule.add(self._assignment(0, 1))
        schedule.add(self._assignment(1, 2))
        assert schedule.taxi_of == {1: 0, 2: 1}
        assert schedule.served_request_ids == {1, 2}
        assert schedule.dispatched_taxi_ids == {0, 1}

    def test_validate_catches_duplicate_taxi(self):
        schedule = DispatchSchedule()
        schedule.add(self._assignment(0, 1))
        schedule.add(self._assignment(0, 2))
        taxis = [Taxi(0, Point(0, 0))]
        requests = [
            PassengerRequest(1, Point(0, 0), Point(1, 0)),
            PassengerRequest(2, Point(0, 0), Point(1, 0)),
        ]
        with pytest.raises(ValueError, match="dispatched twice"):
            schedule.validate(taxis, requests)

    def test_validate_catches_unknown_ids(self):
        schedule = DispatchSchedule()
        schedule.add(self._assignment(7, 1))
        with pytest.raises(ValueError, match="unknown taxi"):
            schedule.validate([Taxi(0, Point(0, 0))], [PassengerRequest(1, Point(0, 0), Point(1, 0))])

    def test_validate_catches_duplicate_request(self):
        schedule = DispatchSchedule()
        schedule.add(self._assignment(0, 1))
        schedule.add(self._assignment(1, 1))
        taxis = [Taxi(0, Point(0, 0)), Taxi(1, Point(1, 1))]
        with pytest.raises(ValueError, match="served twice"):
            schedule.validate(taxis, [PassengerRequest(1, Point(0, 0), Point(1, 0))])
