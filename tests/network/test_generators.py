"""Unit tests for the synthetic city generators."""

import math

import pytest

from repro.geometry import Point
from repro.network import grid_city, radial_city, random_geometric_city
from repro.network.shortest_path import dijkstra


class TestGridCity:
    def test_dimensions(self):
        network = grid_city(4, 6, 0.5)
        assert network.node_count == 24
        corner = network.node_point(4 * 6 - 1)
        assert corner == Point(5 * 0.5, 3 * 0.5)

    def test_connected(self):
        network = grid_city(5, 5)
        reachable = dijkstra({u: network.neighbors(u) for u in network.nodes()}, 0)
        assert len(reachable) == network.node_count

    @pytest.mark.parametrize("rows,cols", [(1, 5), (5, 1), (0, 0)])
    def test_rejects_degenerate(self, rows, cols):
        with pytest.raises(ValueError):
            grid_city(rows, cols)

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            grid_city(3, 3, block_km=0.0)


class TestRadialCity:
    def test_node_count(self):
        network = radial_city(rings=3, spokes=8)
        assert network.node_count == 1 + 3 * 8

    def test_ring_radius(self):
        network = radial_city(rings=2, spokes=4, ring_spacing_km=2.0)
        outer = network.node_point(1 + 4)  # first node of ring 2
        assert math.hypot(outer.x, outer.y) == pytest.approx(4.0)

    def test_connected(self):
        network = radial_city(rings=2, spokes=5)
        reachable = dijkstra({u: network.neighbors(u) for u in network.nodes()}, 0)
        assert len(reachable) == network.node_count

    @pytest.mark.parametrize("kwargs", [{"rings": 0, "spokes": 4}, {"rings": 2, "spokes": 2}])
    def test_rejects_degenerate(self, kwargs):
        with pytest.raises(ValueError):
            radial_city(**kwargs)


class TestRandomGeometricCity:
    def test_deterministic(self):
        a = random_geometric_city(100, 10.0, 1.8, seed=5)
        b = random_geometric_city(100, 10.0, 1.8, seed=5)
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count

    def test_largest_component_is_connected(self):
        network = random_geometric_city(150, 10.0, 1.5, seed=1)
        reachable = dijkstra({u: network.neighbors(u) for u in network.nodes()}, 0)
        assert len(reachable) == network.node_count

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            random_geometric_city(1, 10.0, 1.0)
        with pytest.raises(ValueError):
            random_geometric_city(10, -1.0, 1.0)
