"""Unit tests for Dijkstra, A*, and the single-source cache."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.network import SingleSourceCache, astar, dijkstra, dijkstra_to_target


def random_graph(seed, n=40, p=0.15):
    rng = np.random.default_rng(seed)
    adjacency = {u: [] for u in range(n)}
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                w = float(rng.uniform(0.1, 5.0))
                adjacency[u].append((v, w))
                graph.add_edge(u, v, weight=w)
    return adjacency, graph


class TestDijkstra:
    def test_matches_networkx(self):
        adjacency, graph = random_graph(0)
        mine = dijkstra(adjacency, 0)
        reference = nx.single_source_dijkstra_path_length(graph, 0)
        assert set(mine) == set(reference)
        for node, dist in reference.items():
            assert mine[node] == pytest.approx(dist)

    def test_unreachable_nodes_absent(self):
        adjacency = {0: [(1, 1.0)], 1: [], 2: []}
        dist = dijkstra(adjacency, 0)
        assert 2 not in dist
        assert dist[1] == 1.0

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            dijkstra({0: [(1, -1.0)], 1: []}, 0)

    def test_source_distance_zero(self):
        assert dijkstra({0: []}, 0) == {0: 0.0}


class TestDijkstraToTarget:
    def test_early_termination_equals_full(self):
        adjacency, graph = random_graph(1)
        for target in (5, 17, 33):
            full = dijkstra(adjacency, 2).get(target, math.inf)
            assert dijkstra_to_target(adjacency, 2, target) == pytest.approx(full)

    def test_same_node(self):
        assert dijkstra_to_target({0: []}, 0, 0) == 0.0

    def test_unreachable_is_inf(self):
        assert dijkstra_to_target({0: [], 1: []}, 0, 1) == math.inf


class TestAStar:
    def test_zero_heuristic_equals_dijkstra(self):
        adjacency, _ = random_graph(2)
        for target in (3, 11, 29):
            expected = dijkstra_to_target(adjacency, 0, target)
            assert astar(adjacency, 0, target, lambda n: 0.0) == pytest.approx(expected)

    def test_admissible_heuristic_exact_on_line(self):
        # Line graph 0-1-2-3 with unit weights and exact heuristic.
        adjacency = {i: [(i + 1, 1.0)] for i in range(3)}
        adjacency[3] = []
        assert astar(adjacency, 0, 3, lambda n: 3 - n) == pytest.approx(3.0)

    def test_same_node(self):
        assert astar({0: []}, 0, 0, lambda n: 0.0) == 0.0


class TestSingleSourceCache:
    def test_hit_miss_accounting(self):
        adjacency, _ = random_graph(3)
        cache = SingleSourceCache(adjacency, max_sources=4)
        cache.distance(0, 5)
        cache.distance(0, 9)
        cache.distance(1, 5)
        assert cache.misses == 2
        assert cache.hits == 1

    def test_eviction(self):
        adjacency = {i: [((i + 1) % 4, 1.0)] for i in range(4)}
        cache = SingleSourceCache(adjacency, max_sources=2)
        cache.distances_from(0)
        cache.distances_from(1)
        cache.distances_from(2)  # evicts 0
        cache.distances_from(0)  # miss again
        assert cache.misses == 4

    def test_values_match_dijkstra(self):
        adjacency, _ = random_graph(4)
        cache = SingleSourceCache(adjacency)
        assert cache.distances_from(7) == dijkstra(adjacency, 7)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SingleSourceCache({}, max_sources=0)

    def test_clear(self):
        adjacency, _ = random_graph(5)
        cache = SingleSourceCache(adjacency)
        cache.distance(0, 1)
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0


class TestManyToMany:
    def test_matches_scalar_distance(self):
        adjacency, _ = random_graph(6)
        cache = SingleSourceCache(adjacency)
        sources, targets = [0, 3, 7], [1, 4, 9, 12]
        table = cache.many_to_many(sources, targets)
        assert table == [
            [cache.distance(s, t) for t in targets] for s in sources
        ]

    def test_one_dijkstra_per_distinct_source(self):
        adjacency, _ = random_graph(7)
        cache = SingleSourceCache(adjacency)
        cache.many_to_many([2, 5, 2, 5, 2], [0, 1])
        assert cache.misses == 2

    def test_unreachable_pairs_are_inf(self):
        adjacency = {0: [(1, 1.0)], 1: [], 2: []}
        cache = SingleSourceCache(adjacency)
        assert cache.many_to_many([0], [1, 2]) == [[1.0, math.inf]]

    def test_empty_inputs(self):
        cache = SingleSourceCache({0: []})
        assert cache.many_to_many([], [0]) == []
        assert cache.many_to_many([0], []) == [[]]
