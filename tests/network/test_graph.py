"""Unit tests for the road network distance oracle."""

import math

import pytest

from repro.geometry import Point
from repro.network import RoadNetwork, grid_city


class TestConstruction:
    def test_duplicate_node_rejected(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            network.add_node(0, Point(1, 1))

    def test_edge_requires_endpoints(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        with pytest.raises(KeyError):
            network.add_edge(0, 1)

    def test_edge_default_length_is_euclidean(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        network.add_node(1, Point(3, 4))
        network.add_edge(0, 1)
        assert network.node_distance(0, 1) == pytest.approx(5.0)

    def test_negative_length_rejected(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        network.add_node(1, Point(1, 0))
        with pytest.raises(ValueError):
            network.add_edge(0, 1, -1.0)

    def test_oneway_edge(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        network.add_node(1, Point(1, 0))
        network.add_edge(0, 1, 1.0, oneway=True)
        assert network.node_distance(0, 1) == 1.0
        assert network.node_distance(1, 0) == math.inf

    def test_counts(self):
        network = grid_city(3, 3, 1.0)
        assert network.node_count == 9
        # 12 undirected edges => 24 adjacency entries.
        assert network.edge_count == 24


class TestQueries:
    def test_snap_to_nearest_node(self):
        network = grid_city(3, 3, 1.0)
        node, offset = network.snap(Point(0.1, 0.1))
        assert node == 0
        assert offset == pytest.approx(math.hypot(0.1, 0.1))

    def test_grid_distance_is_manhattan(self):
        network = grid_city(5, 5, 1.0)
        # Corner to corner on the lattice equals the Manhattan distance.
        d = network.distance(Point(0, 0), Point(4, 4))
        assert d == pytest.approx(8.0)

    def test_same_snap_uses_direct_distance(self):
        network = grid_city(3, 3, 1.0)
        d = network.distance(Point(0.1, 0.0), Point(0.0, 0.1))
        assert d == pytest.approx(math.hypot(0.1, -0.1))

    def test_distance_includes_snap_offsets(self):
        network = grid_city(2, 2, 1.0)
        d = network.distance(Point(-0.3, 0.0), Point(1.3, 0.0))
        assert d == pytest.approx(0.3 + 1.0 + 0.3)

    def test_empty_network_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork().snap(Point(0, 0))

    def test_cache_stats_increase(self):
        network = grid_city(4, 4, 1.0)
        network.distance(Point(0, 0), Point(3, 3))
        network.distance(Point(0, 0), Point(2, 2))
        hits, misses = network.cache_stats
        assert hits + misses >= 2
