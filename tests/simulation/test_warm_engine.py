"""Engine-level warm-start equivalence on a small city simulation.

The dispatcher- and solver-level identity guarantees live in the
matching and property suites; this one drives the whole stack —
workload synthesis, the simulation engine, the frame cache, the
telemetry plumbing — and checks that flipping ``warm_start`` changes
nothing observable except the perf counters it adds.
"""

import pytest

from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()


@pytest.fixture(scope="module")
def workload():
    profile = nyc_profile()
    scale = ExperimentScale(factor=0.02, seed=5, hours=(17.0, 19.0))
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    return sim_config, fleet, requests


def _run(sim_config, fleet, requests, *, warm, optimize_for="passenger"):
    dispatcher = NSTDDispatcher(
        ORACLE, sim_config.dispatch, optimize_for=optimize_for, warm_start=warm
    )
    simulator = Simulator(dispatcher, ORACLE, sim_config)
    return simulator.run(fleet, requests), simulator


def _observable(result):
    return (
        result.summary(),
        [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in result.outcomes],
        [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.total_drive_km)
            for a in result.assignments
        ],
    )


class TestWarmEngineEquivalence:
    def test_warm_run_identical_to_cold(self, workload):
        sim_config, fleet, requests = workload
        cold, _ = _run(sim_config, fleet, requests, warm=False)
        warm, _ = _run(sim_config, fleet, requests, warm=True)
        assert _observable(cold) == _observable(warm)

    def test_taxi_mode_identical_too(self, workload):
        sim_config, fleet, requests = workload
        cold, _ = _run(sim_config, fleet, requests, warm=False, optimize_for="taxi")
        warm, _ = _run(sim_config, fleet, requests, warm=True, optimize_for="taxi")
        assert _observable(cold) == _observable(warm)

    def test_perf_stats_report_warm_counters(self, workload):
        sim_config, fleet, requests = workload
        result, _ = _run(sim_config, fleet, requests, warm=True)
        perf = result.perf_stats()
        # One cold seed frame, everything else warm, no fallbacks on a
        # deterministic engine-driven trace.
        assert perf["cold_frames"] >= 1
        assert perf["warm_frames"] > 0
        assert perf.get("warm_fallbacks", 0) == 0
        assert 0.0 < perf["warm_hit_rate"] <= 1.0
        assert 0.0 <= perf["warm_rebuild_fraction"] <= 1.0
        # Cold runs carry none of the warm keys: telemetry only exists
        # when the feature is on.
        cold, _ = _run(sim_config, fleet, requests, warm=False)
        assert "warm_frames" not in cold.perf_stats()

    def test_second_run_on_same_simulator_still_identical(self, workload):
        # The engine owns warm-state lifetime: every run() starts cold
        # (engine resets the dispatcher), so reusing a simulator —
        # stale state and all — must not leak frame one of run two.
        sim_config, fleet, requests = workload
        cold, _ = _run(sim_config, fleet, requests, warm=False)
        _, simulator = _run(sim_config, fleet, requests, warm=True)
        again = simulator.run(fleet, requests)
        assert _observable(again) == _observable(cold)
        perf = again.perf_stats()
        assert perf["cold_frames"] >= 1 and perf["warm_frames"] > 0
