"""Unit tests for ``SimulationResult.perf_stats``.

The percentile and budget fields are computed from hand-built
``FrameStats`` series so every expected value is checkable by eye;
one end-to-end run sanity-checks that a real simulation populates them
consistently.
"""

import numpy as np

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import nstd_p
from repro.geometry import EuclideanDistance, Point
from repro.simulation import SimulationResult, Simulator
from repro.simulation.events import FrameStats


def result_with_dispatch_ms(samples, frame_length_s=60.0):
    return SimulationResult(
        dispatcher_name="synthetic",
        outcomes=[],
        assignments=[],
        frames_run=len(samples),
        final_time_s=60.0 * len(samples),
        frame_stats=[
            FrameStats(
                time_s=60.0 * (k + 1),
                queue_length=0,
                idle_taxis=0,
                dispatched_requests=0,
                dispatched_taxis=0,
                abandoned=0,
                dispatch_ms=ms,
            )
            for k, ms in enumerate(samples)
        ],
        frame_length_s=frame_length_s,
    )


class TestPercentiles:
    def test_p50_p95_over_active_frames_only(self):
        # Idle frames (0.0 ms) must not dilute the percentiles.
        samples = [0.0, 0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        perf = result_with_dispatch_ms(samples).perf_stats()
        assert perf["frames"] == 12.0
        assert perf["active_frames"] == 10.0
        # Nearest-rank over the 10 active samples: p50 -> 5th, p95 -> 10th.
        assert perf["p50_dispatch_ms"] == 50.0
        assert perf["p95_dispatch_ms"] == 100.0

    def test_single_active_frame(self):
        perf = result_with_dispatch_ms([0.0, 7.5]).perf_stats()
        assert perf["p50_dispatch_ms"] == 7.5
        assert perf["p95_dispatch_ms"] == 7.5

    def test_empty_run(self):
        perf = result_with_dispatch_ms([]).perf_stats()
        assert perf["frames"] == 0.0
        assert perf["p50_dispatch_ms"] == 0.0
        assert perf["p95_dispatch_ms"] == 0.0
        assert perf["frames_over_budget"] == 0.0


class TestFramesOverBudget:
    def test_counts_frames_exceeding_frame_length(self):
        # 60 s frames: the budget is 60,000 ms; two frames blow it.
        samples = [100.0, 59_999.0, 60_000.0, 60_001.0, 120_000.0]
        perf = result_with_dispatch_ms(samples).perf_stats()
        assert perf["frames_over_budget"] == 2.0

    def test_budget_scales_with_frame_length(self):
        samples = [600.0, 1_500.0]
        perf = result_with_dispatch_ms(samples, frame_length_s=1.0).perf_stats()
        assert perf["frames_over_budget"] == 1.0


class TestEndToEnd:
    def test_real_run_populates_perf_fields(self):
        rng = np.random.default_rng(5)
        oracle = EuclideanDistance()
        taxis = [Taxi(i, Point(*rng.normal(0, 2, 2))) for i in range(4)]
        requests = [
            PassengerRequest(
                j,
                Point(*rng.normal(0, 2, 2)),
                Point(*rng.normal(0, 2, 2)),
                request_time_s=float(rng.uniform(0, 600)),
            )
            for j in range(15)
        ]
        config = SimulationConfig(horizon_s=1800.0, dispatch=DispatchConfig())
        result = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        perf = result.perf_stats()
        assert result.frame_length_s == config.frame_length_s
        assert perf["active_frames"] >= 1.0
        assert 0.0 < perf["p50_dispatch_ms"] <= perf["p95_dispatch_ms"] <= perf["max_dispatch_ms"]
        assert perf["frames_over_budget"] == 0.0  # toy frames never take a minute
