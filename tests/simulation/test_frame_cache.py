"""Unit tests for the per-frame distance memo.

The cache's contract has three legs: exactness (a hit is bit-identical
to the scalar oracle call it replaces), invalidation (taxi-dependent
matrices die at the frame boundary, request-keyed values persist), and
transparency (installing the cache on a dispatcher changes nothing but
wall clock).  Each leg gets its own test class.
"""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, Taxi
from repro.dispatch.nonsharing import (
    GreedyNearestDispatcher,
    MinCostDispatcher,
    MinimaxDispatcher,
    NSTDDispatcher,
)
from repro.dispatch.sharing import STDDispatcher
from repro.geometry import EuclideanDistance, ManhattanDistance, Point
from repro.simulation import FrameDistanceCache

ORACLE = EuclideanDistance()


def small_frame(seed=3, n_taxis=6, n_requests=8, spread=3.0):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, spread, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, spread, 2)), Point(*rng.normal(0, spread, 2)))
        for j in range(n_requests)
    ]
    return taxis, requests


class TestExactness:
    def test_pickup_matrix_matches_scalar_oracle(self):
        taxis, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        matrix = cache.pickup_matrix(taxis, requests)
        for i, taxi in enumerate(taxis):
            for j, request in enumerate(requests):
                assert matrix[i, j] == ORACLE.distance(taxi.location, request.pickup)

    def test_trip_km_matches_scalar_oracle(self):
        _, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        trips = cache.trip_km(requests)
        for j, request in enumerate(requests):
            assert trips[j] == ORACLE.distance(request.pickup, request.dropoff)
        for request in requests:
            assert cache.trip_distance(request) == ORACLE.distance(
                request.pickup, request.dropoff
            )

    def test_pickup_gap_matrix_matches_scalar_oracle(self):
        _, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        gap = cache.pickup_gap_matrix(requests)
        for a, ra in enumerate(requests):
            for b, rb in enumerate(requests):
                assert gap[a, b] == ORACLE.distance(ra.pickup, rb.pickup)

    def test_exact_on_non_batch_oracle(self):
        # Manhattan has no exact batch kernel contract issue either, but
        # exercise a second metric to catch any kernel/metric mixup.
        taxis, requests = small_frame()
        oracle = ManhattanDistance()
        cache = FrameDistanceCache(oracle)
        matrix = cache.pickup_matrix(taxis, requests)
        assert matrix[2, 5] == oracle.distance(taxis[2].location, requests[5].pickup)


class TestInvalidationAndReuse:
    def test_pickup_matrix_reused_within_frame(self):
        taxis, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        cache.begin_frame()
        first = cache.pickup_matrix(taxis, requests)
        second = cache.pickup_matrix(taxis, requests)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_pickup_matrix_dropped_at_frame_boundary(self):
        taxis, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        cache.begin_frame()
        first = cache.pickup_matrix(taxis, requests)
        cache.begin_frame()
        second = cache.pickup_matrix(taxis, requests)
        assert first is not second
        assert cache.misses == 2
        assert cache.frames == 2

    def test_different_orders_get_distinct_correct_matrices(self):
        taxis, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        forward = cache.pickup_matrix(taxis, requests)
        backward = cache.pickup_matrix(taxis[::-1], requests)
        assert np.array_equal(forward[::-1], backward)

    def test_request_keyed_values_survive_frames(self):
        _, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        cache.begin_frame()
        gap = cache.pickup_gap_matrix(requests)
        trips = cache.trip_km(requests)
        cache.begin_frame()
        assert cache.pickup_gap_matrix(requests) is gap
        assert np.array_equal(cache.trip_km(requests), trips)
        assert cache.hits == 2

    def test_trip_memo_computes_only_missing(self):
        _, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        cache.trip_km(requests[:4])
        misses_before = cache.misses
        # Superset: one more batched miss measures only the four new ones.
        full = cache.trip_km(requests)
        assert cache.misses == misses_before + 1
        assert full[0] == ORACLE.distance(requests[0].pickup, requests[0].dropoff)

    def test_prime_trip_km_preloads_the_memo(self):
        # The warm frame solver measures new requests' trips itself and
        # primes the cache; subsequent reads must hit, not recompute.
        _, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        km = [ORACLE.distance(r.pickup, r.dropoff) for r in requests]
        cache.prime_trip_km([r.request_id for r in requests], km)
        assert cache.misses == 0
        np.testing.assert_array_equal(cache.trip_km(requests), km)
        assert cache.trip_distance(requests[0]) == km[0]
        assert cache.hits == 2 and cache.misses == 0

    def test_matrices_are_read_only(self):
        taxis, requests = small_frame()
        cache = FrameDistanceCache(ORACLE)
        matrix = cache.pickup_matrix(taxis, requests)
        gap = cache.pickup_gap_matrix(requests)
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0
        with pytest.raises(ValueError):
            gap[0, 0] = 1.0


class TestDispatcherTransparency:
    """Installing the cache must never change a dispatcher's schedule."""

    CONFIG = DispatchConfig(passenger_threshold_km=4.0, taxi_threshold_km=6.0)

    def dispatchers(self):
        yield GreedyNearestDispatcher(ORACLE, self.CONFIG)
        yield MinCostDispatcher(ORACLE, self.CONFIG)
        yield MinimaxDispatcher(ORACLE, self.CONFIG)
        yield NSTDDispatcher(ORACLE, self.CONFIG, optimize_for="passenger")
        yield NSTDDispatcher(ORACLE, self.CONFIG, optimize_for="taxi")
        yield NSTDDispatcher(ORACLE, self.CONFIG, optimize_for="passenger", use_arrays=False)
        yield STDDispatcher(
            ORACLE, self.CONFIG, optimize_for="passenger", pairing_radius_km=3.0
        )

    def test_schedules_identical_with_and_without_cache(self):
        taxis, requests = small_frame(seed=9, n_taxis=10, n_requests=14)
        for dispatcher in self.dispatchers():
            dispatcher.frame_cache = None
            bare = dispatcher.dispatch(taxis, requests)
            cache = FrameDistanceCache(ORACLE)
            cache.begin_frame()
            dispatcher.frame_cache = cache
            cached = dispatcher.dispatch(taxis, requests)
            bare_pairs = sorted((a.taxi_id, a.request_ids) for a in bare.assignments)
            cached_pairs = sorted((a.taxi_id, a.request_ids) for a in cached.assignments)
            assert bare_pairs == cached_pairs, dispatcher.name
            assert cache.misses > 0, dispatcher.name  # the cache was actually consulted


class TestTripCapacity:
    """The trip memo is bounded: FIFO eviction beyond ``trip_capacity``."""

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameDistanceCache(ORACLE, trip_capacity=0)

    def test_batched_insert_evicts_oldest(self):
        _, requests = small_frame(n_requests=8)
        cache = FrameDistanceCache(ORACLE, trip_capacity=5)
        cache.trip_km(requests)
        stats = cache.stats()
        assert stats["cache_trip_capacity"] == 5
        assert stats["cache_trip_entries"] == 5
        assert stats["cache_evictions"] == 3
        # FIFO: the three oldest-inserted ids (frame order) are gone; a
        # re-read recomputes the same exact value (one more miss), while
        # the newest-inserted ids still hit.
        misses_before = cache.misses
        assert cache.trip_distance(requests[-1]) == ORACLE.distance(
            requests[-1].pickup, requests[-1].dropoff
        )
        assert cache.misses == misses_before
        assert cache.trip_distance(requests[0]) == ORACLE.distance(
            requests[0].pickup, requests[0].dropoff
        )
        assert cache.misses == misses_before + 1

    def test_single_insert_evicts_at_cap(self):
        _, requests = small_frame(n_requests=4)
        cache = FrameDistanceCache(ORACLE, trip_capacity=2)
        for request in requests:
            cache.trip_distance(request)
        assert cache.stats()["cache_trip_entries"] == 2
        assert cache.stats()["cache_evictions"] == 2

    def test_prime_respects_cap(self):
        cache = FrameDistanceCache(ORACLE, trip_capacity=3)
        cache.prime_trip_km(np.arange(10), np.linspace(1.0, 2.0, 10))
        assert cache.stats()["cache_trip_entries"] == 3
        assert cache.stats()["cache_evictions"] == 7

    def test_retirement_counts_as_eviction(self):
        _, requests = small_frame(n_requests=6)
        cache = FrameDistanceCache(ORACLE)
        cache.trip_km(requests)
        cache.pickup_gap_matrix(requests)
        cache.retire_requests([r.request_id for r in requests[:2]])
        stats = cache.stats()
        assert stats["cache_trip_entries"] == 4
        assert stats["cache_gap_entries"] == 0  # the gap key mentioned them
        assert stats["cache_evictions"] == 3  # two trips + one gap matrix

    def test_retiring_unknown_ids_is_a_no_op(self):
        cache = FrameDistanceCache(ORACLE)
        cache.retire_requests([999, 1000])
        assert cache.stats()["cache_evictions"] == 0
