"""Unit tests for the taxi agent state machine."""

import pytest

from repro.core import PassengerRequest, SimulationConfig, Taxi
from repro.core.errors import SimulationError
from repro.dispatch import single_assignment
from repro.geometry import EuclideanDistance, Point
from repro.simulation import TaxiAgent


@pytest.fixture()
def oracle():
    return EuclideanDistance()


@pytest.fixture()
def config():
    return SimulationConfig(taxi_speed_kmh=60.0)  # 1 km per minute


class TestAssign:
    def test_arrival_times_and_final_state(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(0, 0)))
        request = PassengerRequest(1, Point(2, 0), Point(5, 0))
        assignment = single_assignment(agent.snapshot(), request)
        arrivals = agent.assign(assignment, 100.0, oracle, config)
        # 2 km to pickup at 1 km/min = 120 s; 3 km more to dropoff.
        assert arrivals[0].time_s == pytest.approx(100.0 + 120.0)
        assert arrivals[0].is_pickup
        assert arrivals[1].time_s == pytest.approx(100.0 + 120.0 + 180.0)
        assert agent.location == Point(5, 0)
        assert agent.available_at_s == pytest.approx(400.0)
        assert agent.total_driven_km == pytest.approx(5.0)
        assert agent.completed_trips == 1
        assert agent.served_requests == 1

    def test_busy_taxi_rejects_assignment(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(0, 0)))
        request = PassengerRequest(1, Point(2, 0), Point(5, 0))
        agent.assign(single_assignment(agent.snapshot(), request), 0.0, oracle, config)
        request2 = PassengerRequest(2, Point(5, 0), Point(6, 0))
        with pytest.raises(SimulationError):
            agent.assign(single_assignment(agent.snapshot(), request2), 10.0, oracle, config)

    def test_idle_again_after_completion(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(0, 0)))
        request = PassengerRequest(1, Point(1, 0), Point(2, 0))
        agent.assign(single_assignment(agent.snapshot(), request), 0.0, oracle, config)
        assert not agent.is_idle_at(60.0)
        assert agent.is_idle_at(agent.available_at_s)

    def test_wrong_taxi_id_rejected(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(0, 0)))
        other = Taxi(9, Point(0, 0))
        request = PassengerRequest(1, Point(1, 0), Point(2, 0))
        with pytest.raises(SimulationError):
            agent.assign(single_assignment(other, request), 0.0, oracle, config)

    def test_snapshot_reflects_current_position(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(3, Point(0, 0), seats=6))
        request = PassengerRequest(1, Point(1, 0), Point(2, 0))
        agent.assign(single_assignment(agent.snapshot(), request), 0.0, oracle, config)
        snap = agent.snapshot()
        assert snap.taxi_id == 3
        assert snap.seats == 6
        assert snap.location == Point(2, 0)


class TestSnapshotMemoization:
    """Warm-start retention rides on this: unmoved ⇒ same object."""

    def test_idle_agent_presents_the_same_object(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(1, 1)))
        first = agent.snapshot()
        # Many frames of idleness: the engine calls snapshot() per
        # frame and the warm dispatcher classifies by identity.
        assert all(agent.snapshot() is first for _ in range(3))

    def test_movement_rebinds_the_snapshot(self, oracle, config):
        agent = TaxiAgent.from_taxi(Taxi(0, Point(0, 0)))
        before = agent.snapshot()
        request = PassengerRequest(1, Point(1, 0), Point(2, 0))
        agent.assign(single_assignment(before, request), 0.0, oracle, config)
        after = agent.snapshot()
        assert after is not before
        assert after.location == Point(2, 0)
        # Repositioning rebinds ``location`` directly; that alone must
        # invalidate the memo even though no assignment happened.
        agent.location = Point(3, 0)
        moved = agent.snapshot()
        assert moved is not after
        assert moved.location == Point(3, 0)
        assert agent.snapshot() is moved
