"""Unit tests for per-frame telemetry."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import nstd_p, std_p
from repro.geometry import EuclideanDistance, Point
from repro.simulation import Simulator


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def run(oracle, requests, taxis, dispatcher_factory=nstd_p, **config_kwargs):
    defaults = dict(
        frame_length_s=60.0, taxi_speed_kmh=60.0, horizon_s=1800.0, dispatch=DispatchConfig()
    )
    defaults.update(config_kwargs)
    config = SimulationConfig(**defaults)
    return Simulator(dispatcher_factory(oracle, config.dispatch), oracle, config).run(
        taxis, requests
    )


class TestFrameStats:
    def test_dispatched_totals_match_outcomes(self, oracle):
        rng = np.random.default_rng(0)
        taxis = [Taxi(i, Point(*rng.normal(0, 2, 2))) for i in range(3)]
        requests = [
            PassengerRequest(
                j,
                Point(*rng.normal(0, 2, 2)),
                Point(*rng.normal(0, 2, 2)),
                request_time_s=float(rng.uniform(0, 900)),
            )
            for j in range(20)
        ]
        result = run(oracle, requests, taxis)
        assert sum(f.dispatched_requests for f in result.frame_stats) == len(result.served)
        assert sum(f.dispatched_taxis for f in result.frame_stats) == len(result.assignments)
        assert len(result.frame_stats) == result.frames_run

    def test_frame_times_increase_by_frame_length(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [PassengerRequest(0, Point(1, 0), Point(2, 0))]
        result = run(oracle, requests, taxis)
        times = [f.time_s for f in result.frame_stats]
        assert all(b - a == pytest.approx(60.0) for a, b in zip(times, times[1:]))

    def test_queue_builds_when_taxi_busy(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        # One long ride blocks the taxi while three more requests arrive.
        requests = [PassengerRequest(0, Point(1, 0), Point(20, 0), request_time_s=0.0)] + [
            PassengerRequest(j, Point(1, 0), Point(2, 0), request_time_s=100.0) for j in (1, 2, 3)
        ]
        result = run(oracle, requests, taxis, horizon_s=3600.0)
        peak_queue = max(f.queue_length for f in result.frame_stats)
        assert peak_queue >= 3

    def test_abandonment_counted(self, oracle):
        taxis = [Taxi(0, Point(1000.0, 0.0))]
        requests = [PassengerRequest(0, Point(0, 0), Point(1, 0))]
        result = run(
            oracle,
            requests,
            taxis,
            passenger_patience_s=120.0,
            dispatch=DispatchConfig(passenger_threshold_km=5.0),
        )
        assert sum(f.abandoned for f in result.frame_stats) == 1

    def test_sharing_dispatcher_counts_group_assignments(self, oracle):
        taxis = [Taxi(0, Point(0, 0))]
        requests = [
            PassengerRequest(1, Point(0, 0), Point(4, 0), request_time_s=0.0),
            PassengerRequest(2, Point(1, 0), Point(3, 0), request_time_s=0.0),
        ]
        result = run(oracle, requests, taxis, dispatcher_factory=std_p)
        dispatch_frame = next(f for f in result.frame_stats if f.dispatched_requests)
        assert dispatch_frame.dispatched_requests == 2
        assert dispatch_frame.dispatched_taxis == 1  # one shared ride
