"""Engine-level tests of the frame-deadline degradation ladder.

Overruns are driven by the fault injector's deterministic virtual
clock (oracle calls charge virtual seconds), so every scenario here is
bit-reproducible and nothing actually sleeps.
"""

import pytest

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import nstd_p
from repro.geometry import EuclideanDistance, Point
from repro.resilience import (
    DROPPED_RUNG,
    FaultInjector,
    ResiliencePolicy,
    Rung,
)
from repro.simulation import Simulator


def fast_config(**kwargs):
    defaults = dict(
        frame_length_s=60.0,
        taxi_speed_kmh=60.0,
        horizon_s=1800.0,
        dispatch=DispatchConfig(),
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def small_workload(n_taxis=3, n_requests=6):
    taxis = [Taxi(i, Point(float(i), 0.0)) for i in range(n_taxis)]
    requests = [
        PassengerRequest(
            j,
            Point(float(j % 4), 1.0),
            Point(float(j % 4), 4.0),
            request_time_s=30.0 + 60.0 * (j // 3),
        )
        for j in range(n_requests)
    ]
    return taxis, requests


def comparable(result):
    return {
        "outcomes": [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s, o.dropoff_time_s)
            for o in result.outcomes
        ],
        "assignments": [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.revenue_km)
            for a in result.assignments
        ],
        "frames_run": result.frames_run,
    }


class TestNoPolicy:
    def test_result_has_no_resilience_report(self):
        oracle = EuclideanDistance()
        config = fast_config()
        taxis, requests = small_workload()
        result = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        assert result.resilience is None


class TestHealthyPolicy:
    def test_identical_to_unprotected_run(self):
        """A generous, fault-free policy must not change the simulation."""
        oracle = EuclideanDistance()
        config = fast_config()
        taxis, requests = small_workload()
        plain = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        protected = Simulator(
            nstd_p(oracle, config.dispatch),
            oracle,
            config,
            resilience=ResiliencePolicy(),
        ).run(taxis, requests)
        assert comparable(plain) == comparable(protected)
        report = protected.resilience
        assert report is not None and len(report) > 0
        assert report.dropped_frames == 0
        assert not report.degraded_frames
        assert set(report.served_by_rung()) == {"primary"}
        for frame in report.frames:
            assert frame.trigger is None
            assert frame.attempts == 1

    def test_frame_budget_detached_after_run(self):
        oracle = EuclideanDistance()
        config = fast_config()
        taxis, requests = small_workload()
        dispatcher = nstd_p(oracle, config.dispatch)
        Simulator(dispatcher, oracle, config, resilience=ResiliencePolicy()).run(
            taxis, requests
        )
        assert dispatcher.frame_budget is None
        assert dispatcher.frame_cache is None


class TestDegradation:
    def test_slow_oracle_falls_down_to_greedy(self):
        """Huge per-call latency overruns every budgeted rung; the
        unbudgeted greedy terminal rung still answers each frame."""
        injector = FaultInjector(0, per_call_cost_s=1000.0)
        oracle = injector.wrap(EuclideanDistance())
        config = fast_config()
        taxis, requests = small_workload()
        policy = ResiliencePolicy(budget_fraction=0.5).with_injector(injector)
        result = Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
        ).run(taxis, requests)
        report = result.resilience
        assert report.dropped_frames == 0
        assert report.degraded_frames
        for frame in report.degraded_frames:
            assert frame.rung == "greedy"
            assert frame.trigger == "deadline"
            assert frame.elapsed_s > frame.budget_s
        # Every request is still served: degradation, not loss.
        assert result.service_rate == 1.0

    def test_transient_fault_retries_same_rung(self):
        """One deterministic fault on the first armed call: attempt 1
        faults, attempt 2 serves the frame on the primary rung."""
        injector = FaultInjector(0, fail_first_calls=1)
        oracle = injector.wrap(EuclideanDistance())
        config = fast_config()
        taxis, requests = small_workload()
        policy = ResiliencePolicy(transient_retries=2).with_injector(injector)
        result = Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
        ).run(taxis, requests)
        report = result.resilience
        assert report.dropped_frames == 0
        assert report.faults_absorbed == 1
        first = report.frames[0]
        assert first.rung == "primary"
        assert first.trigger == "fault"
        assert first.attempts == 2
        # Later frames are clean: the injector only failed once.
        assert all(f.trigger is None for f in report.frames[1:])

    def test_all_budgeted_ladder_can_drop_a_frame(self):
        """Without an unbudgeted terminal rung the engine answers an
        overrun frame with an empty schedule and records the drop."""
        injector = FaultInjector(0, per_call_cost_s=1000.0)
        oracle = injector.wrap(EuclideanDistance())
        config = fast_config()
        taxis, requests = small_workload()
        policy = ResiliencePolicy(
            budget_fraction=0.5, ladder=(Rung("primary", None),)
        ).with_injector(injector)
        result = Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
        ).run(taxis, requests)
        report = result.resilience
        assert report.dropped_frames > 0
        dropped = [f for f in report.frames if f.rung == DROPPED_RUNG]
        assert all(f.trigger == "deadline" for f in dropped)
        assert report.summary()["dropped_frames"] == float(report.dropped_frames)

    def test_chaos_run_is_reproducible(self):
        """Same plan, same seed: the full result (and the rung history)
        must be bit-identical across runs."""

        def run():
            injector = FaultInjector(
                13, latency_rate=0.05, latency_s=40.0, per_call_cost_s=0.2
            )
            oracle = injector.wrap(EuclideanDistance())
            config = fast_config()
            taxis, requests = small_workload()
            policy = ResiliencePolicy(budget_fraction=0.5).with_injector(injector)
            result = Simulator(
                nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
            ).run(taxis, requests)
            rungs = [(f.rung, f.trigger, f.attempts) for f in result.resilience.frames]
            return comparable(result), rungs

        assert run() == run()

    def test_degraded_frames_still_validate_schedules(self):
        injector = FaultInjector(0, per_call_cost_s=1000.0)
        oracle = injector.wrap(EuclideanDistance())
        config = fast_config()
        taxis, requests = small_workload()
        policy = ResiliencePolicy(budget_fraction=0.5).with_injector(injector)
        result = Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
        ).run(taxis, requests)
        # Greedy-served frames produced real assignments that passed
        # DispatchSchedule.validate (no double-booked taxis/requests).
        assert result.assignments
        taxi_frames = [(a.frame_time_s, a.taxi_id) for a in result.assignments]
        assert len(taxi_frames) == len(set(taxi_frames))


class TestPerfStatsUnderPolicy:
    def test_wall_clock_budget_not_confused_by_virtual_time(self):
        injector = FaultInjector(0, per_call_cost_s=1000.0)
        oracle = injector.wrap(EuclideanDistance())
        config = fast_config()
        taxis, requests = small_workload()
        policy = ResiliencePolicy(budget_fraction=0.5).with_injector(injector)
        result = Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, resilience=policy
        ).run(taxis, requests)
        # dispatch_ms measures *real* wall clock, which stays tiny even
        # though virtual seconds exploded.
        assert result.perf_stats()["frames_over_budget"] == 0.0
