"""Unit tests for the frame-batched simulation engine."""

import math

import pytest

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import GreedyNearestDispatcher, nstd_p
from repro.geometry import EuclideanDistance, Point
from repro.simulation import Simulator


@pytest.fixture()
def oracle():
    return EuclideanDistance()


def fast_config(**kwargs):
    defaults = dict(
        frame_length_s=60.0,
        taxi_speed_kmh=60.0,  # 1 km per minute keeps numbers round
        horizon_s=3600.0,
        dispatch=DispatchConfig(),
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestBasicFlow:
    def test_single_request_lifecycle(self, oracle):
        config = fast_config()
        taxis = [Taxi(0, Point(0, 0))]
        requests = [PassengerRequest(0, Point(1, 0), Point(3, 0), request_time_s=30.0)]
        simulator = Simulator(nstd_p(oracle, config.dispatch), oracle, config)
        result = simulator.run(taxis, requests)
        (outcome,) = result.outcomes
        # Dispatched at the first frame boundary after arrival (t = 60 s).
        assert outcome.dispatch_time_s == 60.0
        assert outcome.dispatch_delay_s == pytest.approx(30.0)
        assert outcome.pickup_time_s == pytest.approx(60.0 + 60.0)
        assert outcome.dropoff_time_s == pytest.approx(60.0 + 60.0 + 120.0)
        assert outcome.passenger_dissatisfaction == pytest.approx(1.0)
        assert result.service_rate == 1.0
        (record,) = result.assignments
        assert record.taxi_dissatisfaction == pytest.approx(1.0 - 2.0)
        assert record.revenue_km == pytest.approx(2.0)

    def test_busy_taxi_queues_second_request(self, oracle):
        config = fast_config()
        taxis = [Taxi(0, Point(0, 0))]
        requests = [
            PassengerRequest(0, Point(1, 0), Point(10, 0), request_time_s=10.0),
            PassengerRequest(1, Point(10, 0), Point(11, 0), request_time_s=20.0),
        ]
        result = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        first, second = result.outcomes
        assert first.dispatch_time_s == 60.0
        # The 10 km plan takes 600 s, so the taxi frees exactly at the
        # 660 s frame boundary and the queued request goes out then.
        assert second.dispatch_time_s == pytest.approx(660.0)
        assert second.dispatch_delay_s == pytest.approx(640.0)

    def test_results_deterministic(self, oracle):
        import numpy as np

        rng = np.random.default_rng(0)
        taxis = [Taxi(i, Point(*rng.normal(0, 2, 2))) for i in range(3)]
        requests = [
            PassengerRequest(
                j,
                Point(*rng.normal(0, 2, 2)),
                Point(*rng.normal(0, 2, 2)),
                request_time_s=float(rng.uniform(0, 1800)),
            )
            for j in range(15)
        ]
        config = fast_config()
        run = lambda: Simulator(  # noqa: E731
            GreedyNearestDispatcher(oracle, config.dispatch), oracle, config
        ).run(taxis, requests)
        a, b = run(), run()
        assert [(o.request_id, o.dispatch_time_s) for o in a.outcomes] == [
            (o.request_id, o.dispatch_time_s) for o in b.outcomes
        ]


class TestPatience:
    def test_requests_expire(self, oracle):
        config = fast_config(passenger_patience_s=120.0)
        # No taxis at all: every request must eventually be abandoned.
        taxis = [Taxi(0, Point(1000.0, 0.0))]
        dispatch = DispatchConfig(passenger_threshold_km=5.0)
        config = SimulationConfig(
            frame_length_s=60.0,
            taxi_speed_kmh=60.0,
            horizon_s=1800.0,
            passenger_patience_s=120.0,
            dispatch=dispatch,
        )
        requests = [PassengerRequest(0, Point(0, 0), Point(1, 0), request_time_s=0.0)]
        result = Simulator(
            GreedyNearestDispatcher(oracle, dispatch), oracle, config, overrun_s=600.0
        ).run(taxis, requests)
        (outcome,) = result.outcomes
        assert not outcome.served
        assert outcome.abandoned

    def test_infinite_patience_keeps_queueing(self, oracle):
        config = fast_config(passenger_patience_s=math.inf)
        taxis = [Taxi(0, Point(0, 0))]
        requests = [
            PassengerRequest(j, Point(1, 0), Point(2, 0), request_time_s=0.0) for j in range(5)
        ]
        result = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        assert result.service_rate == 1.0


class TestResultViews:
    def _result(self, oracle):
        config = fast_config()
        taxis = [Taxi(0, Point(0, 0)), Taxi(1, Point(5, 0))]
        requests = [
            PassengerRequest(0, Point(1, 0), Point(2, 0), request_time_s=0.0),
            PassengerRequest(1, Point(4, 0), Point(3, 0), request_time_s=0.0),
        ]
        return Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)

    def test_summary_keys(self, oracle):
        summary = self._result(oracle).summary()
        assert set(summary) == {
            "service_rate",
            "mean_dispatch_delay_min",
            "mean_passenger_dissatisfaction",
            "mean_taxi_dissatisfaction",
            "shared_ride_fraction",
        }

    def test_views_consistent(self, oracle):
        result = self._result(oracle)
        assert len(result.served) + len(result.unserved) == len(result.outcomes)
        assert len(result.dispatch_delays_min()) == len(result.served)
        assert len(result.passenger_dissatisfactions()) == len(result.served)
        assert len(result.taxi_dissatisfactions()) == len(result.assignments)
        assert result.shared_ride_fraction == 0.0

    def test_errors_on_duplicate_ids(self, oracle):
        config = fast_config()
        simulator = Simulator(nstd_p(oracle, config.dispatch), oracle, config)
        with pytest.raises(Exception):
            simulator.run([Taxi(0, Point(0, 0)), Taxi(0, Point(1, 0))], [])
        with pytest.raises(Exception):
            simulator.run(
                [Taxi(0, Point(0, 0))],
                [
                    PassengerRequest(1, Point(0, 0), Point(1, 0)),
                    PassengerRequest(1, Point(0, 0), Point(1, 0)),
                ],
            )

    def test_requests_beyond_deadline_unserved(self, oracle):
        dispatch = DispatchConfig()
        config = SimulationConfig(
            frame_length_s=60.0, taxi_speed_kmh=60.0, horizon_s=600.0, dispatch=dispatch
        )
        taxis = [Taxi(0, Point(0, 0))]
        # Request arrives after horizon + overrun.
        requests = [PassengerRequest(0, Point(1, 0), Point(2, 0), request_time_s=5000.0)]
        result = Simulator(
            nstd_p(oracle, dispatch), oracle, config, overrun_s=60.0
        ).run(taxis, requests)
        assert result.service_rate == 0.0
