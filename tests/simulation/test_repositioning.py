"""Unit tests for idle-taxi repositioning policies."""

import numpy as np
import pytest

from repro.core import DispatchConfig, PassengerRequest, SimulationConfig, Taxi
from repro.dispatch import nstd_p
from repro.geometry import EuclideanDistance, Point
from repro.simulation import (
    DriftToAnchor,
    DriftToRecentDemand,
    NoRepositioning,
    RepositioningPolicy,
    Simulator,
)


class TestStepToward:
    def test_reaches_close_target(self):
        assert RepositioningPolicy.step_toward(Point(0, 0), Point(1, 0), 5.0) == Point(1, 0)

    def test_partial_step(self):
        moved = RepositioningPolicy.step_toward(Point(0, 0), Point(10, 0), 2.0)
        assert moved == Point(2.0, 0.0)

    def test_zero_gap(self):
        assert RepositioningPolicy.step_toward(Point(1, 1), Point(1, 1), 2.0) == Point(1, 1)


class TestPolicies:
    def test_no_repositioning(self):
        assert NoRepositioning().target_for(0, Point(5, 5)) is None

    def test_anchor_with_deadband(self):
        policy = DriftToAnchor(Point(0, 0), deadband_km=1.0)
        assert policy.target_for(0, Point(0.5, 0)) is None
        assert policy.target_for(0, Point(3, 0)) == Point(0, 0)

    def test_anchor_rejects_negative_deadband(self):
        with pytest.raises(ValueError):
            DriftToAnchor(Point(0, 0), deadband_km=-1.0)

    def test_demand_centroid_tracks_observations(self):
        policy = DriftToRecentDemand(window=2)
        assert policy.centroid is None
        policy.observe_requests(
            [
                PassengerRequest(0, Point(2, 0), Point(3, 0)),
                PassengerRequest(1, Point(4, 0), Point(5, 0)),
            ]
        )
        assert policy.centroid == Point(3, 0)
        # Window evicts the oldest pickup.
        policy.observe_requests([PassengerRequest(2, Point(6, 0), Point(7, 0))])
        assert policy.centroid == Point(5, 0)

    def test_demand_fallback(self):
        policy = DriftToRecentDemand(window=3, fallback=Point(1, 1))
        assert policy.target_for(0, Point(9, 9)) == Point(1, 1)

    def test_demand_rejects_bad_window(self):
        with pytest.raises(ValueError):
            DriftToRecentDemand(window=0)


class TestEngineIntegration:
    def _workload(self):
        rng = np.random.default_rng(3)
        taxis = [Taxi(i, Point(*rng.normal(0, 1, 2))) for i in range(4)]
        requests = []
        for j in range(60):
            pickup = Point(*rng.normal(0, 1, 2))
            angle = rng.uniform(0, 2 * np.pi)
            dropoff = Point(pickup.x + 4 * np.cos(angle), pickup.y + 4 * np.sin(angle))
            requests.append(
                PassengerRequest(j, pickup, dropoff, request_time_s=float(rng.uniform(0, 3600)))
            )
        return taxis, requests

    def _run(self, policy):
        oracle = EuclideanDistance()
        config = SimulationConfig(
            frame_length_s=60.0, taxi_speed_kmh=30.0, horizon_s=3600.0, dispatch=DispatchConfig()
        )
        taxis, requests = self._workload()
        return Simulator(
            nstd_p(oracle, config.dispatch), oracle, config, repositioning=policy
        ).run(taxis, requests)

    def test_anchor_cruising_cuts_pickup_distances(self):
        # Trips radiate 4 km out of a 1 km demand core, so parked taxis
        # strand far away; drifting home must reduce mean pickup distance.
        parked = self._run(None).summary()["mean_passenger_dissatisfaction"]
        cruising = self._run(DriftToAnchor(Point(0, 0))).summary()[
            "mean_passenger_dissatisfaction"
        ]
        assert cruising < parked

    def test_none_equals_no_repositioning_policy(self):
        a = self._run(None)
        b = self._run(NoRepositioning())
        assert [(o.request_id, o.dispatch_time_s) for o in a.outcomes] == [
            (o.request_id, o.dispatch_time_s) for o in b.outcomes
        ]

    def test_all_requests_still_accounted_for(self):
        result = self._run(DriftToRecentDemand(window=20))
        assert len(result.outcomes) == 60
        for outcome in result.outcomes:
            if outcome.served:
                assert outcome.dropoff_time_s is not None
