"""Engine-level durability and runtime-audit behaviour.

Four properties on a small city simulation: (1) installing the
journal/checkpoint subsystem changes nothing observable; (2) a run
interrupted mid-flight resumes from its artifacts to a bit-identical
result with journal-verified replay; (3) a journal whose digests were
tampered with makes the resume *fail loudly* instead of shipping a
silently different run; (4) the stability auditor rides along at zero
divergences on honest runs, and when a warm frame is deliberately
corrupted it detects, heals cold, and records the event while the final
result stays bit-identical to an honest run.
"""

import json
import warnings
import zlib

import pytest

from repro.core.errors import ResumeError
from repro.dispatch.base import single_assignment
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.resilience import (
    DurabilityConfig,
    DurabilityManager,
    StabilityAuditor,
    resume_simulation,
    schedule_pairs,
)
from repro.simulation import Simulator
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()

CHECKPOINT_EVERY = 16


@pytest.fixture(scope="module")
def workload():
    profile = nyc_profile()
    scale = ExperimentScale(factor=0.01, seed=5, hours=(17.0, 18.0))
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    return sim_config, fleet, requests


def make_simulator(sim_config, *, warm=True, durability=None, auditor=None, dispatcher=None):
    if dispatcher is None:
        dispatcher = NSTDDispatcher(ORACLE, sim_config.dispatch, warm_start=warm)
    return Simulator(
        dispatcher, ORACLE, sim_config, durability=durability, auditor=auditor
    )


def observable(result):
    return (
        result.summary(),
        [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in result.outcomes],
        [(a.frame_time_s, a.taxi_id, a.request_ids) for a in result.assignments],
    )


class _Interrupt(RuntimeError):
    """Stands in for SIGKILL inside one process (the real-signal matrix
    lives in tests/integration/test_crash_recovery.py)."""


class InterruptingManager(DurabilityManager):
    def __init__(self, config, *, die_at_frame):
        super().__init__(config)
        self.die_at_frame = die_at_frame

    def crash_point(self, frame, phase):
        if phase == "mid-frame" and frame == self.die_at_frame:
            raise _Interrupt(frame)
        super().crash_point(frame, phase)


class TestDurableRun:
    def test_durable_run_is_observably_identical(self, workload, tmp_path):
        sim_config, fleet, requests = workload
        plain = make_simulator(sim_config).run(fleet, requests)
        manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        durable = make_simulator(sim_config, durability=manager).run(fleet, requests)
        assert observable(durable) == observable(plain)
        # The journal is sealed and a finished snapshot survives.
        from repro.resilience import read_journal

        contents = read_journal(manager.journal_path)
        assert contents.end is not None
        assert contents.end["frames"] == durable.frames_run
        assert manager.store.latest_valid()["finished"] is True

    def test_interrupted_run_resumes_bit_identical(self, workload, tmp_path):
        sim_config, fleet, requests = workload
        reference = make_simulator(sim_config).run(fleet, requests)
        die_at = 40
        manager = InterruptingManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY),
            die_at_frame=die_at,
        )
        with pytest.raises(_Interrupt):
            make_simulator(sim_config, durability=manager).run(fleet, requests)
        resumed_manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        simulator = make_simulator(sim_config, durability=resumed_manager)
        resumed = resume_simulation(simulator, fleet, requests)
        assert observable(resumed) == observable(reference)
        # Snapshot at 31, journal frontier 39: 8 frames replay-verified.
        replayed = resumed.perf_stats()["replay_frames_verified"]
        assert replayed == die_at - CHECKPOINT_EVERY * (die_at // CHECKPOINT_EVERY)

    def test_tampered_journal_digest_fails_the_resume_loudly(self, workload, tmp_path):
        sim_config, fleet, requests = workload
        die_at = 40
        manager = InterruptingManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY),
            die_at_frame=die_at,
        )
        with pytest.raises(_Interrupt):
            make_simulator(sim_config, durability=manager).run(fleet, requests)
        # Rewrite a post-snapshot frame record with a wrong pairs digest,
        # keeping the line checksum valid: integrity passes, replay
        # verification must still catch the divergence.
        lines = manager.journal_path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "frame" and record["frame"] == die_at - 3:
                del record["crc"]
                record["pairs_crc"] = (record["pairs_crc"] + 1) % 2**32
                canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
                record["crc"] = zlib.crc32(canonical.encode())
                lines[i] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        manager.journal_path.write_text("\n".join(lines) + "\n")
        resumed_manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        simulator = make_simulator(sim_config, durability=resumed_manager)
        with pytest.raises(ResumeError, match="diverged from the journal"):
            resume_simulation(simulator, fleet, requests)

    def test_completed_journal_refuses_resume(self, workload, tmp_path):
        sim_config, fleet, requests = workload
        manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        make_simulator(sim_config, durability=manager).run(fleet, requests)
        resumed_manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        simulator = make_simulator(sim_config, durability=resumed_manager)
        with pytest.raises(ResumeError, match="completed run"):
            resume_simulation(simulator, fleet, requests)
        # fresh_ok turns "nothing to resume" (empty dir) into a fresh
        # run, but never overrides a completed journal.
        with pytest.raises(ResumeError, match="completed run"):
            resume_simulation(simulator, fleet, requests, fresh_ok=True)


class CorruptingNSTD(NSTDDispatcher):
    """Ships one deliberately destabilized warm frame, then behaves.

    The corruption swaps the taxi of the first matched request with the
    matched taxi farthest from it — the abandoned near pair is all but
    guaranteed blocking, which is exactly the corruption species the
    auditor exists to catch.
    """

    corruptions = 0

    def dispatch(self, taxis, requests):
        schedule = super().dispatch(taxis, requests)
        if self.corruptions or self.last_frame_mode != "warm":
            return schedule
        pairs = schedule_pairs(schedule, taxis, requests)
        if pairs is None or len(pairs) < 2:
            return schedule
        by_taxi = {t.taxi_id: t for t in taxis}
        by_request = {r.request_id: r for r in requests}
        first_rid = next(iter(pairs))
        anchor = by_request[first_rid].pickup
        far_rid = max(
            (rid for rid in pairs if rid != first_rid),
            key=lambda rid: anchor.distance_to(by_taxi[pairs[rid]].location),
        )
        pairs[first_rid], pairs[far_rid] = pairs[far_rid], pairs[first_rid]
        self.corruptions = 1
        from repro.core.types import DispatchSchedule

        corrupted = DispatchSchedule()
        for rid, tid in pairs.items():
            corrupted.add(single_assignment(by_taxi[tid], by_request[rid]))
        return corrupted


class TestEngineAudit:
    def test_honest_run_audits_clean(self, workload):
        sim_config, fleet, requests = workload
        auditor = StabilityAuditor(rate=1.0)
        result = make_simulator(sim_config, auditor=auditor).run(fleet, requests)
        perf = result.perf_stats()
        assert perf["frames_audited"] > 0
        assert perf["audit_divergences"] == 0
        assert perf["audit_healed"] == 0
        assert perf["audit_overhead_fraction"] >= 0.0
        # Audit telemetry never exists when no auditor is installed.
        plain = make_simulator(sim_config).run(fleet, requests)
        assert "frames_audited" not in plain.perf_stats()

    def test_corrupted_warm_frame_is_detected_healed_and_recorded(self, workload):
        sim_config, fleet, requests = workload
        honest = make_simulator(sim_config).run(fleet, requests)
        dispatcher = CorruptingNSTD(ORACLE, sim_config.dispatch, warm_start=True)
        auditor = StabilityAuditor(rate=1.0)
        result = make_simulator(
            sim_config, auditor=auditor, dispatcher=dispatcher
        ).run(fleet, requests)
        assert dispatcher.corruptions == 1
        divergences = result.stability_audit.divergences
        assert len(divergences) == 1
        record = divergences[0]
        assert record.diverged and record.healed
        assert record.blocking_pairs != 0
        perf = result.perf_stats()
        assert perf["audit_divergences"] == 1
        assert perf["audit_healed"] == 1
        # Healing recomputed the frame cold after dropping warm state...
        assert result.dispatch_telemetry.get("warm_invalidation_audit-divergence", 0) == 1
        # ...so the corruption never reached taxi motion: observables
        # match an honest run exactly.
        assert observable(result) == observable(honest)

    def test_audit_sampling_survives_resume(self, workload, tmp_path):
        # The sampler is hash-based on (seed, frame index): a resumed run
        # audits exactly the frames the uninterrupted one audits.
        sim_config, fleet, requests = workload
        auditor = StabilityAuditor(rate=0.5)
        uninterrupted = make_simulator(sim_config, auditor=auditor).run(fleet, requests)
        audited_frames = [r.frame for r in uninterrupted.stability_audit.frames]
        manager = InterruptingManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY),
            die_at_frame=40,
        )
        with pytest.raises(_Interrupt):
            make_simulator(
                sim_config, durability=manager, auditor=StabilityAuditor(rate=0.5)
            ).run(fleet, requests)
        resumed_manager = DurabilityManager(
            DurabilityConfig(tmp_path, checkpoint_every_frames=CHECKPOINT_EVERY)
        )
        simulator = make_simulator(
            sim_config, durability=resumed_manager, auditor=StabilityAuditor(rate=0.5)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = resume_simulation(simulator, fleet, requests)
        assert [r.frame for r in resumed.stability_audit.frames] == audited_frames
