"""Engine-level sharded equivalence and the packed execution fast path.

The matching and dispatcher suites pin per-frame identity; these tests
drive the whole stack — workload synthesis, the engine's packed-schedule
branch, the frame cache, telemetry — and check that flipping ``sharded``
changes nothing observable but the perf counters, that the engine's
packed fast path and its generic fallback execute identical frames, and
that malformed packed schedules are rejected rather than executed.
"""

import numpy as np
import pytest

from repro.dispatch.base import PackedSingleSchedule
from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace.profiles import nyc_profile

ORACLE = EuclideanDistance()


@pytest.fixture(scope="module")
def workload():
    profile = nyc_profile()
    scale = ExperimentScale(factor=0.02, seed=5, hours=(17.0, 19.0))
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    return sim_config, fleet, requests


def _run(sim_config, fleet, requests, *, dispatcher=None, **kwargs):
    if dispatcher is None:
        dispatcher = NSTDDispatcher(
            ORACLE, sim_config.dispatch, optimize_for="passenger", **kwargs
        )
    simulator = Simulator(dispatcher, ORACLE, sim_config)
    return simulator.run(fleet, requests)


def _observable(result):
    return (
        result.summary(),
        [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s)
            for o in result.outcomes
        ],
        [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.total_drive_km, a.revenue_km)
            for a in result.assignments
        ],
    )


class _PassThroughDispatcher(NSTDDispatcher):
    """Sharded warm dispatcher whose packed schedules are re-wrapped.

    Copying the sequences breaks the engine's ``is``-identity check, so
    every packed frame is forced down the generic validation path — the
    two runs must still be indistinguishable.
    """

    def dispatch(self, taxis, requests):
        schedule = super().dispatch(taxis, requests)
        if isinstance(schedule, PackedSingleSchedule):
            return PackedSingleSchedule(
                list(schedule.taxis),
                list(schedule.requests),
                schedule.taxi_rows,
                schedule.request_rows,
                pickup_km=schedule.pickup_km,
                trip_km=schedule.trip_km,
            )
        return schedule


class _CorruptPackedDispatcher(NSTDDispatcher):
    """Duplicates the first matched row pair of every packed frame."""

    def dispatch(self, taxis, requests):
        schedule = super().dispatch(taxis, requests)
        if isinstance(schedule, PackedSingleSchedule) and schedule.taxi_rows.size:
            dup = np.concatenate([schedule.taxi_rows[:1], schedule.taxi_rows])
            dup_r = np.concatenate([schedule.request_rows[:1], schedule.request_rows])
            return PackedSingleSchedule(schedule.taxis, schedule.requests, dup, dup_r)
        return schedule


class TestShardedEngineEquivalence:
    def test_sharded_warm_run_identical_to_cold(self, workload):
        sim_config, fleet, requests = workload
        cold = _run(sim_config, fleet, requests)
        sharded = _run(sim_config, fleet, requests, warm_start=True, sharded=True)
        assert _observable(cold) == _observable(sharded)

    def test_sharded_cold_run_identical_too(self, workload):
        sim_config, fleet, requests = workload
        cold = _run(sim_config, fleet, requests)
        sharded = _run(sim_config, fleet, requests, sharded=True)
        assert _observable(cold) == _observable(sharded)

    def test_perf_stats_report_shard_counters(self, workload):
        sim_config, fleet, requests = workload
        result = _run(sim_config, fleet, requests, warm_start=True, sharded=True)
        perf = result.perf_stats()
        assert perf["sharded_frames"] > 0
        assert perf.get("shards_degraded", 0) == 0
        if perf.get("shard_decomposed_frames", 0):
            assert perf["shard_count_mean"] >= 1.0
            assert 0.0 < perf["largest_shard_fraction"] <= 1.0
        # Cold non-sharded runs carry none of the shard keys.
        assert "sharded_frames" not in _run(sim_config, fleet, requests).perf_stats()

    def test_generic_fallback_identical_to_packed_path(self, workload):
        sim_config, fleet, requests = workload
        packed = _run(sim_config, fleet, requests, warm_start=True, sharded=True)
        rewrapped = _run(
            sim_config,
            fleet,
            requests,
            dispatcher=_PassThroughDispatcher(
                ORACLE,
                sim_config.dispatch,
                optimize_for="passenger",
                warm_start=True,
                sharded=True,
            ),
        )
        assert _observable(packed) == _observable(rewrapped)

    def test_corrupt_packed_rows_are_rejected(self, workload):
        sim_config, fleet, requests = workload
        dispatcher = _CorruptPackedDispatcher(
            ORACLE,
            sim_config.dispatch,
            optimize_for="passenger",
            warm_start=True,
            sharded=True,
        )
        with pytest.raises(ValueError, match="duplicate or out-of-range"):
            _run(sim_config, fleet, requests, dispatcher=dispatcher)
