"""Stable dispatch on a road network instead of the Euclidean plane.

Generates a Manhattan-style street lattice, uses true shortest-path
distances as the oracle for both preference building and simulation,
and contrasts the resulting metrics against the same workload measured
with straight-line distances.

Run:  python examples/road_network_dispatch.py
"""

import numpy as np

from repro import (
    DispatchConfig,
    EuclideanDistance,
    PassengerRequest,
    Point,
    SimulationConfig,
    Taxi,
    Simulator,
    nstd_p,
)
from repro.analysis import format_table
from repro.network import grid_city


def build_workload(seed: int, span_km: float, n_taxis: int, n_requests: int):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.uniform(0, span_km, 2))) for i in range(n_taxis)]
    requests = [
        PassengerRequest(
            j,
            Point(*rng.uniform(0, span_km, 2)),
            Point(*rng.uniform(0, span_km, 2)),
            request_time_s=float(rng.uniform(0, 1800)),
        )
        for j in range(n_requests)
    ]
    return taxis, requests


def main() -> None:
    # A 4 km x 4 km downtown with 200 m blocks.
    network = grid_city(21, 21, 0.2)
    euclid = EuclideanDistance()
    taxis, requests = build_workload(seed=3, span_km=4.0, n_taxis=8, n_requests=40)

    rows = []
    for label, oracle in (("euclidean", euclid), ("road network", network)):
        config = SimulationConfig(
            frame_length_s=60.0,
            taxi_speed_kmh=20.0,
            horizon_s=3600.0,
            dispatch=DispatchConfig(),
        )
        result = Simulator(nstd_p(oracle, config.dispatch), oracle, config).run(taxis, requests)
        summary = result.summary()
        rows.append(
            [
                label,
                summary["service_rate"],
                summary["mean_dispatch_delay_min"],
                summary["mean_passenger_dissatisfaction"],
                summary["mean_taxi_dissatisfaction"],
            ]
        )
    print("NSTD-P on the same workload under two distance oracles")
    print(format_table(["oracle", "service_rate", "delay_min", "pass. dissat", "taxi dissat"], rows))
    print(
        "\nStreet-grid shortest paths are never shorter than straight lines, "
        "so pickup distances (passenger dissatisfaction) rise; the dispatch "
        "algorithm code is identical — only the injected oracle changed."
    )


if __name__ == "__main__":
    main()
