"""Forensics on one simulated day: load timeline and driver incomes.

Runs the scaled Boston day under NSTD-P, then answers the questions a
fleet operator would actually ask: when did the queue build, how many
passengers walked away, and how evenly did drivers earn?  Also freezes
the exact workload to CSV so the run can be replayed elsewhere.

Run:  python examples/workload_forensics.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import (
    driver_income_report,
    format_table,
    load_profile,
    timeline_table,
)
from repro.dispatch import nstd_p
from repro.experiments import ExperimentScale, build_workload, city_simulation_config
from repro.geometry import EuclideanDistance
from repro.simulation import Simulator
from repro.trace import boston_profile
from repro.trace.persistence import load_requests_csv, save_requests_csv


def main(scale_arg: float = 0.03) -> None:
    profile = boston_profile()
    scale = ExperimentScale(factor=scale_arg, seed=23)
    fleet, requests = build_workload(profile, scale)
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    oracle = EuclideanDistance()

    result = Simulator(nstd_p(oracle, sim_config.dispatch), oracle, sim_config).run(
        fleet, requests
    )

    print(timeline_table(result, buckets=12))
    indicators = load_profile(result)
    print(
        f"\npeak queue {indicators['peak_queue']:.0f}, mean queue "
        f"{indicators['mean_queue']:.1f}, abandonment rate "
        f"{indicators['abandonment_rate']:.1%}"
    )

    report = driver_income_report({"NSTD-P": result})["NSTD-P"]
    print("\ndriver income")
    print(
        format_table(
            ["mean revenue km", "gini", "jain", "paid ratio", "idle drivers"],
            [[
                report["mean_revenue_km"],
                report["revenue_gini"],
                report["revenue_jain"],
                report["mean_paid_ratio"],
                report["idle_driver_share"],
            ]],
        )
    )

    top_earners = sorted(
        result.taxi_stats.values(), key=lambda s: s.revenue_km, reverse=True
    )[:5]
    print("\ntop-earning drivers")
    print(
        format_table(
            ["taxi", "revenue km", "driven km", "rides", "paid ratio"],
            [[s.taxi_id, s.revenue_km, s.driven_km, s.rides, s.paid_ratio] for s in top_earners],
        )
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.csv"
        written = save_requests_csv(requests, path)
        replayed = load_requests_csv(path)
        print(
            f"\nworkload frozen and replayed: {written} requests saved, "
            f"{len(replayed)} loaded back bit-faithfully"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
