"""Ties from quantized scores: why Király's algorithm earns its keep.

Fare meters and map-matched distances are quantized in practice, so
drivers are routinely *indifferent* between requests.  With ties and
thresholds, maximum weakly stable matching is NP-hard (the paper's
[14]); Király's promotion algorithm ([15]) guarantees 3/2 of the
optimum in linear time.  This example quantizes the paper's preference
scores at increasing resolutions and compares

* arbitrary tie-breaking + Algorithm 1 (what a naive port would do),
* Király's promotion algorithm, and
* the exact optimum (brute force, small instance)

on how many passengers get served.

Run:  python examples/quantized_fares_ties.py
"""

import numpy as np

from repro import DispatchConfig, EuclideanDistance, PassengerRequest, Point, Taxi
from repro.analysis import format_table
from repro.matching import (
    build_nonsharing_table,
    build_tied_nonsharing_table,
    deferred_acceptance,
    kiraly_max_stable,
    max_weakly_stable_brute_force,
    weakly_stable,
)


def build_market(seed: int, n: int = 7):
    rng = np.random.default_rng(seed)
    taxis = [Taxi(i, Point(*rng.normal(0, 2, 2))) for i in range(n)]
    requests = [
        PassengerRequest(j, Point(*rng.normal(0, 2, 2)), Point(*rng.normal(0, 2, 2)))
        for j in range(n + 2)
    ]
    return taxis, requests


def main() -> None:
    oracle = EuclideanDistance()
    config = DispatchConfig(passenger_threshold_km=3.0, taxi_threshold_km=1.0)
    rows = []
    for resolution in (0.05, 0.25, 0.5, 1.0):
        naive_total = kiraly_total = optimal_total = 0
        for seed in range(12):
            taxis, requests = build_market(seed)
            tied = build_tied_nonsharing_table(
                taxis, requests, oracle, config, resolution_km=resolution
            )
            strict = build_nonsharing_table(taxis, requests, oracle, config)
            naive = deferred_acceptance(strict)  # ties broken by id
            kiraly = kiraly_max_stable(tied)
            assert weakly_stable(tied, kiraly)
            optimum = max_weakly_stable_brute_force(tied)
            naive_total += naive.size
            kiraly_total += kiraly.size
            optimal_total += optimum.size
        rows.append([resolution, naive_total, kiraly_total, optimal_total])
    print("served passengers over 12 markets (7 taxis, 9 requests each)")
    print(
        format_table(
            ["resolution km", "naive GS", "Kiraly", "optimum"], rows, float_format="{:.2f}"
        )
    )
    print(
        "\nCoarser quantization = more ties = more room for the promotion "
        "mechanism to recover matches a naive tie-break leaves on the "
        "table. Kiraly is guaranteed within 3/2 of the optimum."
    )


if __name__ == "__main__":
    main()
