"""Quickstart: dispatch one frame of taxis with matching stability.

Builds a six-taxi, eight-request frame, runs the paper's Algorithm 1
(NSTD-P), verifies the result is stable, and prints who got which taxi
with both sides' dissatisfaction scores.

Run:  python examples/quickstart.py
"""

from repro import (
    DispatchConfig,
    EuclideanDistance,
    PassengerRequest,
    Point,
    Taxi,
    assignment_metrics,
    build_nonsharing_table,
    find_blocking_pairs,
    nstd_p,
)
from repro.matching import Matching


def main() -> None:
    oracle = EuclideanDistance()
    config = DispatchConfig(passenger_threshold_km=6.0, taxi_threshold_km=6.0)

    taxis = [
        Taxi(0, Point(0.0, 0.0)),
        Taxi(1, Point(2.0, 1.0)),
        Taxi(2, Point(-1.5, 2.0)),
        Taxi(3, Point(4.0, -1.0)),
        Taxi(4, Point(-3.0, -2.0)),
        Taxi(5, Point(1.0, 3.5)),
    ]
    requests = [
        PassengerRequest(0, Point(0.5, 0.5), Point(5.0, 2.0)),
        PassengerRequest(1, Point(2.5, 0.0), Point(-2.0, -3.0)),
        PassengerRequest(2, Point(-1.0, 1.0), Point(0.0, 6.0)),
        PassengerRequest(3, Point(3.5, -0.5), Point(3.0, 4.0)),
        PassengerRequest(4, Point(-2.5, -1.0), Point(2.0, -2.0)),
        PassengerRequest(5, Point(1.5, 3.0), Point(-4.0, 0.0)),
        PassengerRequest(6, Point(9.0, 9.0), Point(10.0, 10.0)),  # too remote
        PassengerRequest(7, Point(0.0, -1.0), Point(0.5, -1.2)),  # short hop
    ]

    dispatcher = nstd_p(oracle, config)
    schedule = dispatcher.dispatch(taxis, requests)

    table = build_nonsharing_table(taxis, requests, oracle, config)
    blocking = find_blocking_pairs(table, Matching(schedule.taxi_of))
    print(f"dispatcher: {dispatcher.name}")
    print(f"stable:     {not blocking} (blocking pairs: {blocking})")
    print()

    taxis_by_id = {t.taxi_id: t for t in taxis}
    requests_by_id = {r.request_id: r for r in requests}
    print(f"{'request':>8} {'taxi':>5} {'pickup km':>10} {'passenger':>10} {'driver':>8}")
    for assignment in schedule.assignments:
        metrics = assignment_metrics(
            taxis_by_id[assignment.taxi_id], assignment, requests_by_id, oracle, config
        )
        for rid in assignment.request_ids:
            print(
                f"{rid:>8} {assignment.taxi_id:>5} "
                f"{metrics.pickup_distance_km[rid]:>10.2f} "
                f"{metrics.passenger_dissatisfaction[rid]:>10.2f} "
                f"{metrics.taxi_dissatisfaction:>8.2f}"
            )
    unserved = sorted(set(requests_by_id) - schedule.served_request_ids)
    print(f"\nunserved requests (matched to dummy): {unserved}")


if __name__ == "__main__":
    main()
