"""A full (scaled) Boston day under all five non-sharing dispatchers.

Reproduces the Fig. 5 comparison at example scale: simulates the same
synthetic Boston trace under NSTD-P, NSTD-T, Greedy, MCBM and MMCM and
prints summary metrics plus dispatch-delay CDF samples.

Run:  python examples/nonsharing_city_day.py [scale]
"""

import sys

from repro.analysis import empirical_cdf, format_cdf_table, format_summary_table
from repro.experiments import (
    NONSHARING_ALGORITHMS,
    ExperimentScale,
    run_city_experiment,
)
from repro.trace import boston_profile


def main(scale_arg: float = 0.02) -> None:
    scale = ExperimentScale(factor=scale_arg, seed=7)
    profile = boston_profile()
    print(
        f"simulating one synthetic Boston day at scale {scale_arg:g} "
        f"(~{profile.scaled(scale_arg).daily_requests} requests, "
        f"{profile.scaled(scale_arg).n_taxis} taxis)"
    )
    results = run_city_experiment(profile, NONSHARING_ALGORITHMS, scale)

    print("\nsummary (means; dissatisfaction in km, delay in minutes)")
    print(format_summary_table({name: r.summary() for name, r in results.items()}))

    delay_cdfs = {name: empirical_cdf(r.dispatch_delays_min()) for name, r in results.items()}
    print("\ndispatch delay CDF (fraction of requests dispatched within X minutes)")
    print(format_cdf_table(delay_cdfs, [1, 2, 5, 10, 30, 60], value_label="min"))

    taxi_cdfs = {name: empirical_cdf(r.taxi_dissatisfactions()) for name, r in results.items()}
    grid = sorted({round(taxi_cdfs[n].quantile(q), 1) for n in taxi_cdfs for q in (0.25, 0.5, 0.9)})
    print("\ntaxi dissatisfaction CDF (fraction of rides below X km)")
    print(format_cdf_table(taxi_cdfs, grid, value_label="km"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
