"""A tour of the stable-matching lattice (Algorithm 2).

Builds a contested six-by-six market, enumerates every stable matching
with the paper's BreakDispatch procedure, and shows

* the passenger-optimal matching (Algorithm 1 / NSTD-P),
* the taxi-optimal matching (NSTD-T),
* the mean preference ranks both sides get at each lattice point, and
* the company's revenue at each (constant, by Theorem 2 — every stable
  matching serves the same requests).

Run:  python examples/all_stable_matchings_tour.py
"""

import numpy as np

from repro import (
    DispatchConfig,
    EuclideanDistance,
    PassengerRequest,
    Point,
    Taxi,
    build_nonsharing_table,
)
from repro.analysis import format_table
from repro.matching import (
    all_stable_matchings,
    company_revenue,
    passenger_optimal,
    rank_profile,
    taxi_optimal,
)


def contested_market(oracle, config, n=8, min_matchings=2):
    """Search seeds for a market whose stable lattice has several points.

    A structural fact this reproduction surfaced: with the paper's
    homogeneous driver coefficient α, the two sides' scores for a pair
    differ only by a request-side term, every candidate trading cycle's
    inequalities cancel, and the stable matching is *unique* — NSTD-P
    and NSTD-T coincide on every instance.  To exhibit a real lattice we
    use the library's driver-heterogeneity extension: each taxi draws a
    personal α (some drivers chase fares, some hate deadheading).
    """
    for seed in range(2000):
        rng = np.random.default_rng(seed)
        taxis = [Taxi(i, Point(*rng.normal(0, 3, 2))) for i in range(n)]
        requests = [
            PassengerRequest(j, Point(*rng.normal(0, 3, 2)), Point(*rng.normal(0, 3, 2)))
            for j in range(n)
        ]
        alphas = {i: float(rng.uniform(0.0, 4.0)) for i in range(n)}
        table = build_nonsharing_table(taxis, requests, oracle, config, alpha_by_taxi=alphas)
        matchings = all_stable_matchings(table)
        if len(matchings) >= min_matchings:
            return seed, taxis, requests, table
    raise RuntimeError("no contested market found")


def main() -> None:
    oracle = EuclideanDistance()
    config = DispatchConfig(passenger_threshold_km=9.0, taxi_threshold_km=9.0)
    seed, taxis, requests, table = contested_market(oracle, config)
    print(f"market seed {seed}: {len(taxis)} heterogeneous-alpha taxis, {len(requests)} requests")

    matchings, stats = all_stable_matchings(table, with_stats=True)
    print(f"stable matchings found: {len(matchings)}")
    print(f"break attempts: {stats.break_attempts}, successes: {stats.break_successes}")
    print()

    p_best = passenger_optimal(table)
    t_best = taxi_optimal(table)
    rows = []
    for index, matching in enumerate(matchings):
        p_rank, t_rank = rank_profile(table, matching)
        tags = []
        if matching == p_best:
            tags.append("passenger-optimal")
        if matching == t_best:
            tags.append("taxi-optimal")
        rows.append(
            [
                index,
                ", ".join(f"{p}->{r}" for p, r in sorted(matching.pairs)),
                p_rank,
                t_rank,
                company_revenue(matching, requests, oracle),
                " ".join(tags),
            ]
        )
    print(
        format_table(
            ["#", "matching", "mean pass. rank", "mean taxi rank", "revenue km", "notes"],
            rows,
        )
    )
    print(
        "\nLower rank = closer to that side's first choice.  Walking the "
        "lattice from the passenger-optimal matching, passengers only lose "
        "and taxis only gain — revenue stays constant because every stable "
        "matching serves the same request set (Theorem 2)."
    )

    # Part two: a hand-built cyclic market whose lattice has three points,
    # the textbook shape Algorithm 2 is designed to explore.
    from repro.matching import PreferenceTable

    cyclic = PreferenceTable(
        proposer_prefs={0: (100, 101, 102), 1: (101, 102, 100), 2: (102, 100, 101)},
        reviewer_prefs={100: (1, 2, 0), 101: (2, 0, 1), 102: (0, 1, 2)},
    )
    lattice = all_stable_matchings(cyclic)
    print(f"\nhand-built cyclic 3x3 market: {len(lattice)} stable matchings")
    for matching in lattice:
        print("  ", ", ".join(f"r{p}->t{r - 100}" for p, r in sorted(matching.pairs)))


if __name__ == "__main__":
    main()
