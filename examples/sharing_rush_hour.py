"""Morning rush with shared taxis: Algorithm 3 versus the baselines.

Simulates a Boston morning rush window (7–10 am) where demand outruns
the fleet and sharing pays off, comparing STD-P/STD-T against RAII,
SARP and the ILP heuristic.  Prints per-algorithm summaries and the
group-size mix each policy produced.

Run:  python examples/sharing_rush_hour.py [scale]
"""

import sys
from collections import Counter

from repro.analysis import format_summary_table, format_table
from repro.experiments import SHARING_ALGORITHMS, ExperimentScale, run_city_experiment
from repro.trace import boston_profile


def main(scale_arg: float = 0.03) -> None:
    scale = ExperimentScale(factor=scale_arg, seed=11, hours=(7.0, 10.0))
    profile = boston_profile()
    print(f"simulating the 7-10 am Boston rush at scale {scale_arg:g}")
    results = run_city_experiment(profile, SHARING_ALGORITHMS, scale)

    print("\nsummary (means; dissatisfaction in km, delay in minutes)")
    print(format_summary_table({name: r.summary() for name, r in results.items()}))

    rows = []
    for name, result in results.items():
        mix = Counter(record.group_size for record in result.assignments)
        total = sum(mix.values()) or 1
        rows.append(
            [
                name,
                mix.get(1, 0),
                mix.get(2, 0),
                mix.get(3, 0),
                100.0 * (total - mix.get(1, 0)) / total,
            ]
        )
    print("\nride mix (dispatches by on-board group size)")
    print(format_table(["algorithm", "solo", "pairs", "triples", "shared %"], rows))

    print(
        "\nreading guide: STD-P/STD-T should lead all three dissatisfaction "
        "metrics (the paper's Fig. 9); RAII trails because its index "
        "retrieval is lossy, SARP because insertion order locks in early "
        "mistakes."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
