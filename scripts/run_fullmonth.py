#!/usr/bin/env python
"""Opt-in full-month wall clock: cold vs warm-start NSTD, day by day.

``BENCH_cityday.json`` times one paper-scale day; this script extends
the comparison to a month of them, which is the operating regime the
warm-start layer actually targets (a dispatcher that never restarts).
Each day ``d`` draws its own trace with seed ``base_seed + d``, so
traffic varies across days while the whole month stays reproducible;
request ids are unique within each day's run, which is the scope the
engine requires.  Every day is simulated twice — cold and warm — and
asserted bit-identical (summary, outcomes, assignments) before its
wall clock counts, so a month-long divergence cannot hide in totals.

This is deliberately a script, not a benchmark test: a month at scale
1.0 is minutes of CPU, far beyond what the regression guard should
gate on.  Run it when touching the warm-start layer::

    PYTHONPATH=src python scripts/run_fullmonth.py                    # 31 days, scale 1.0
    PYTHONPATH=src python scripts/run_fullmonth.py --days 3 --scale 0.1   # quick probe

A month-long soak should survive interruption.  ``--checkpoint-dir``
makes every day's run durable (journal + periodic snapshots, see
DESIGN.md §12) and records finished days in a progress ledger;
``--resume`` picks the soak back up after a crash or Ctrl-C — finished
days are skipped entirely, the interrupted day resumes from its latest
snapshot, and the resumed day is still asserted bit-identical across
cold and warm::

    PYTHONPATH=src python scripts/run_fullmonth.py --checkpoint-dir /tmp/soak
    # ... SIGKILL at day 17 ...
    PYTHONPATH=src python scripts/run_fullmonth.py --checkpoint-dir /tmp/soak --resume
"""

from __future__ import annotations

import argparse
import json
import shutil
import time
from pathlib import Path

from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import (
    ExperimentScale,
    build_workload,
    city_simulation_config,
    environment_metadata,
    profile_by_name,
)
from repro.geometry import EuclideanDistance
from repro.resilience import (
    DurabilityConfig,
    DurabilityManager,
    read_journal,
    resume_simulation,
)
from repro.simulation import SimulationResult, Simulator

#: Schema of the soak progress ledger written under ``--checkpoint-dir``.
LEDGER_SCHEMA = "fullmonth-progress/1"

LEDGER_NAME = "progress.json"


def simulate_day(
    profile_name: str,
    scale: ExperimentScale,
    *,
    optimize_for: str,
    warm: bool,
    durability_dir: Path | None = None,
    resume: bool = False,
) -> tuple[SimulationResult, float]:
    """One full simulated day; returns (result, e2e wall seconds)."""
    profile = profile_by_name(profile_name)
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    oracle = EuclideanDistance()
    dispatcher = NSTDDispatcher(
        oracle, sim_config.dispatch, optimize_for=optimize_for, warm_start=warm
    )
    durability = None
    if durability_dir is not None:
        if resume:
            _discard_completed_leg(durability_dir)
        durability = DurabilityManager(DurabilityConfig(durability_dir))
    simulator = Simulator(dispatcher, oracle, sim_config, durability=durability)
    start = time.perf_counter()
    if resume and durability is not None:
        result = resume_simulation(simulator, fleet, requests, fresh_ok=True)
    else:
        result = simulator.run(fleet, requests)
    return result, time.perf_counter() - start


def _discard_completed_leg(durability_dir: Path) -> None:
    """Clear a leg directory whose journal records a *finished* run.

    Happens when the soak died between a leg completing and its day
    being recorded in the ledger (e.g. cold finished, warm was killed).
    ``resume_simulation`` rightly refuses a completed journal, so the
    leg is recomputed from scratch — deterministic, hence identical.
    """
    journal_path = durability_dir / "journal.jsonl"
    if journal_path.exists() and read_journal(journal_path).end is not None:
        shutil.rmtree(durability_dir)


def ledger_fingerprint(args: argparse.Namespace) -> dict:
    """The soak parameters a resumed run must match exactly."""
    return {
        "days": args.days,
        "scale_factor": args.scale,
        "base_seed": args.seed,
        "profile": args.profile,
        "optimize_for": args.optimize_for,
    }


def load_ledger(checkpoint_dir: Path, fingerprint: dict) -> list[dict]:
    """Completed-day records from a previous soak, oldest first."""
    path = checkpoint_dir / LEDGER_NAME
    if not path.exists():
        return []
    ledger = json.loads(path.read_text())
    if ledger.get("schema") != LEDGER_SCHEMA:
        raise SystemExit(
            f"error: {path} has schema {ledger.get('schema')!r}, "
            f"expected {LEDGER_SCHEMA!r}; was it written by this script?"
        )
    if ledger["fingerprint"] != fingerprint:
        raise SystemExit(
            f"error: {path} records a soak with different parameters "
            f"({ledger['fingerprint']}); pass the same --days/--scale/--seed/"
            "--profile/--optimize-for or use a fresh --checkpoint-dir"
        )
    return ledger["completed_days"]


def record_day(checkpoint_dir: Path, fingerprint: dict, completed: list[dict]) -> None:
    path = checkpoint_dir / LEDGER_NAME
    payload = {
        "schema": LEDGER_SCHEMA,
        "fingerprint": fingerprint,
        "completed_days": completed,
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    tmp.replace(path)


def identical(cold: SimulationResult, warm: SimulationResult) -> bool:
    return (
        cold.summary() == warm.summary()
        and [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in cold.outcomes]
        == [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in warm.outcomes]
        and [(a.taxi_id, a.request_ids) for a in cold.assignments]
        == [(a.taxi_id, a.request_ids) for a in warm.assignments]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=31, help="days to simulate (default 31)")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale (default 1.0)")
    parser.add_argument("--seed", type=int, default=7, help="base seed; day d uses seed+d")
    parser.add_argument("--profile", default="new-york", help="city profile name")
    parser.add_argument(
        "--optimize-for",
        choices=["passenger", "taxi"],
        default="passenger",
        help="which stable matching to dispatch (default passenger)",
    )
    parser.add_argument("--json", default=None, help="also write totals to this JSON file")
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="make every day's run durable (journal + snapshots) under this "
        "directory and keep a progress ledger of finished days",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted soak from --checkpoint-dir: skip days "
        "the ledger records as done, resume the interrupted day from its "
        "latest snapshot (requires --checkpoint-dir)",
    )
    args = parser.parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        parser.error("--resume requires --checkpoint-dir")

    fingerprint = ledger_fingerprint(args)
    completed: list[dict] = []
    if args.checkpoint_dir is not None:
        args.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        if args.resume:
            completed = load_ledger(args.checkpoint_dir, fingerprint)

    totals = {"cold_s": 0.0, "warm_s": 0.0}
    telemetry: dict[str, float] = {}
    mismatched_days: list[int] = []
    for record in completed:
        totals["cold_s"] += record["cold_s"]
        totals["warm_s"] += record["warm_s"]
        for key, value in record["telemetry"].items():
            telemetry[key] = telemetry.get(key, 0.0) + value
        if not record["identical"]:
            mismatched_days.append(record["day"])
        print(f"day {record['day']:2d}: already done (ledger), skipped", flush=True)

    for day in range(len(completed), args.days):
        scale = ExperimentScale(factor=args.scale, seed=args.seed + day)
        leg_dirs = {
            leg: args.checkpoint_dir / f"day-{day:02d}-{leg}"
            if args.checkpoint_dir is not None
            else None
            for leg in ("cold", "warm")
        }
        cold, cold_s = simulate_day(
            args.profile,
            scale,
            optimize_for=args.optimize_for,
            warm=False,
            durability_dir=leg_dirs["cold"],
            resume=args.resume,
        )
        warm, warm_s = simulate_day(
            args.profile,
            scale,
            optimize_for=args.optimize_for,
            warm=True,
            durability_dir=leg_dirs["warm"],
            resume=args.resume,
        )
        if not identical(cold, warm):
            mismatched_days.append(day)
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s
        perf = warm.perf_stats()
        day_telemetry = {
            key: perf.get(key, 0.0)
            for key in ("warm_frames", "cold_frames", "warm_fallbacks")
        }
        for key, value in day_telemetry.items():
            telemetry[key] = telemetry.get(key, 0.0) + value
        if args.checkpoint_dir is not None:
            # Finished day: durability artifacts are spent, the ledger is
            # the record.  Delete first so a crash between the two steps
            # re-runs the day instead of resuming a completed journal.
            for leg_dir in leg_dirs.values():
                shutil.rmtree(leg_dir, ignore_errors=True)
            completed.append(
                {
                    "day": day,
                    "cold_s": cold_s,
                    "warm_s": warm_s,
                    "telemetry": day_telemetry,
                    "identical": day not in mismatched_days,
                }
            )
            record_day(args.checkpoint_dir, fingerprint, completed)
        print(
            f"day {day:2d}: cold {cold_s:6.2f}s  warm {warm_s:6.2f}s  "
            f"speedup {cold_s / warm_s:4.2f}x  "
            f"warm/cold/fallback frames "
            f"{int(perf.get('warm_frames', 0))}/{int(perf.get('cold_frames', 0))}"
            f"/{int(perf.get('warm_fallbacks', 0))}"
            + ("  IDENTICAL" if day not in mismatched_days else "  MISMATCH"),
            flush=True,
        )

    speedup = totals["cold_s"] / totals["warm_s"] if totals["warm_s"] else float("inf")
    report = {
        "days": args.days,
        "scale_factor": args.scale,
        "base_seed": args.seed,
        "profile": args.profile,
        "optimize_for": args.optimize_for,
        "cold_s": round(totals["cold_s"], 3),
        "warm_s": round(totals["warm_s"], 3),
        "speedup": round(speedup, 3),
        "telemetry": {k: int(v) for k, v in sorted(telemetry.items())},
        "mismatched_days": mismatched_days,
        "environment": environment_metadata(),
    }
    print()
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if mismatched_days:
        print(f"error: warm diverged from cold on days {mismatched_days}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
