#!/usr/bin/env python
"""Opt-in full-month wall clock: cold vs warm-start NSTD, day by day.

``BENCH_cityday.json`` times one paper-scale day; this script extends
the comparison to a month of them, which is the operating regime the
warm-start layer actually targets (a dispatcher that never restarts).
Each day ``d`` draws its own trace with seed ``base_seed + d``, so
traffic varies across days while the whole month stays reproducible;
request ids are unique within each day's run, which is the scope the
engine requires.  Every day is simulated twice — cold and warm — and
asserted bit-identical (summary, outcomes, assignments) before its
wall clock counts, so a month-long divergence cannot hide in totals.

This is deliberately a script, not a benchmark test: a month at scale
1.0 is minutes of CPU, far beyond what the regression guard should
gate on.  Run it when touching the warm-start layer::

    PYTHONPATH=src python scripts/run_fullmonth.py                    # 31 days, scale 1.0
    PYTHONPATH=src python scripts/run_fullmonth.py --days 3 --scale 0.1   # quick probe
"""

from __future__ import annotations

import argparse
import json
import time

from repro.dispatch.nonsharing import NSTDDispatcher
from repro.experiments import (
    ExperimentScale,
    build_workload,
    city_simulation_config,
    environment_metadata,
    profile_by_name,
)
from repro.geometry import EuclideanDistance
from repro.simulation import SimulationResult, Simulator


def simulate_day(
    profile_name: str, scale: ExperimentScale, *, optimize_for: str, warm: bool
) -> tuple[SimulationResult, float]:
    """One full simulated day; returns (result, e2e wall seconds)."""
    profile = profile_by_name(profile_name)
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    oracle = EuclideanDistance()
    dispatcher = NSTDDispatcher(
        oracle, sim_config.dispatch, optimize_for=optimize_for, warm_start=warm
    )
    simulator = Simulator(dispatcher, oracle, sim_config)
    start = time.perf_counter()
    result = simulator.run(fleet, requests)
    return result, time.perf_counter() - start


def identical(cold: SimulationResult, warm: SimulationResult) -> bool:
    return (
        cold.summary() == warm.summary()
        and [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in cold.outcomes]
        == [(o.request_id, o.taxi_id, o.dispatch_time_s) for o in warm.outcomes]
        and [(a.taxi_id, a.request_ids) for a in cold.assignments]
        == [(a.taxi_id, a.request_ids) for a in warm.assignments]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=31, help="days to simulate (default 31)")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale (default 1.0)")
    parser.add_argument("--seed", type=int, default=7, help="base seed; day d uses seed+d")
    parser.add_argument("--profile", default="new-york", help="city profile name")
    parser.add_argument(
        "--optimize-for",
        choices=["passenger", "taxi"],
        default="passenger",
        help="which stable matching to dispatch (default passenger)",
    )
    parser.add_argument("--json", default=None, help="also write totals to this JSON file")
    args = parser.parse_args(argv)

    totals = {"cold_s": 0.0, "warm_s": 0.0}
    telemetry: dict[str, float] = {}
    mismatched_days: list[int] = []
    for day in range(args.days):
        scale = ExperimentScale(factor=args.scale, seed=args.seed + day)
        cold, cold_s = simulate_day(
            args.profile, scale, optimize_for=args.optimize_for, warm=False
        )
        warm, warm_s = simulate_day(
            args.profile, scale, optimize_for=args.optimize_for, warm=True
        )
        if not identical(cold, warm):
            mismatched_days.append(day)
        totals["cold_s"] += cold_s
        totals["warm_s"] += warm_s
        perf = warm.perf_stats()
        for key in ("warm_frames", "cold_frames", "warm_fallbacks"):
            telemetry[key] = telemetry.get(key, 0.0) + perf.get(key, 0.0)
        print(
            f"day {day:2d}: cold {cold_s:6.2f}s  warm {warm_s:6.2f}s  "
            f"speedup {cold_s / warm_s:4.2f}x  "
            f"warm/cold/fallback frames "
            f"{int(perf.get('warm_frames', 0))}/{int(perf.get('cold_frames', 0))}"
            f"/{int(perf.get('warm_fallbacks', 0))}"
            + ("  IDENTICAL" if day not in mismatched_days else "  MISMATCH"),
            flush=True,
        )

    speedup = totals["cold_s"] / totals["warm_s"] if totals["warm_s"] else float("inf")
    report = {
        "days": args.days,
        "scale_factor": args.scale,
        "base_seed": args.seed,
        "profile": args.profile,
        "optimize_for": args.optimize_for,
        "cold_s": round(totals["cold_s"], 3),
        "warm_s": round(totals["warm_s"], 3),
        "speedup": round(speedup, 3),
        "telemetry": {k: int(v) for k, v in sorted(telemetry.items())},
        "mismatched_days": mismatched_days,
        "environment": environment_metadata(),
    }
    print()
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if mismatched_days:
        print(f"error: warm diverged from cold on days {mismatched_days}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
