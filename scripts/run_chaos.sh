#!/usr/bin/env bash
# Chaos smoke run: seeded fault schedule (latency spikes, transient
# oracle errors, one worker crash) against a tiny city-day.  Asserts
# zero dropped frames, a non-empty resilience report with every degraded
# frame attributed to rung + trigger, and faults-off bit-identity.
#
#   scripts/run_chaos.sh              # default seed 13, 2 workers
#   scripts/run_chaos.sh --seed 99    # extra args go to run_chaos.py
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src python scripts/run_chaos.py "$@"
