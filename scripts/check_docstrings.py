#!/usr/bin/env python3
"""Docstring-coverage floor for the public API (stdlib ``ast`` only).

Counts every *public* documentable object under the given roots —
modules, module-level classes and functions, and public methods of
public classes — and fails when the documented fraction drops below the
floor. Public means not underscore-prefixed and not nested inside a
function; ``__init__`` is exempt (the class docstring covers
construction), as are other dunders, overload stubs, and
``TYPE_CHECKING`` blocks. Nothing is imported or executed.

The floor ratchets quality without demanding retroactive perfection:
the repo sits a few points above it, so a PR that lands a batch of
undocumented public API pulls the number down and fails the gate,
while one that documents as it goes raises the margin. Raise the floor
as coverage grows; never lower it.

Usage::

    python scripts/check_docstrings.py src/                # default floor
    python scripts/check_docstrings.py --floor 0.95 src/
    python scripts/check_docstrings.py --list-missing src/
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_FLOOR = 0.80


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _documented(node: ast.AST) -> bool:
    return ast.get_docstring(node) is not None


def _is_overload(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Attribute):
            target = target.attr  # typing.overload
        if isinstance(target, ast.Name):
            target = target.id
        if target == "overload":
            return True
    return False


def audit_module(path: Path, module: str) -> tuple[list[str], list[str]]:
    """(documented, missing) fully-qualified names for one file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    documented: list[str] = []
    missing: list[str] = []

    def record(name: str, node: ast.AST) -> None:
        (documented if _documented(node) else missing).append(name)

    record(module, tree)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and not _is_overload(node):
                record(f"{module}.{node.name}", node)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            record(f"{module}.{node.name}", node)
            for sub in node.body:
                if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_public(sub.name) or _is_overload(sub):
                    continue
                record(f"{module}.{node.name}.{sub.name}", sub)
    return documented, missing


def module_name(path: Path) -> str:
    parts = list(path.with_suffix("").parts)
    while "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="+", help="directories or files to audit")
    parser.add_argument(
        "--floor",
        type=float,
        default=DEFAULT_FLOOR,
        help=f"minimum documented fraction (default {DEFAULT_FLOOR})",
    )
    parser.add_argument(
        "--list-missing",
        action="store_true",
        help="print every undocumented public object",
    )
    options = parser.parse_args(argv)

    files: list[Path] = []
    for root in options.roots:
        path = Path(root)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            print(f"no such file: {root}", file=sys.stderr)
            return 2

    documented: list[str] = []
    missing: list[str] = []
    for path in files:
        try:
            docs, gaps = audit_module(path, module_name(path))
        except SyntaxError as exc:
            print(f"{path}: syntax error ({exc})", file=sys.stderr)
            return 2
        documented.extend(docs)
        missing.extend(gaps)

    total = len(documented) + len(missing)
    coverage = len(documented) / total if total else 1.0
    if options.list_missing:
        for name in missing:
            print(f"undocumented: {name}")
    verdict = "ok" if coverage >= options.floor else "FAILED"
    print(
        f"docstring coverage: {len(documented)}/{total} public objects "
        f"({coverage:.1%}) — floor {options.floor:.0%} — {verdict}"
    )
    if coverage < options.floor:
        if not options.list_missing:
            print("(re-run with --list-missing to see the gaps)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
