#!/usr/bin/env bash
# Static-analysis gate for the dispatch core.
#
#   scripts/run_static_checks.sh                 # lint + docs + typing + style + tier-1 tests
#   scripts/run_static_checks.sh --fast          # skip the test suite
#   scripts/run_static_checks.sh --changed-only  # lint only files changed vs main
#
# repro-lint (stdlib-only) always runs and is authoritative: a finding
# fails the gate.  mypy and ruff are pinned optional dev dependencies
# (pip install -e '.[dev]'); when they are not installed the gate
# reports them as skipped rather than failing, so the script works in
# hermetic environments that cannot install packages.
#
# --changed-only narrows the repro-lint target to tracked *.py files
# under src/ that differ from the merge base with main (falling back to
# HEAD when no main ref exists).  The project-wide rules (REP004's
# exception flow, REP008-REP010) still build their call graph over the
# whole of src/ — only the *reported* files are narrowed — so a changed
# file is judged with full cross-file context.  --changed-only implies
# --fast unless the full suite is explicitly wanted.

set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

run_tests=1
changed_only=0
for arg in "$@"; do
    case "$arg" in
        --fast) run_tests=0 ;;
        --changed-only) changed_only=1; run_tests=0 ;;
        *)
            echo "usage: $0 [--fast] [--changed-only]" >&2
            exit 2
            ;;
    esac
done

failures=0

step() {
    echo
    echo "== $1"
}

if [ "$changed_only" -eq 1 ]; then
    base="$(git merge-base HEAD main 2>/dev/null || git rev-parse HEAD)"
    mapfile -t changed < <(git diff --name-only --diff-filter=d "$base" -- 'src/*.py')
    step "repro-lint (repo invariants REP001-REP010, ${#changed[@]} changed file(s) vs ${base:0:12})"
    if [ "${#changed[@]}" -eq 0 ]; then
        echo "no python files under src/ changed; nothing to lint"
    elif ! python -m repro.devtools --changed-only "${changed[@]}" -- src/; then
        failures=$((failures + 1))
    fi
else
    step "repro-lint (repo invariants REP001-REP010)"
    if ! python -m repro.devtools src/; then
        failures=$((failures + 1))
    fi
fi

step "docstring coverage floor (stdlib, scripts/check_docstrings.py)"
if ! python scripts/check_docstrings.py src/; then
    failures=$((failures + 1))
fi

step "markdown link check (stdlib, scripts/check_doc_links.py)"
if ! python scripts/check_doc_links.py --default-set; then
    failures=$((failures + 1))
fi

step "mypy --strict (optional dev dependency)"
if python -c "import mypy" >/dev/null 2>&1; then
    if ! python -m mypy; then
        failures=$((failures + 1))
    fi
else
    echo "mypy not installed; skipped (pip install -e '.[dev]' to enable)"
fi

step "ruff check (optional dev dependency)"
if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    if ! python -m ruff check src/ tests/ benchmarks/ 2>/dev/null \
        && ! ruff check src/ tests/ benchmarks/; then
        failures=$((failures + 1))
    fi
else
    echo "ruff not installed; skipped (pip install -e '.[dev]' to enable)"
fi

if [ "$run_tests" -eq 1 ]; then
    step "tier-1 test suite"
    if ! python -m pytest -x -q; then
        failures=$((failures + 1))
    fi
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "static checks: $failures gate(s) FAILED"
    exit 1
fi
echo "static checks: all gates passed"
