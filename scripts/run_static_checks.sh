#!/usr/bin/env bash
# Static-analysis gate for the dispatch core.
#
#   scripts/run_static_checks.sh          # lint + typing + style + tier-1 tests
#   scripts/run_static_checks.sh --fast   # skip the test suite
#
# repro-lint (stdlib-only) always runs and is authoritative: a finding
# fails the gate.  mypy and ruff are pinned optional dev dependencies
# (pip install -e '.[dev]'); when they are not installed the gate
# reports them as skipped rather than failing, so the script works in
# hermetic environments that cannot install packages.

set -u -o pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

run_tests=1
if [ "${1:-}" = "--fast" ]; then
    run_tests=0
fi

failures=0

step() {
    echo
    echo "== $1"
}

step "repro-lint (repo invariants REP001-REP007)"
if ! python -m repro.devtools src/; then
    failures=$((failures + 1))
fi

step "mypy --strict (optional dev dependency)"
if python -c "import mypy" >/dev/null 2>&1; then
    if ! python -m mypy; then
        failures=$((failures + 1))
    fi
else
    echo "mypy not installed; skipped (pip install -e '.[dev]' to enable)"
fi

step "ruff check (optional dev dependency)"
if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    if ! python -m ruff check src/ tests/ benchmarks/ 2>/dev/null \
        && ! ruff check src/ tests/ benchmarks/; then
        failures=$((failures + 1))
    fi
else
    echo "ruff not installed; skipped (pip install -e '.[dev]' to enable)"
fi

if [ "$run_tests" -eq 1 ]; then
    step "tier-1 test suite"
    if ! python -m pytest -x -q; then
        failures=$((failures + 1))
    fi
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "static checks: $failures gate(s) FAILED"
    exit 1
fi
echo "static checks: all gates passed"
