#!/usr/bin/env python
"""Guard against kernel performance regressions.

Compares the freshly generated ``BENCH_kernels.json`` (written by
``pytest benchmarks/test_micro_algorithms.py -k KernelSpeedups``)
against the committed baseline ``benchmarks/BENCH_kernels_baseline.json``
and fails when any vectorized table-construction kernel got more than
``--tolerance`` slower (default 25%).

Absolute wall-clock comparisons across different machines are noisy, so
CI should regenerate both sides on the same host when possible; the 25%
tolerance absorbs same-host run-to-run jitter.  Refresh the baseline by
copying the new ``BENCH_kernels.json`` over it after an intentional
change.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_micro_algorithms.py -k KernelSpeedups
    python scripts/check_bench_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CURRENT = REPO_ROOT / "BENCH_kernels.json"
BASELINE = REPO_ROOT / "benchmarks" / "BENCH_kernels_baseline.json"

#: Kernels guarded against regression: the table-construction hot path
#: plus the raw batched kernels it is built on.
GUARDED_PREFIXES = (
    "preference_table_vectorized_",
    "preference_table_pruned_",
    "pairwise_euclidean",
    "cost_matrix_batched",
)


def load(path: Path) -> dict:
    if not path.exists():
        sys.exit(f"error: {path} not found; run the kernel benchmark first")
    return json.loads(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=CURRENT)
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    args = parser.parse_args(argv)

    current = load(args.current)["kernels"]
    baseline = load(args.baseline)["kernels"]

    failures = []
    checked = 0
    for name, base in sorted(baseline.items()):
        if not name.startswith(GUARDED_PREFIXES):
            continue
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from current run")
            continue
        checked += 1
        limit = base["ms"] * (1.0 + args.tolerance)
        verdict = "ok" if now["ms"] <= limit else "REGRESSED"
        print(
            f"{name}: {now['ms']:.2f} ms vs baseline {base['ms']:.2f} ms "
            f"(limit {limit:.2f} ms) {verdict}"
        )
        if now["ms"] > limit:
            failures.append(
                f"{name}: {now['ms']:.2f} ms exceeds baseline {base['ms']:.2f} ms "
                f"by more than {args.tolerance:.0%}"
            )

    if not checked:
        failures.append("no guarded kernels found in baseline; baseline file corrupt?")
    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"\nall {checked} guarded kernels within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
