#!/usr/bin/env python
"""Guard against kernel, matching-core, and city-day perf regressions.

Compares the freshly generated benchmark artifacts at the repo root
against their committed baselines and fails when any guarded fast-path
row got more than ``--tolerance`` slower (default 25%):

* ``BENCH_kernels.json`` (written by ``pytest
  benchmarks/test_micro_algorithms.py -k KernelSpeedups``) vs
  ``benchmarks/BENCH_kernels_baseline.json`` — the vectorized
  preference/table construction kernels;
* ``BENCH_matching.json`` (written by ``pytest
  benchmarks/test_matching_core.py``) vs
  ``benchmarks/BENCH_matching_baseline.json`` — the array
  deferred-acceptance engine and the array frame totals;
* ``BENCH_cityday.json`` (written by ``pytest
  benchmarks/test_cityday.py``) vs
  ``benchmarks/BENCH_cityday_baseline.json`` — the paper-scale
  city-day, cold vs warm-start end-to-end.

Absolute wall-clock comparisons across different machines are noisy, so
CI should regenerate both sides on the same host when possible; the 25%
tolerance absorbs same-host run-to-run jitter, and each artifact embeds
an ``environment`` block so a cross-machine comparison is at least
visible.  Refresh a baseline by copying the new artifact over it after
an intentional change.

Usage::

    scripts/run_benchmarks.sh            # regenerate all + check
    python scripts/check_bench_regression.py [--suite kernels|matching|cityday]
    python scripts/check_bench_regression.py --list   # deltas, no verdicts
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Suite:
    """One benchmark artifact/baseline pair and its guarded rows."""

    name: str
    current: Path
    baseline: Path
    guarded_prefixes: tuple[str, ...]
    #: The ``bench-<suite>/<N>`` schema version this checker understands.
    #: Artifacts carry it so a checker from one repo revision refuses,
    #: with a clear message, to compare artifacts from another.
    schema: str


SUITES = (
    Suite(
        name="kernels",
        current=REPO_ROOT / "BENCH_kernels.json",
        baseline=REPO_ROOT / "benchmarks" / "BENCH_kernels_baseline.json",
        schema="bench-kernels/2",
        # The table-construction hot path plus the raw batched kernels
        # it is built on.
        guarded_prefixes=(
            "preference_table_vectorized_",
            "preference_table_pruned_",
            "pairwise_euclidean",
            "cost_matrix_batched",
        ),
    ),
    Suite(
        name="matching",
        current=REPO_ROOT / "BENCH_matching.json",
        baseline=REPO_ROOT / "benchmarks" / "BENCH_matching_baseline.json",
        schema="bench-matching/1",
        # The array fast path only: the dict rows are reference points,
        # not guarded surfaces.  The e2e city-day rows aggregate whole
        # simulations and are too noisy at this tolerance; the JSON
        # still records them for eyeballing.
        guarded_prefixes=(
            "da_array_",
            "frame_total_array_",
        ),
    ),
    Suite(
        name="cityday",
        current=REPO_ROOT / "BENCH_cityday.json",
        baseline=REPO_ROOT / "benchmarks" / "BENCH_cityday_baseline.json",
        schema="bench-cityday/1",
        # Whole paper-scale simulations (schema bench-cityday/1): noisy,
        # but a regression here is exactly what the warm-start layer
        # exists to prevent, so the rows are guarded at the shared
        # tolerance.
        guarded_prefixes=("cityday_",),
    ),
)


def load(path: Path, expected_schema: str) -> dict:
    if not path.exists():
        sys.exit(f"error: {path} not found; run the benchmarks first (scripts/run_benchmarks.sh)")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON ({exc})")
    if not isinstance(payload, dict) or "kernels" not in payload:
        schema = payload.get("schema", "<missing>") if isinstance(payload, dict) else "<not an object>"
        sys.exit(
            f"error: {path} has no 'kernels' table (schema {schema}); "
            "was it written by a benchmark run of this repo?"
        )
    schema = payload.get("schema", "<missing>")
    if schema != expected_schema:
        sys.exit(
            f"error: {path} declares schema {schema!r} but this checker "
            f"understands {expected_schema!r}; regenerate the artifact with "
            "the current benchmarks (scripts/run_benchmarks.sh) or check out "
            "the repo revision that wrote it"
        )
    kernels = payload["kernels"]
    for name, row in kernels.items():
        if not isinstance(row, dict) or "ms" not in row:
            sys.exit(f"error: {path}: row {name!r} has no 'ms' field; artifact corrupt?")
    return kernels


def check_suite(suite: Suite, tolerance: float) -> list[str]:
    current = load(suite.current, suite.schema)
    baseline = load(suite.baseline, suite.schema)

    failures = []
    checked = 0
    for name, base in sorted(baseline.items()):
        if not name.startswith(suite.guarded_prefixes):
            continue
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from current run")
            continue
        checked += 1
        limit = base["ms"] * (1.0 + tolerance)
        verdict = "ok" if now["ms"] <= limit else "REGRESSED"
        print(
            f"[{suite.name}] {name}: {now['ms']:.2f} ms vs baseline {base['ms']:.2f} ms "
            f"(limit {limit:.2f} ms) {verdict}"
        )
        if now["ms"] > limit:
            failures.append(
                f"{name}: {now['ms']:.2f} ms exceeds baseline {base['ms']:.2f} ms "
                f"by more than {tolerance:.0%}"
            )

    # A guarded row in the current run with no baseline entry means the
    # baseline predates the benchmark: an unguarded surface masquerading
    # as a guarded one.  Fail loudly instead of silently skipping it.
    for name in sorted(current):
        if name.startswith(suite.guarded_prefixes) and name not in baseline:
            failures.append(
                f"{name}: measured by the current run but absent from "
                f"{suite.baseline.name}; refresh the baseline to cover it"
            )

    if not checked:
        failures.append(f"no guarded rows found in {suite.baseline}; baseline file corrupt?")
    else:
        print(f"[{suite.name}] {checked} guarded rows checked")
    return failures


def list_suite(suite: Suite) -> None:
    """Print per-row current/baseline deltas without pass/fail verdicts."""
    if not suite.current.exists() and not suite.baseline.exists():
        print(f"[{suite.name}] no artifact and no baseline; skipped")
        return
    current = load(suite.current, suite.schema) if suite.current.exists() else {}
    baseline = load(suite.baseline, suite.schema) if suite.baseline.exists() else {}
    names = sorted(set(current) | set(baseline))
    for name in names:
        guarded = "*" if name.startswith(suite.guarded_prefixes) else " "
        now = current.get(name)
        base = baseline.get(name)
        if now is not None and base is not None and base["ms"] > 0:
            delta = (now["ms"] - base["ms"]) / base["ms"]
            print(
                f"[{suite.name}]{guarded} {name}: {now['ms']:.2f} ms "
                f"(baseline {base['ms']:.2f} ms, {delta:+.1%})"
            )
        elif now is not None:
            print(f"[{suite.name}]{guarded} {name}: {now['ms']:.2f} ms (no baseline)")
        else:
            print(f"[{suite.name}]{guarded} {name}: no current run (baseline {base['ms']:.2f} ms)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=[s.name for s in SUITES],
        default=None,
        help="check only one suite (default: all)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print current-vs-baseline deltas for every row (guarded rows "
        "marked with *) and exit 0 without any regression verdict",
    )
    args = parser.parse_args(argv)

    suites = [s for s in SUITES if args.suite is None or s.name == args.suite]
    if args.list:
        for suite in suites:
            list_suite(suite)
        return 0
    failures: list[str] = []
    for suite in suites:
        failures.extend(check_suite(suite, args.tolerance))

    if failures:
        print()
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"\nall guarded rows within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
