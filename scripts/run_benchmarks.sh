#!/usr/bin/env bash
# Regenerate the benchmark artifacts and run the regression guard.
#
#   scripts/run_benchmarks.sh                 # full: kernels + matching + cityday + guard
#   scripts/run_benchmarks.sh --suite cityday # one suite + its guard only
#   scripts/run_benchmarks.sh --tolerance 0.5 # extra args go to the guard
#   scripts/run_benchmarks.sh --smoke         # CI probe: tiny city-day, no baselines
#
# Artifacts land at the repo root (BENCH_kernels.json,
# BENCH_matching.json, BENCH_cityday.json); committed baselines live in
# benchmarks/.
#
# --suite {kernels,matching,cityday} reruns one benchmark file and
# checks only that suite against its baseline — the iteration loop when
# touching a single layer (the paper-scale city-day alone dominates the
# full run's wall clock).
#
# --smoke exists so CI can prove the benchmark harness still *runs*
# without paying for (or trusting) full-scale wall-clock numbers on a
# shared runner: the city-day bench runs a two-hour 2% slice (its
# bit-identity asserts still fire), the artifact is diverted to
# benchmarks/output/, and the guard runs in --list mode only, which
# exercises its loaders without issuing verdicts.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    shift
    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_cityday.py -q
    python scripts/check_bench_regression.py --list "$@"
    exit 0
fi

SUITE=""
if [[ "${1:-}" == "--suite" ]]; then
    if [[ $# -lt 2 ]]; then
        echo "error: --suite needs an argument (kernels, matching, or cityday)" >&2
        exit 2
    fi
    SUITE="$2"
    shift 2
fi

run_kernels()  { PYTHONPATH=src python -m pytest benchmarks/test_micro_algorithms.py -k KernelSpeedups -q; }
run_matching() { PYTHONPATH=src python -m pytest benchmarks/test_matching_core.py -q; }
run_cityday()  { PYTHONPATH=src python -m pytest benchmarks/test_cityday.py -q; }

case "$SUITE" in
    "")
        run_kernels
        run_matching
        run_cityday
        python scripts/check_bench_regression.py "$@"
        ;;
    kernels|matching|cityday)
        "run_$SUITE"
        python scripts/check_bench_regression.py --suite "$SUITE" "$@"
        ;;
    *)
        echo "error: unknown suite '$SUITE' (expected kernels, matching, or cityday)" >&2
        exit 2
        ;;
esac
