#!/usr/bin/env bash
# Regenerate both benchmark artifacts and run the regression guard.
#
#   scripts/run_benchmarks.sh                 # full: kernels + matching + guard
#   scripts/run_benchmarks.sh --tolerance 0.5 # extra args go to the guard
#
# Artifacts land at the repo root (BENCH_kernels.json,
# BENCH_matching.json); committed baselines live in benchmarks/.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src python -m pytest benchmarks/test_micro_algorithms.py -k KernelSpeedups -q
PYTHONPATH=src python -m pytest benchmarks/test_matching_core.py -q
python scripts/check_bench_regression.py "$@"
