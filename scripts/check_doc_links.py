#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set (stdlib only).

Validates every inline markdown link in the checked files:

* **relative file links** must resolve to an existing file or directory
  (relative to the file containing the link);
* **anchor fragments** (``path#section`` or ``#section``) must match a
  heading in the target markdown file, using GitHub's slug rules
  (lowercase, spaces to dashes, punctuation stripped, duplicate slugs
  suffixed ``-1``, ``-2``, ...);
* **bare anchors** (``#section``) are checked against the current file;
* ``http(s)://`` / ``mailto:`` links are recorded but never fetched —
  CI must not depend on the network.

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link), 2 on usage errors.

Usage::

    python scripts/check_doc_links.py README.md DESIGN.md docs/*.md
    python scripts/check_doc_links.py --default-set   # the CI file set
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Inline links: [text](target), skipping images' leading "!" is not
# needed — image targets are files and should resolve too.
_LINK = re.compile(r"\[(?:[^\]\\]|\\.)*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")
# GitHub slugger: keep word chars, spaces and dashes; drop the rest.
_SLUG_DROP = re.compile(r"[^\w\- ]", re.UNICODE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_SET = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs",
)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = _SLUG_DROP.sub("", text.lower())
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes (duplicates suffixed)."""
    counts: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path) -> list[tuple[int, str]]:
    """(line number, target) for every inline link outside code fences."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            links.append((line_no, match.group(1)))
    return links


def check_file(path: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    """Broken-link messages for one markdown file."""
    errors: list[str] = []
    for line_no, target in iter_links(path):
        if target.startswith(_EXTERNAL):
            continue  # never fetched; reachability is not CI's call
        target, _, fragment = target.partition("#")
        if target:
            dest = (path.parent / target).resolve()
            if not dest.exists():
                errors.append(f"{path}:{line_no}: broken link -> {target}")
                continue
        else:
            dest = path.resolve()
        if fragment:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown are out of scope
            slugs = slug_cache.get(dest)
            if slugs is None:
                slugs = heading_slugs(dest)
                slug_cache[dest] = slugs
            if fragment.lower() not in slugs:
                errors.append(
                    f"{path}:{line_no}: missing anchor -> "
                    f"{target or path.name}#{fragment}"
                )
    return errors


def expand(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in arguments:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(arg)
    return files


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="markdown files or directories")
    parser.add_argument(
        "--default-set",
        action="store_true",
        help=f"check the CI documentation set: {', '.join(DEFAULT_SET)}",
    )
    options = parser.parse_args(argv)
    arguments = list(options.paths)
    if options.default_set:
        arguments.extend(name for name in DEFAULT_SET if Path(name).exists())
    if not arguments:
        parser.error("no files given (use --default-set for the CI set)")
    try:
        files = expand(arguments)
    except FileNotFoundError as exc:
        print(f"no such file: {exc}", file=sys.stderr)
        return 2

    slug_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    links_total = 0
    for path in files:
        links_total += len(iter_links(path))
        errors.extend(check_file(path, slug_cache))
    for message in errors:
        print(message)
    status = "FAILED" if errors else "ok"
    print(
        f"doc links: {len(files)} file(s), {links_total} link(s), "
        f"{len(errors)} broken — {status}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
