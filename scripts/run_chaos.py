#!/usr/bin/env python
"""Chaos smoke run: a seeded fault schedule against a tiny city-day.

Injects all three fault species at once — latency spikes (virtual
clock), transient oracle errors, and one worker crash — and asserts the
resilience layer's core invariants:

* every frame is answered: zero dropped frames on every algorithm;
* the resilience report is non-empty and every degraded frame is
  attributed to a rung and a trigger;
* injected faults were actually absorbed (the run exercised the layer);
* with faults disabled, the resilience-protected run is bit-identical
  to the unprotected baseline.

Exit code 0 on success, 1 with a failure listing otherwise.  The fault
schedule is deterministic in ``--seed``, so failures reproduce exactly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import ExperimentScale, run_city_experiment  # noqa: E402
from repro.resilience import FaultPlan, ResiliencePolicy  # noqa: E402
from repro.trace import boston_profile  # noqa: E402

ALGORITHMS = ("Greedy", "NSTD-P")


def comparable(result):
    """Everything observable about a run except wall-clock telemetry."""
    return {
        "outcomes": [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s, o.dropoff_time_s)
            for o in result.outcomes
        ],
        "assignments": [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.revenue_km)
            for a in result.assignments
        ],
        "frames_run": result.frames_run,
    }


def run_chaos(seed: int = 13, workers: int = 2) -> tuple[dict, list[str]]:
    """One chaos smoke run; returns (summary, failures)."""
    scale = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))
    profile = boston_profile()
    plan = FaultPlan(
        seed=seed,
        latency_rate=0.08,
        latency_s=45.0,
        error_rate=0.01,
        per_call_cost_s=0.05,
        crash_algorithms=("Greedy",),
    )
    policy = ResiliencePolicy(budget_fraction=0.5, transient_retries=2)

    chaotic = run_city_experiment(
        profile, ALGORITHMS, scale, workers=workers, faults=plan, resilience=policy
    )
    baseline = run_city_experiment(profile, ALGORITHMS, scale)
    calm = run_city_experiment(profile, ALGORITHMS, scale, resilience=policy)

    failures: list[str] = []
    summary: dict = {}
    total_degraded = 0
    total_faults = 0
    for name, result in chaotic.items():
        report = result.resilience
        if report is None or len(report) == 0:
            failures.append(f"{name}: empty resilience report")
            continue
        if report.dropped_frames != 0:
            failures.append(f"{name}: {report.dropped_frames} dropped frames")
        for frame in report.degraded_frames:
            if frame.trigger is None:
                failures.append(f"{name}: degraded frame at t={frame.time_s} has no trigger")
            if not frame.rung:
                failures.append(f"{name}: degraded frame at t={frame.time_s} has no rung")
        total_degraded += len(report.degraded_frames)
        total_faults += report.faults_absorbed
        summary[name] = {
            "frames": len(report),
            "served_by_rung": report.served_by_rung(),
            "faults_absorbed": report.faults_absorbed,
            "service_rate": result.service_rate,
        }
    if total_degraded + total_faults == 0:
        failures.append("no degradations or faults observed: the chaos schedule is inert")

    for name in baseline:
        if comparable(calm[name]) != comparable(baseline[name]):
            failures.append(f"{name}: faults-off resilient run differs from baseline")

    summary["total_degraded_frames"] = total_degraded
    summary["total_faults_absorbed"] = total_faults
    return summary, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=13, help="fault schedule seed")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    args = parser.parse_args(argv)

    summary, failures = run_chaos(seed=args.seed, workers=args.workers)
    for name, stats in summary.items():
        print(f"{name}: {stats}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print("CHAOS FAILED", file=sys.stderr)
        return 1
    print("CHAOS OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
