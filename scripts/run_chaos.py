#!/usr/bin/env python
"""Chaos smoke run: a seeded fault schedule against a tiny city-day.

Injects all three fault species at once — latency spikes (virtual
clock), transient oracle errors, and one worker crash — and asserts the
resilience layer's core invariants:

* every frame is answered: zero dropped frames on every algorithm;
* the resilience report is non-empty and every degraded frame is
  attributed to a rung and a trigger;
* injected faults were actually absorbed (the run exercised the layer);
* with faults disabled, the resilience-protected run is bit-identical
  to the unprotected baseline.

``--crash-recovery`` runs the durability matrix instead: for each of
the cold / warm / sharded dispatch modes, a child process running a
journaled+checkpointed simulation is SIGKILLed at several frame offsets
(at the frame boundary, after the journal append, and mid-frame, before
it), then the run is resumed from the surviving artifacts and asserted
bit-identical (outcomes, assignments, frame count) to an uninterrupted
reference.  ``--artifacts-dir`` keeps the journals and snapshots on
disk for post-mortem (CI uploads them on failure).

Exit code 0 on success, 1 with a failure listing otherwise.  Both fault
and crash schedules are deterministic, so failures reproduce exactly.
"""

from __future__ import annotations

import argparse
import shutil
import signal
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.dispatch.nonsharing import NSTDDispatcher  # noqa: E402
from repro.experiments import (  # noqa: E402
    ExperimentScale,
    build_workload,
    city_simulation_config,
    run_city_experiment,
)
from repro.geometry import EuclideanDistance  # noqa: E402
from repro.resilience import (  # noqa: E402
    CrashPlan,
    DurabilityConfig,
    DurabilityManager,
    FaultPlan,
    ResiliencePolicy,
    resume_simulation,
)
from repro.simulation import Simulator  # noqa: E402
from repro.trace import boston_profile  # noqa: E402

ALGORITHMS = ("Greedy", "NSTD-P")

#: Dispatch-mode matrix of the crash-recovery harness.
CRASH_MODES = ("cold", "warm", "sharded")

#: (frame offset, crash phase) matrix.  With ``CHECKPOINT_EVERY = 8``
#: this covers the three recovery shapes: frame 5 crashes before any
#: snapshot exists (journal-only replay from frame 0), frame 12 resumes
#: from snapshot 7 and replays the rest, and frame 23 crashes right
#: after writing the snapshot it then resumes from (zero replay).
CRASH_CASES = ((5, "boundary"), (12, "mid-frame"), (23, "boundary"))

CHECKPOINT_EVERY = 8


def comparable(result):
    """Everything observable about a run except wall-clock telemetry."""
    return {
        "outcomes": [
            (o.request_id, o.taxi_id, o.dispatch_time_s, o.pickup_time_s, o.dropoff_time_s)
            for o in result.outcomes
        ],
        "assignments": [
            (a.frame_time_s, a.taxi_id, a.request_ids, a.revenue_km)
            for a in result.assignments
        ],
        "frames_run": result.frames_run,
    }


def run_chaos(seed: int = 13, workers: int = 2) -> tuple[dict, list[str]]:
    """One chaos smoke run; returns (summary, failures)."""
    scale = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))
    profile = boston_profile()
    plan = FaultPlan(
        seed=seed,
        latency_rate=0.08,
        latency_s=45.0,
        error_rate=0.01,
        per_call_cost_s=0.05,
        crash_algorithms=("Greedy",),
    )
    policy = ResiliencePolicy(budget_fraction=0.5, transient_retries=2)

    chaotic = run_city_experiment(
        profile, ALGORITHMS, scale, workers=workers, faults=plan, resilience=policy
    )
    baseline = run_city_experiment(profile, ALGORITHMS, scale)
    calm = run_city_experiment(profile, ALGORITHMS, scale, resilience=policy)

    failures: list[str] = []
    summary: dict = {}
    total_degraded = 0
    total_faults = 0
    for name, result in chaotic.items():
        report = result.resilience
        if report is None or len(report) == 0:
            failures.append(f"{name}: empty resilience report")
            continue
        if report.dropped_frames != 0:
            failures.append(f"{name}: {report.dropped_frames} dropped frames")
        for frame in report.degraded_frames:
            if frame.trigger is None:
                failures.append(f"{name}: degraded frame at t={frame.time_s} has no trigger")
            if not frame.rung:
                failures.append(f"{name}: degraded frame at t={frame.time_s} has no rung")
        total_degraded += len(report.degraded_frames)
        total_faults += report.faults_absorbed
        summary[name] = {
            "frames": len(report),
            "served_by_rung": report.served_by_rung(),
            "faults_absorbed": report.faults_absorbed,
            "service_rate": result.service_rate,
        }
    if total_degraded + total_faults == 0:
        failures.append("no degradations or faults observed: the chaos schedule is inert")

    for name in baseline:
        if comparable(calm[name]) != comparable(baseline[name]):
            failures.append(f"{name}: faults-off resilient run differs from baseline")

    summary["total_degraded_frames"] = total_degraded
    summary["total_faults_absorbed"] = total_faults
    return summary, failures


def crash_workload():
    """The deterministic workload every crash-recovery process rebuilds.

    Parent and SIGKILLed children construct it independently from the
    same seeds; the trace generators are deterministic, so both see the
    identical fleet and request stream.
    """
    scale = ExperimentScale(factor=0.004, seed=11, hours=(8.0, 9.0))
    profile = boston_profile()
    sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    return sim_config, fleet, requests


def make_crash_simulator(
    mode: str, sim_config, *, durability: DurabilityManager | None = None
) -> Simulator:
    oracle = EuclideanDistance()
    dispatcher = NSTDDispatcher(
        oracle,
        sim_config.dispatch,
        warm_start=mode in ("warm", "sharded"),
        sharded=mode == "sharded",
    )
    return Simulator(dispatcher, oracle, sim_config, durability=durability)


def crash_child(directory: str, mode: str, frame: int, phase: str) -> int:
    """Internal child entry point: run durably until the plan SIGKILLs us."""
    sim_config, fleet, requests = crash_workload()
    manager = DurabilityManager(
        DurabilityConfig(Path(directory), checkpoint_every_frames=CHECKPOINT_EVERY),
        crash_plan=CrashPlan(frame=frame, phase=phase),
    )
    make_crash_simulator(mode, sim_config, durability=manager).run(fleet, requests)
    print(
        f"crash child survived: plan ({frame}, {phase}) never fired",
        file=sys.stderr,
    )
    return 1


def run_crash_recovery(artifacts_dir: Path) -> tuple[dict, list[str]]:
    """The SIGKILL/resume matrix; returns (summary, failures)."""
    sim_config, fleet, requests = crash_workload()
    failures: list[str] = []
    summary: dict = {}
    references = {
        mode: comparable(make_crash_simulator(mode, sim_config).run(fleet, requests))
        for mode in CRASH_MODES
    }
    for mode in CRASH_MODES:
        for frame, phase in CRASH_CASES:
            case = f"{mode}@{frame}/{phase}"
            directory = artifacts_dir / f"{mode}-{frame}-{phase}"
            child = subprocess.run(
                [
                    sys.executable,
                    str(Path(__file__).resolve()),
                    "--crash-child",
                    str(directory),
                    mode,
                    str(frame),
                    phase,
                ],
                capture_output=True,
                text=True,
            )
            if child.returncode != -signal.SIGKILL:
                failures.append(
                    f"{case}: child exited {child.returncode}, expected "
                    f"SIGKILL ({child.stderr.strip()[:200]})"
                )
                continue
            manager = DurabilityManager(
                DurabilityConfig(directory, checkpoint_every_frames=CHECKPOINT_EVERY)
            )
            simulator = make_crash_simulator(mode, sim_config, durability=manager)
            try:
                with warnings.catch_warnings():
                    # A torn journal tail is the expected crash signature.
                    warnings.simplefilter("ignore", RuntimeWarning)
                    resumed = resume_simulation(simulator, fleet, requests)
            except Exception as exc:  # noqa: BLE001 - harness reports, never raises
                failures.append(f"{case}: resume failed: {exc}")
                continue
            if comparable(resumed) != references[mode]:
                failures.append(f"{case}: resumed run differs from uninterrupted reference")
                continue
            summary[case] = {
                "frames": resumed.frames_run,
                "replayed_verified": int(
                    resumed.perf_stats().get("replay_frames_verified", 0)
                ),
            }
    summary["cases"] = len(CRASH_MODES) * len(CRASH_CASES)
    return summary, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=13, help="fault schedule seed")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    parser.add_argument(
        "--crash-recovery",
        action="store_true",
        help="run the SIGKILL crash/resume matrix instead of the fault smoke",
    )
    parser.add_argument(
        "--artifacts-dir",
        type=Path,
        default=None,
        help="keep journals/snapshots here (default: a temp dir, removed on success)",
    )
    parser.add_argument(
        "--crash-child",
        nargs=4,
        metavar=("DIR", "MODE", "FRAME", "PHASE"),
        default=None,
        help=argparse.SUPPRESS,  # internal: the process the plan SIGKILLs
    )
    args = parser.parse_args(argv)

    if args.crash_child is not None:
        directory, mode, frame, phase = args.crash_child
        return crash_child(directory, mode, int(frame), phase)

    if args.crash_recovery:
        cleanup = args.artifacts_dir is None
        artifacts_dir = (
            Path(tempfile.mkdtemp(prefix="chaos-recovery-"))
            if cleanup
            else args.artifacts_dir
        )
        artifacts_dir.mkdir(parents=True, exist_ok=True)
        summary, failures = run_crash_recovery(artifacts_dir)
    else:
        summary, failures = run_chaos(seed=args.seed, workers=args.workers)

    for name, stats in summary.items():
        print(f"{name}: {stats}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print("CHAOS FAILED", file=sys.stderr)
        return 1
    if args.crash_recovery and cleanup:
        shutil.rmtree(artifacts_dir, ignore_errors=True)
    print("CHAOS OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
