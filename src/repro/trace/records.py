"""Trip-record model shared by trace loaders and generators.

A :class:`TripRecord` is one row of a taxi trace: when the request was
made and where the trip starts and ends.  Records keep raw coordinates
(either already-projected kilometres or lon/lat degrees); conversion to
:class:`repro.core.types.PassengerRequest` happens through a
:class:`Projection`, so loaders stay schema-focused.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.errors import TraceFormatError
from repro.core.types import PassengerRequest
from repro.geometry.point import Point

__all__ = ["TripRecord", "Projection", "EquirectangularProjection", "IdentityProjection", "records_to_requests"]


@dataclass(frozen=True, slots=True)
class TripRecord:
    """One taxi trip: request time plus pickup/dropoff coordinates.

    ``pickup``/``dropoff`` are raw coordinates in the source's own system
    (lon/lat for real traces, km for synthetic ones).
    """

    request_time_s: float
    pickup: tuple[float, float]
    dropoff: tuple[float, float]
    passengers: int = 1

    def __post_init__(self) -> None:
        if self.request_time_s < 0.0:
            raise TraceFormatError(f"negative request time {self.request_time_s}")
        if self.passengers < 1:
            raise TraceFormatError(f"non-positive passenger count {self.passengers}")


class Projection:
    """Maps raw record coordinates to planar kilometres."""

    def to_point(self, raw: tuple[float, float]) -> Point:
        raise NotImplementedError


class IdentityProjection(Projection):
    """Raw coordinates are already planar kilometres."""

    def to_point(self, raw: tuple[float, float]) -> Point:
        return Point(float(raw[0]), float(raw[1]))


class EquirectangularProjection(Projection):
    """Equirectangular lon/lat → km projection around a reference point.

    Accurate to well under a percent at city scale, which is all the
    dispatch distances need.
    """

    KM_PER_DEGREE_LAT = 111.32

    def __init__(self, ref_lon: float, ref_lat: float):
        self._ref_lon = float(ref_lon)
        self._ref_lat = float(ref_lat)
        self._km_per_degree_lon = self.KM_PER_DEGREE_LAT * math.cos(math.radians(ref_lat))

    def to_point(self, raw: tuple[float, float]) -> Point:
        lon, lat = raw
        return Point(
            (lon - self._ref_lon) * self._km_per_degree_lon,
            (lat - self._ref_lat) * self.KM_PER_DEGREE_LAT,
        )

    @classmethod
    def centered_on(cls, records: Sequence[TripRecord]) -> "EquirectangularProjection":
        """A projection centred on the mean pickup of ``records``."""
        if not records:
            raise TraceFormatError("cannot centre a projection on an empty trace")
        mean_lon = sum(r.pickup[0] for r in records) / len(records)
        mean_lat = sum(r.pickup[1] for r in records) / len(records)
        return cls(mean_lon, mean_lat)


def records_to_requests(
    records: Iterable[TripRecord],
    projection: Projection | None = None,
    start_id: int = 0,
) -> list[PassengerRequest]:
    """Convert records into requests, sorted by request time.

    Ids are assigned in time order starting at ``start_id`` so that
    Algorithm 2's Rule-2 ordering matches arrival order.
    """
    projection = projection if projection is not None else IdentityProjection()
    ordered = sorted(records, key=lambda r: r.request_time_s)
    return [
        PassengerRequest(
            request_id=start_id + j,
            pickup=projection.to_point(record.pickup),
            dropoff=projection.to_point(record.dropoff),
            request_time_s=record.request_time_s,
            passengers=record.passengers,
        )
        for j, record in enumerate(ordered)
    ]
