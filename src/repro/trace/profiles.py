"""Calibrated city profiles for the synthetic trace generators.

The paper's experiments (Section VI-A) use the NYC yellow-cab trace of
January 2016 (1,445,285 requests, 700 simulated taxis, state-wide area)
and the Boston trace of September 2012 (406,247 requests, 200 simulated
taxis, compact area).  We capture what the dispatch algorithms are
sensitive to:

* daily request volume and the request/taxi ratio,
* the bimodal commute demand curve (morning and evening rush peaks —
  the paper highlights 9 am and 6 pm in Fig. 7),
* the spatial spread of pickups (NYC's wider area is what makes its
  dissatisfaction CDFs stretch further than Boston's, Fig. 4 vs Fig. 5),
* the trip-length distribution (drives the driver pay-off term), and
* the 2-D normal placement of taxis around the city centre.

Volumes are quoted per day (trace total / days in the collection month).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = ["CityProfile", "nyc_profile", "boston_profile", "COMMUTER_HOURLY_WEIGHTS"]

# Share of a day's demand in each clock hour.  Bimodal with peaks at
# 9 am and 6 pm, a lunchtime shoulder, and an overnight trough — the
# shape Fig. 7 of the paper exhibits.  The peak-to-mean ratio is kept
# near the ~1.65 of real urban taxi demand; a sharper curve would push
# the simulated fleet into an all-day saturation regime the paper's
# delay CDFs (75% of dispatches within a minute) rule out.
COMMUTER_HOURLY_WEIGHTS: tuple[float, ...] = (
    2.0, 1.4, 1.0, 0.8, 0.8, 1.2,   # 00-05
    2.2, 3.8, 5.2, 6.0, 5.0, 4.6,   # 06-11, morning peak at 09
    4.8, 4.6, 4.4, 4.6, 5.2, 5.8,   # 12-17, climbing to evening
    6.2, 5.6, 4.8, 4.2, 3.4, 2.6,   # 18-23, evening peak at 18
)


@dataclass(frozen=True, slots=True)
class CityProfile:
    """Everything the synthetic generator needs to mimic one city trace.

    Attributes
    ----------
    name:
        Human-readable trace name.
    daily_requests:
        Requests generated per simulated day at scale 1.0.
    n_taxis:
        Fleet size the paper simulates for this trace.
    pickup_sigma_km:
        Standard deviation of the 2-D normal pickup cloud around the
        city centre (per axis).
    demand_hotspots:
        Optional extra pickup clusters as ``(x, y, sigma, weight)``;
        weights are relative to the central cloud's weight of 1.0.
    trip_length_mean_log / trip_length_sigma_log:
        Parameters of the lognormal trip-length distribution (km).
    taxi_sigma_km:
        Standard deviation of the 2-D normal taxi placement (the paper:
        "locations of taxis follow a two-dimensional normal distribution
        from the center of the city").
    hourly_weights:
        24 relative demand weights; normalised internally.
    space_scale:
        The cumulative length-unit factor applied by :meth:`scaled`
        (1.0 for a paper-sized profile).  Length-typed experiment
        parameters (θ, dummy thresholds, taxi speed) multiply by this so
        scaled runs are dynamically similar to paper-sized ones.
    """

    name: str
    daily_requests: int
    n_taxis: int
    pickup_sigma_km: float
    trip_length_mean_log: float
    trip_length_sigma_log: float
    taxi_sigma_km: float
    demand_hotspots: tuple[tuple[float, float, float, float], ...] = ()
    hourly_weights: tuple[float, ...] = field(default=COMMUTER_HOURLY_WEIGHTS)
    space_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.daily_requests < 1:
            raise ConfigurationError(f"daily_requests must be positive, got {self.daily_requests}")
        if self.n_taxis < 1:
            raise ConfigurationError(f"n_taxis must be positive, got {self.n_taxis}")
        if self.pickup_sigma_km <= 0.0 or self.taxi_sigma_km <= 0.0:
            raise ConfigurationError("spatial sigmas must be positive")
        if self.trip_length_sigma_log <= 0.0:
            raise ConfigurationError("trip_length_sigma_log must be positive")
        if len(self.hourly_weights) != 24:
            raise ConfigurationError(
                f"hourly_weights must have 24 entries, got {len(self.hourly_weights)}"
            )
        if any(w < 0.0 for w in self.hourly_weights) or sum(self.hourly_weights) <= 0.0:
            raise ConfigurationError("hourly_weights must be non-negative with positive sum")
        if self.space_scale <= 0.0:
            raise ConfigurationError("space_scale must be positive")

    @property
    def normalized_hourly_weights(self) -> tuple[float, ...]:
        total = sum(self.hourly_weights)
        return tuple(w / total for w in self.hourly_weights)

    def scaled(self, scale: float, *, shrink_geometry: bool = True) -> "CityProfile":
        """A profile with demand and fleet scaled by ``scale`` (>0).

        Scaling both keeps the request/taxi ratio — the quantity Fig. 6
        shows the algorithms are sensitive to — unchanged.

        With ``shrink_geometry`` (the default) **every length** — city
        spreads, hotspot positions, and trip lengths — also shrinks by
        ``sqrt(scale)``, and the profile's ``space_scale`` records the
        factor so experiment configs can shrink taxi speed, θ and the
        dummy thresholds identically.  The scaled system is then
        *dynamically similar* to the paper-sized one: taxi density,
        per-ride duration, fleet utilization and the request/taxi ratio
        are all preserved, so queueing behaviour (dispatch delays,
        rush-hour buildup) matches the paper's operating point.  Only
        the kilometre-valued dissatisfaction magnitudes carry the
        ``sqrt(scale)`` unit factor, which EXPERIMENTS.md normalizes
        out when comparing against the paper.  Without shrinking, a
        hundredfold-smaller fleet in a full-size city would inflate
        every deadhead leg ~10x and drive the simulation into an
        all-day saturation regime the paper's sub-minute delay CDFs
        rule out.
        """
        if scale <= 0.0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        space = scale**0.5 if shrink_geometry else 1.0
        return CityProfile(
            name=f"{self.name}-x{scale:g}",
            daily_requests=max(1, round(self.daily_requests * scale)),
            n_taxis=max(1, round(self.n_taxis * scale)),
            pickup_sigma_km=self.pickup_sigma_km * space,
            trip_length_mean_log=self.trip_length_mean_log + math.log(space),
            trip_length_sigma_log=self.trip_length_sigma_log,
            taxi_sigma_km=self.taxi_sigma_km * space,
            demand_hotspots=tuple(
                (x * space, y * space, sigma * space, weight)
                for x, y, sigma, weight in self.demand_hotspots
            ),
            hourly_weights=self.hourly_weights,
            space_scale=self.space_scale * space,
        )

    def with_taxis(self, n_taxis: int) -> "CityProfile":
        """A profile with a different fleet size (Fig. 6's sweep)."""
        return CityProfile(
            name=self.name,
            daily_requests=self.daily_requests,
            n_taxis=n_taxis,
            pickup_sigma_km=self.pickup_sigma_km,
            trip_length_mean_log=self.trip_length_mean_log,
            trip_length_sigma_log=self.trip_length_sigma_log,
            taxi_sigma_km=self.taxi_sigma_km,
            demand_hotspots=self.demand_hotspots,
            hourly_weights=self.hourly_weights,
            space_scale=self.space_scale,
        )


def nyc_profile() -> CityProfile:
    """New York trace stand-in: January 2016, 1,445,285 requests / 31 days
    ≈ 46,622 per day, 700 taxis, state-wide spread (large distances)."""
    return CityProfile(
        name="new-york",
        daily_requests=46_622,
        n_taxis=700,
        pickup_sigma_km=18.0,
        trip_length_mean_log=1.30,   # median trip ≈ 3.7 km
        trip_length_sigma_log=0.70,
        taxi_sigma_km=12.0,
        demand_hotspots=(
            (6.0, 4.0, 3.0, 0.35),    # satellite business district
            (-25.0, -14.0, 6.0, 0.15),  # far suburb (state-wide trace)
        ),
    )


def boston_profile() -> CityProfile:
    """Boston trace stand-in: September 2012, 406,247 requests / 30 days
    ≈ 13,542 per day, 200 taxis, compact metro area."""
    return CityProfile(
        name="boston",
        daily_requests=13_542,
        n_taxis=200,
        pickup_sigma_km=5.0,
        trip_length_mean_log=1.00,   # median trip ≈ 2.7 km
        trip_length_sigma_log=0.60,
        taxi_sigma_km=4.0,
        demand_hotspots=((2.5, 1.5, 1.2, 0.30),),
    )
