"""Synthetic trace generation calibrated to a :class:`CityProfile`.

The generator produces one simulated day:

* request times follow an inhomogeneous Poisson-like process whose rate
  tracks the profile's hourly demand weights (uniform within an hour),
* pickups are drawn from a mixture of the central 2-D normal cloud and
  the profile's hotspots,
* trip lengths are lognormal and trip directions are biased toward the
  city centre in the morning and away from it in the evening (a light
  commute signal that makes rush hours geographically coherent),
* taxis are placed by a 2-D normal around the centre, exactly as the
  paper describes.

All randomness flows through a seeded ``numpy.random.Generator`` so
traces are fully reproducible.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.types import PassengerRequest, Taxi
from repro.geometry.point import Point
from repro.trace.profiles import CityProfile

__all__ = ["SyntheticTraceGenerator", "generate_day", "generate_fleet"]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 24.0 * _SECONDS_PER_HOUR


class SyntheticTraceGenerator:
    """Generates requests and fleets for one city profile.

    Parameters
    ----------
    profile:
        Calibrated city statistics.
    seed:
        Seed for the internal random generator.
    commute_bias:
        Strength in [0, 1] of the morning-inbound / evening-outbound
        direction bias; 0 draws isotropic trip directions.
    """

    def __init__(self, profile: CityProfile, seed: int = 0, commute_bias: float = 0.35):
        if not 0.0 <= commute_bias <= 1.0:
            raise ValueError(f"commute_bias must be in [0, 1], got {commute_bias}")
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        self._commute_bias = commute_bias

    # -- requests --------------------------------------------------------

    def requests_for_day(self, n_requests: int | None = None, start_id: int = 0) -> list[PassengerRequest]:
        """One day of requests, sorted by request time, ids from ``start_id``."""
        n = self.profile.daily_requests if n_requests is None else n_requests
        if n < 0:
            raise ValueError(f"n_requests must be non-negative, got {n}")
        if n == 0:
            return []
        times = self._request_times(n)
        pickups = self._pickup_points(n)
        requests = []
        for j in range(n):
            time_s = float(times[j])
            pickup = pickups[j]
            dropoff = self._dropoff_for(pickup, time_s)
            requests.append(
                PassengerRequest(
                    request_id=start_id + j,
                    pickup=pickup,
                    dropoff=dropoff,
                    request_time_s=time_s,
                    passengers=self._party_size(),
                )
            )
        return requests

    def requests_for_window(
        self, start_s: float, end_s: float, n_requests: int, start_id: int = 0
    ) -> list[PassengerRequest]:
        """``n_requests`` requests restricted to a clock window of one day.

        The hourly demand shape within the window is preserved; useful for
        rush-hour experiments without simulating the whole day.
        """
        if not 0.0 <= start_s < end_s <= _SECONDS_PER_DAY:
            raise ValueError(f"invalid window [{start_s}, {end_s}]")
        weights = np.asarray(self.profile.normalized_hourly_weights)
        hours = np.arange(24)
        mask = (hours * _SECONDS_PER_HOUR < end_s) & ((hours + 1) * _SECONDS_PER_HOUR > start_s)
        windowed = np.where(mask, weights, 0.0)
        if windowed.sum() <= 0.0:
            raise ValueError("window covers no demand")
        windowed = windowed / windowed.sum()
        hour_choices = self._rng.choice(24, size=n_requests, p=windowed)
        offsets = self._rng.uniform(0.0, _SECONDS_PER_HOUR, size=n_requests)
        times = np.clip(hour_choices * _SECONDS_PER_HOUR + offsets, start_s, end_s - 1e-6)
        times.sort()
        pickups = self._pickup_points(n_requests)
        requests = []
        for j in range(n_requests):
            time_s = float(times[j])
            pickup = pickups[j]
            requests.append(
                PassengerRequest(
                    request_id=start_id + j,
                    pickup=pickup,
                    dropoff=self._dropoff_for(pickup, time_s),
                    request_time_s=time_s,
                    passengers=self._party_size(),
                )
            )
        return requests

    def _request_times(self, n: int) -> np.ndarray:
        weights = np.asarray(self.profile.normalized_hourly_weights)
        hours = self._rng.choice(24, size=n, p=weights)
        offsets = self._rng.uniform(0.0, _SECONDS_PER_HOUR, size=n)
        times = hours * _SECONDS_PER_HOUR + offsets
        times.sort()
        return times

    def _pickup_points(self, n: int) -> list[Point]:
        hotspots = self.profile.demand_hotspots
        weights = np.asarray([1.0] + [h[3] for h in hotspots])
        weights = weights / weights.sum()
        choices = self._rng.choice(len(weights), size=n, p=weights)
        points: list[Point] = []
        for c in choices:
            if c == 0:
                sigma = self.profile.pickup_sigma_km
                center_x, center_y = 0.0, 0.0
            else:
                center_x, center_y, sigma, _ = hotspots[c - 1]
            x = self._rng.normal(center_x, sigma)
            y = self._rng.normal(center_y, sigma)
            points.append(Point(float(x), float(y)))
        return points

    def _dropoff_for(self, pickup: Point, time_s: float) -> Point:
        length = float(
            self._rng.lognormal(self.profile.trip_length_mean_log, self.profile.trip_length_sigma_log)
        )
        # No zero-length trips; the floor carries the profile's length
        # unit so geometry-shrunk cities keep it proportionate.
        length = max(length, 0.2 * self.profile.space_scale)
        angle = float(self._rng.uniform(0.0, 2.0 * math.pi))
        direction_x, direction_y = math.cos(angle), math.sin(angle)
        hour = time_s / _SECONDS_PER_HOUR
        bias = self._commute_bias_at(hour)
        center_gap = math.hypot(pickup.x, pickup.y)
        if abs(bias) > 0.0 and center_gap > 0.0:
            toward_center_x = -pickup.x / center_gap
            toward_center_y = -pickup.y / center_gap
            sign = 1.0 if bias > 0.0 else -1.0
            strength = abs(bias)
            direction_x = (1.0 - strength) * direction_x + strength * sign * toward_center_x
            direction_y = (1.0 - strength) * direction_y + strength * sign * toward_center_y
            norm = math.hypot(direction_x, direction_y)
            if norm > 1e-12:
                direction_x, direction_y = direction_x / norm, direction_y / norm
        return Point(pickup.x + length * direction_x, pickup.y + length * direction_y)

    def _commute_bias_at(self, hour: float) -> float:
        """Positive → trips flow toward the centre (morning commute)."""
        if 6.0 <= hour < 11.0:
            return self._commute_bias
        if 16.0 <= hour < 21.0:
            return -self._commute_bias
        return 0.0

    def _party_size(self) -> int:
        # Roughly matches TLC passenger_count frequencies: mostly singles.
        return int(self._rng.choice([1, 1, 1, 1, 1, 1, 1, 2, 2, 3]))

    # -- taxis -----------------------------------------------------------

    def fleet(self, n_taxis: int | None = None, seats: int = 4) -> list[Taxi]:
        """A fleet placed by the paper's 2-D normal around the centre."""
        n = self.profile.n_taxis if n_taxis is None else n_taxis
        if n < 0:
            raise ValueError(f"n_taxis must be non-negative, got {n}")
        sigma = self.profile.taxi_sigma_km
        xs = self._rng.normal(0.0, sigma, size=n)
        ys = self._rng.normal(0.0, sigma, size=n)
        return [Taxi(taxi_id=i, location=Point(float(xs[i]), float(ys[i])), seats=seats) for i in range(n)]


def generate_day(profile: CityProfile, seed: int = 0, n_requests: int | None = None) -> list[PassengerRequest]:
    """Convenience wrapper: one day of requests for ``profile``."""
    return SyntheticTraceGenerator(profile, seed=seed).requests_for_day(n_requests)


def generate_fleet(profile: CityProfile, seed: int = 0, n_taxis: int | None = None) -> list[Taxi]:
    """Convenience wrapper: a taxi fleet for ``profile``.

    Uses an offset seed so fleets and requests drawn with the same seed
    are independent.
    """
    return SyntheticTraceGenerator(profile, seed=seed + 7919).fleet(n_taxis)
