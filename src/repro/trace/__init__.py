"""Trace substrate: trip records, real-trace loaders, synthetic generators."""

from repro.trace.loader import LoadReport, load_generic_trace, load_nyc_trace
from repro.trace.persistence import (
    load_fleet_csv,
    load_requests_csv,
    save_fleet_csv,
    save_requests_csv,
)
from repro.trace.profiles import (
    COMMUTER_HOURLY_WEIGHTS,
    CityProfile,
    boston_profile,
    nyc_profile,
)
from repro.trace.records import (
    EquirectangularProjection,
    IdentityProjection,
    Projection,
    TripRecord,
    records_to_requests,
)
from repro.trace.synthetic import SyntheticTraceGenerator, generate_day, generate_fleet

__all__ = [
    "TripRecord",
    "Projection",
    "IdentityProjection",
    "EquirectangularProjection",
    "records_to_requests",
    "LoadReport",
    "load_nyc_trace",
    "load_generic_trace",
    "save_requests_csv",
    "load_requests_csv",
    "save_fleet_csv",
    "load_fleet_csv",
    "CityProfile",
    "nyc_profile",
    "boston_profile",
    "COMMUTER_HOURLY_WEIGHTS",
    "SyntheticTraceGenerator",
    "generate_day",
    "generate_fleet",
]
