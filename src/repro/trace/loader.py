"""CSV loaders for the real traces the paper evaluates on.

Two schemas are supported:

* **NYC yellow cab** (TLC trip records, the paper's [22]): columns
  ``tpep_pickup_datetime, pickup_longitude, pickup_latitude,
  dropoff_longitude, dropoff_latitude, passenger_count`` (extra columns
  are ignored; 2016-era header names and the modern ``lpep_`` prefix are
  both accepted).
* **Boston hackney** (the paper's [23]): a generic
  ``time,pickup_lon,pickup_lat,dropoff_lon,dropoff_lat[,passengers]``
  layout, with the time either an ISO timestamp or seconds-from-start.

Loaders return :class:`TripRecord` lists; use
:func:`repro.trace.records.records_to_requests` with an
:class:`EquirectangularProjection` to obtain planar requests.  Rows with
missing or degenerate coordinates (the TLC dumps contain zero lon/lat
rows) are skipped and counted.
"""

from __future__ import annotations

import csv
import datetime as dt
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import TraceFormatError
from repro.trace.records import TripRecord

__all__ = ["LoadReport", "load_nyc_trace", "load_generic_trace", "parse_timestamp"]

#: Skip ratio above which loaders emit a data-quality warning.
_SKIP_WARN_RATIO = 0.01

_NYC_TIME_COLUMNS = ("tpep_pickup_datetime", "lpep_pickup_datetime", "pickup_datetime")
_NYC_COLUMN_SETS = {
    "pickup_lon": ("pickup_longitude", "Pickup_longitude"),
    "pickup_lat": ("pickup_latitude", "Pickup_latitude"),
    "dropoff_lon": ("dropoff_longitude", "Dropoff_longitude"),
    "dropoff_lat": ("dropoff_latitude", "Dropoff_latitude"),
    "passengers": ("passenger_count", "Passenger_count"),
}


@dataclass(slots=True)
class LoadReport:
    """Outcome of a trace load: the records plus skip accounting.

    ``skip_reasons`` breaks ``skipped_rows`` down by cause
    (``short_row``, ``bad_timestamp``, ``bad_coordinate``,
    ``bad_passengers``, ``degenerate_coords``); the per-reason counts
    always sum to ``skipped_rows``.
    """

    records: list[TripRecord]
    total_rows: int
    skipped_rows: int
    skip_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def loaded_rows(self) -> int:
        return len(self.records)

    @property
    def skip_ratio(self) -> float:
        return self.skipped_rows / self.total_rows if self.total_rows else 0.0


def _warn_if_lossy(report: LoadReport, path: Path) -> LoadReport:
    if report.skip_ratio > _SKIP_WARN_RATIO:
        breakdown = ", ".join(
            f"{reason}={count}" for reason, count in sorted(report.skip_reasons.items())
        )
        warnings.warn(
            f"{path}: skipped {report.skipped_rows}/{report.total_rows} rows "
            f"({report.skip_ratio:.1%}) — {breakdown}",
            RuntimeWarning,
            stacklevel=3,
        )
    return report


def parse_timestamp(value: str) -> dt.datetime:
    """Parse the timestamp formats that appear in taxi dumps."""
    value = value.strip()
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S", "%m/%d/%Y %H:%M:%S", "%m/%d/%Y %H:%M"):
        try:
            return dt.datetime.strptime(value, fmt)
        except ValueError:
            continue
    raise TraceFormatError(f"unrecognised timestamp {value!r}")


def _resolve_column(header: list[str], candidates: tuple[str, ...], what: str) -> str:
    for candidate in candidates:
        if candidate in header:
            return candidate
    raise TraceFormatError(f"no {what} column among {candidates} in header {header}")


def load_nyc_trace(path: str | Path, max_rows: int | None = None) -> LoadReport:
    """Load a TLC yellow/green cab CSV into trip records.

    Request times are seconds since the earliest pickup in the file.
    """
    path = Path(path)
    rows: list[tuple[dt.datetime, float, float, float, float, int]] = []
    total = 0
    skipped = 0
    reasons: dict[str, int] = {}

    def skip(reason: str) -> None:
        nonlocal skipped
        skipped += 1
        reasons[reason] = reasons.get(reason, 0) + 1

    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceFormatError(f"{path} has no header row")
        header = [name.strip() for name in reader.fieldnames]
        time_col = _resolve_column(header, _NYC_TIME_COLUMNS, "pickup time")
        cols = {
            key: _resolve_column(header, candidates, key)
            for key, candidates in _NYC_COLUMN_SETS.items()
        }
        for row in reader:
            total += 1
            if max_rows is not None and total > max_rows:
                total -= 1
                break
            try:
                when = parse_timestamp(row[time_col] or "")
            except (TraceFormatError, KeyError):
                skip("bad_timestamp")
                continue
            try:
                plon = float(row[cols["pickup_lon"]])
                plat = float(row[cols["pickup_lat"]])
                dlon = float(row[cols["dropoff_lon"]])
                dlat = float(row[cols["dropoff_lat"]])
            except (ValueError, TypeError, KeyError):
                skip("bad_coordinate")
                continue
            try:
                passengers = max(1, int(float(row[cols["passengers"]] or 1)))
            except (ValueError, TypeError, KeyError):
                skip("bad_passengers")
                continue
            if _degenerate(plon, plat) or _degenerate(dlon, dlat):
                skip("degenerate_coords")
                continue
            rows.append((when, plon, plat, dlon, dlat, passengers))
    if not rows:
        return _warn_if_lossy(
            LoadReport(records=[], total_rows=total, skipped_rows=skipped, skip_reasons=reasons),
            path,
        )
    epoch = min(r[0] for r in rows)
    records = [
        TripRecord(
            request_time_s=(when - epoch).total_seconds(),
            pickup=(plon, plat),
            dropoff=(dlon, dlat),
            passengers=passengers,
        )
        for when, plon, plat, dlon, dlat, passengers in rows
    ]
    return _warn_if_lossy(
        LoadReport(records=records, total_rows=total, skipped_rows=skipped, skip_reasons=reasons),
        path,
    )


def load_generic_trace(path: str | Path, max_rows: int | None = None) -> LoadReport:
    """Load a ``time,pickup_lon,pickup_lat,dropoff_lon,dropoff_lat[,passengers]``
    CSV (the layout we use for the Boston trace)."""
    path = Path(path)
    raw: list[tuple[float | dt.datetime, float, float, float, float, int]] = []
    total = 0
    skipped = 0
    reasons: dict[str, int] = {}

    def skip(reason: str) -> None:
        nonlocal skipped
        skipped += 1
        reasons[reason] = reasons.get(reason, 0) + 1

    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise TraceFormatError(f"{path} is empty")
        for row in reader:
            total += 1
            if max_rows is not None and total > max_rows:
                total -= 1
                break
            if len(row) < 5:
                skip("short_row")
                continue
            time_field = row[0].strip()
            when: float | dt.datetime
            try:
                try:
                    when = float(time_field)
                except ValueError:
                    when = parse_timestamp(time_field)
            except TraceFormatError:
                skip("bad_timestamp")
                continue
            try:
                plon, plat, dlon, dlat = (float(v) for v in row[1:5])
            except ValueError:
                skip("bad_coordinate")
                continue
            try:
                passengers = max(1, int(float(row[5]))) if len(row) > 5 and row[5].strip() else 1
            except ValueError:
                skip("bad_passengers")
                continue
            if _degenerate(plon, plat) or _degenerate(dlon, dlat):
                skip("degenerate_coords")
                continue
            raw.append((when, plon, plat, dlon, dlat, passengers))
    if not raw:
        return _warn_if_lossy(
            LoadReport(records=[], total_rows=total, skipped_rows=skipped, skip_reasons=reasons),
            path,
        )
    if isinstance(raw[0][0], dt.datetime):
        epoch = min(r[0] for r in raw)  # type: ignore[type-var]
        times = [(r[0] - epoch).total_seconds() for r in raw]  # type: ignore[operator]
    else:
        base = min(float(r[0]) for r in raw)  # type: ignore[arg-type]
        times = [float(r[0]) - base for r in raw]  # type: ignore[arg-type]
    records = [
        TripRecord(request_time_s=t, pickup=(r[1], r[2]), dropoff=(r[3], r[4]), passengers=r[5])
        for t, r in zip(times, raw)
    ]
    return _warn_if_lossy(
        LoadReport(records=records, total_rows=total, skipped_rows=skipped, skip_reasons=reasons),
        path,
    )


def _degenerate(lon: float, lat: float) -> bool:
    """TLC dumps mark missing coordinates as (0, 0)."""
    return abs(lon) < 1e-9 and abs(lat) < 1e-9
