"""Saving and reloading workloads as CSV artifacts.

Reproducibility beyond seeds: a generated trace can be frozen to disk
in the generic ``time,plon,plat,dlon,dlat,passengers`` layout the
Boston loader reads, shared alongside results, and replayed bit-exact
on another machine.  Coordinates are written as planar kilometres with
an identity projection, so a round trip loses nothing but float
formatting (12 significant digits, well beyond the physics).
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Sequence

from repro.core.errors import TraceFormatError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.point import Point
from repro.trace.records import IdentityProjection, TripRecord, records_to_requests

__all__ = ["save_requests_csv", "load_requests_csv", "save_fleet_csv", "load_fleet_csv"]

_FLOAT = "{:.12g}"


def save_requests_csv(requests: Sequence[PassengerRequest], path: str | Path) -> int:
    """Write requests in the generic trace layout; returns rows written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "plon", "plat", "dlon", "dlat", "passengers"])
        count = 0
        for request in sorted(requests, key=lambda r: (r.request_time_s, r.request_id)):
            writer.writerow(
                [
                    _FLOAT.format(request.request_time_s),
                    _FLOAT.format(request.pickup.x),
                    _FLOAT.format(request.pickup.y),
                    _FLOAT.format(request.dropoff.x),
                    _FLOAT.format(request.dropoff.y),
                    request.passengers,
                ]
            )
            count += 1
    return count


def load_requests_csv(path: str | Path, start_id: int = 0) -> list[PassengerRequest]:
    """Load a planar-kilometre request CSV back into requests.

    Request times are kept verbatim (unlike :func:`load_generic_trace`,
    which rebases a raw city dump to its earliest pickup — a frozen
    workload must replay at its exact clock positions).  Ids are
    re-assigned in time order from ``start_id``; arrival order is what
    the algorithms key on.
    """
    path = Path(path)
    records = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"time", "plon", "plat", "dlon", "dlat"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise TraceFormatError(
                f"{path} is not a saved trace (need columns {sorted(required)})"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                records.append(
                    TripRecord(
                        request_time_s=float(row["time"]),
                        pickup=(float(row["plon"]), float(row["plat"])),
                        dropoff=(float(row["dlon"]), float(row["dlat"])),
                        passengers=int(row.get("passengers") or 1),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{line_number}: malformed saved-trace row") from exc
    return records_to_requests(records, IdentityProjection(), start_id=start_id)


def save_fleet_csv(taxis: Sequence[Taxi], path: str | Path) -> int:
    """Write a fleet as ``taxi_id,x,y,seats``; returns rows written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["taxi_id", "x", "y", "seats"])
        count = 0
        for taxi in sorted(taxis, key=lambda t: t.taxi_id):
            writer.writerow(
                [
                    taxi.taxi_id,
                    _FLOAT.format(taxi.location.x),
                    _FLOAT.format(taxi.location.y),
                    taxi.seats,
                ]
            )
            count += 1
    return count


def load_fleet_csv(path: str | Path) -> list[Taxi]:
    """Load a fleet CSV written by :func:`save_fleet_csv`."""
    path = Path(path)
    taxis: list[Taxi] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"taxi_id", "x", "y", "seats"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise TraceFormatError(f"{path} is not a fleet CSV (need columns {sorted(required)})")
        for line_number, row in enumerate(reader, start=2):
            try:
                taxis.append(
                    Taxi(
                        taxi_id=int(row["taxi_id"]),
                        location=Point(float(row["x"]), float(row["y"])),
                        seats=int(row["seats"]),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{line_number}: bad fleet row") from exc
    return taxis
