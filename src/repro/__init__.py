"""repro — O2O urban taxi dispatching with passenger-driver matching stability.

A full reproduction of Zheng & Wu, *"Online to Offline Business: Urban
Taxi Dispatching with Passenger-Driver Matching Stability"* (ICDCS
2017): the stable-marriage dispatchers NSTD-P/NSTD-T, the all-stable-
matchings enumeration, the set-packing sharing dispatchers STD-P/STD-T,
every comparison baseline, and the trace-driven simulation used to
evaluate them.

Quickstart::

    from repro import (EuclideanDistance, PassengerRequest, Taxi, Point,
                       DispatchConfig, nstd_p)

    oracle = EuclideanDistance()
    taxis = [Taxi(0, Point(0.0, 0.0)), Taxi(1, Point(5.0, 0.0))]
    requests = [PassengerRequest(0, Point(1.0, 0.0), Point(9.0, 0.0))]
    schedule = nstd_p(oracle, DispatchConfig()).dispatch(taxis, requests)
    print(schedule.taxi_of)  # {0: 0}

See ``examples/`` for full city-day simulations and ``benchmarks/`` for
the per-figure reproduction harnesses.
"""

from repro.core import (
    Assignment,
    DispatchConfig,
    DispatchSchedule,
    PassengerRequest,
    ReproError,
    RideGroup,
    RouteStop,
    SimulationConfig,
    Taxi,
)
from repro.dispatch import (
    Dispatcher,
    GreedyNearestDispatcher,
    ILPDispatcher,
    MinCostDispatcher,
    MinimaxDispatcher,
    NSTDDispatcher,
    RAIIDispatcher,
    SARPDispatcher,
    STDDispatcher,
    assignment_metrics,
    nstd_p,
    nstd_t,
    std_p,
    std_t,
)
from repro.geometry import (
    EuclideanDistance,
    GridSpatialIndex,
    HaversineDistance,
    ManhattanDistance,
    Point,
)
from repro.matching import (
    Matching,
    PreferenceTable,
    all_stable_matchings,
    build_nonsharing_table,
    deferred_acceptance,
    find_blocking_pairs,
    is_stable,
    passenger_optimal,
    taxi_optimal,
)
from repro.simulation import SimulationResult, Simulator
from repro.trace import (
    CityProfile,
    SyntheticTraceGenerator,
    boston_profile,
    generate_day,
    generate_fleet,
    nyc_profile,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Point",
    "Taxi",
    "PassengerRequest",
    "RideGroup",
    "RouteStop",
    "Assignment",
    "DispatchSchedule",
    "DispatchConfig",
    "SimulationConfig",
    "ReproError",
    # geometry
    "EuclideanDistance",
    "ManhattanDistance",
    "HaversineDistance",
    "GridSpatialIndex",
    # matching
    "PreferenceTable",
    "build_nonsharing_table",
    "Matching",
    "deferred_acceptance",
    "all_stable_matchings",
    "passenger_optimal",
    "taxi_optimal",
    "is_stable",
    "find_blocking_pairs",
    # dispatch
    "Dispatcher",
    "NSTDDispatcher",
    "nstd_p",
    "nstd_t",
    "GreedyNearestDispatcher",
    "MinCostDispatcher",
    "MinimaxDispatcher",
    "STDDispatcher",
    "std_p",
    "std_t",
    "RAIIDispatcher",
    "SARPDispatcher",
    "ILPDispatcher",
    "assignment_metrics",
    # simulation
    "Simulator",
    "SimulationResult",
    # traces
    "CityProfile",
    "nyc_profile",
    "boston_profile",
    "SyntheticTraceGenerator",
    "generate_day",
    "generate_fleet",
]
