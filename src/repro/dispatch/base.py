"""Dispatcher interface and assignment construction helpers.

A dispatcher sees one frame's idle taxis and pending requests and
returns a :class:`DispatchSchedule`; the simulation engine owns taxi
motion and request queueing across frames.  Dispatchers are constructed
once with their distance oracle and :class:`DispatchConfig` and are
stateless across frames by default (the engine may re-run a frame
during tests).  A dispatcher that opts into warm-start acceleration
carries frame-to-frame solver state; the engine owns its lifecycle
through :meth:`Dispatcher.reset_warm_state` (called at run start and
whenever a degradation-ladder fallback answered a frame, which breaks
the consecutive-frame invariant the state relies on).
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.core.config import DispatchConfig
from repro.core.errors import DispatchError
from repro.core.types import (
    Assignment,
    DispatchSchedule,
    PassengerRequest,
    RideGroup,
    RouteStop,
    Taxi,
)
from repro.geometry.distance import DistanceOracle

if TYPE_CHECKING:  # imported lazily to avoid a dispatch <-> simulation cycle
    import numpy as np

    from repro.matching.arrays import PreferenceArrays
    from repro.resilience.budget import FrameBudget
    from repro.simulation.frame_cache import FrameDistanceCache

__all__ = [
    "Dispatcher",
    "PackedSingleSchedule",
    "single_assignment",
    "trusted_single_assignment",
    "group_assignment",
]


class Dispatcher(abc.ABC):
    """Base class of every dispatch algorithm in the evaluation."""

    #: Short identifier used in experiment reports (e.g. "NSTD-P").
    name: str = "base"

    #: Optional per-frame distance memo, installed by the simulation
    #: engine (which also invalidates it every frame).  Dispatchers read
    #: it opportunistically; ``None`` means "compute from the oracle",
    #: and both paths are bit-identical by the exactness contract.
    frame_cache: "FrameDistanceCache | None" = None

    #: Optional frame deadline, installed by the simulation engine when a
    #: resilience policy is active.  Dispatchers call :meth:`checkpoint`
    #: at stage boundaries; with no budget installed a checkpoint is a
    #: no-op, so instrumented dispatchers behave identically outside the
    #: resilience path.
    frame_budget: "FrameBudget | None" = None

    #: Which solve path answered the most recent :meth:`dispatch` call
    #: (``"cold"``, ``"warm"``, ``"warm_sharded"``, ``"sharded_cold"``);
    #: ``None`` until a frame runs.  The stability auditor keys its
    #: sampling eligibility off this — only fast-path frames carry state
    #: worth re-verifying.
    last_frame_mode: str | None = None

    def __init__(self, oracle: DistanceOracle, config: DispatchConfig | None = None):
        self.oracle = oracle
        self.config = config if config is not None else DispatchConfig()
        self.frame_cache = None
        self.frame_budget = None

    def checkpoint(self, label: str | None = None) -> None:
        """Cooperative frame-deadline check (see ``frame_budget``)."""
        budget = self.frame_budget
        if budget is not None:
            budget.checkpoint(label)

    def reset_warm_state(self, *, counters: bool = False) -> None:
        """Discard any frame-to-frame solver state (no-op by default).

        The engine calls this at the start of every run (with
        ``counters=True``, which also zeroes :meth:`run_telemetry`) and
        after any frame a degradation-ladder fallback answered: warm
        state is only valid between *consecutive* frames solved by this
        dispatcher.
        """

    def invalidate_warm_state(self, *, reason: str = "external") -> None:
        """Explicitly drop carried solver state as *suspect*, with a reason.

        Unlike :meth:`reset_warm_state` (a lifecycle call the engine
        makes at known-safe boundaries), this marks the state as
        possibly corrupt — the stability auditor calls it when a
        re-verification finds blocking pairs in a fast-path frame.
        Stateful dispatchers record the reason in run telemetry;
        the default implementation just resets.
        """
        self.reset_warm_state()

    def audit_preferences(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> "PreferenceArrays":
        """The frame's preference structure, rebuilt by the cold path.

        Used by the stability auditor to re-verify a fast-path matching
        against preferences constructed independently of any carried
        solver state.  Dispatchers without a preference model (greedy
        baselines) have nothing to audit and raise.
        """
        raise NotImplementedError(f"{self.name} has no auditable preference model")

    def run_telemetry(self) -> dict[str, float | int]:
        """Counters accumulated over a run, for ``perf_stats()`` reporting.

        Stateless dispatchers have none; warm-start dispatchers report
        warm/cold frame counts and rebuild fractions.  Keys should be
        flat and JSON-friendly.
        """
        return {}

    def restore_telemetry(self, counters: Mapping[str, float | int]) -> None:
        """Adopt checkpointed :meth:`run_telemetry` counters on resume.

        No-op by default (stateless dispatchers have no counters);
        stateful dispatchers replace their counter dict so a recovered
        run's telemetry continues from the snapshot instead of zero.
        """

    def state_payload(self) -> dict[str, Any]:
        """Everything of this dispatcher a checkpoint must round-trip.

        The engine embeds this dict in its frame-boundary snapshots and
        feeds it back through :meth:`restore_state` on crash-recovery
        resume; together the pair owns the durability contract that
        ``repro-lint`` REP008 enforces — every attribute a dispatcher
        mutates across frames is either reachable from here or declared
        (with a reason) in a class-level ``DURABILITY_EXCLUSIONS`` dict.
        The base payload carries the run telemetry; stateful
        dispatchers extend the dict (keep keys JSON-friendly).
        """
        return {"telemetry": dict(self.run_telemetry())}

    def restore_state(self, payload: Mapping[str, Any]) -> None:
        """Adopt a :meth:`state_payload` snapshot on crash-recovery resume.

        Must restore everything its :meth:`state_payload` captured;
        tolerate missing keys (payloads written by older schema
        versions are rejected upstream by the checkpoint loader, so a
        missing key here only means "state that did not exist yet").
        """
        self.restore_telemetry(payload.get("telemetry") or {})

    @abc.abstractmethod
    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        """Assign idle ``taxis`` to pending ``requests`` for one frame.

        Implementations must leave unassigned requests out of the
        schedule (they stay queued) and must never assign a taxi or
        request twice; the engine validates this and raises
        :class:`DispatchError` on violations.
        """

    def _validated(
        self,
        schedule: DispatchSchedule,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
    ) -> DispatchSchedule:
        try:
            schedule.validate(list(taxis), list(requests))
        except ValueError as exc:
            raise DispatchError(f"{self.name}: {exc}") from exc
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def single_assignment(taxi: Taxi, request: PassengerRequest) -> Assignment:
    """A non-sharing assignment: drive to the pickup, then the dropoff."""
    return Assignment(
        taxi_id=taxi.taxi_id,
        request_ids=(request.request_id,),
        stops=(
            RouteStop(request_id=request.request_id, is_pickup=True, point=request.pickup),
            RouteStop(request_id=request.request_id, is_pickup=False, point=request.dropoff),
        ),
    )


def trusted_single_assignment(taxi: Taxi, request: PassengerRequest) -> Assignment:
    """:func:`single_assignment` minus the dataclass validation pass.

    The two-stop non-sharing plan is structurally valid by construction
    — one request, its pickup before its dropoff, no duplicates — so
    every branch of ``Assignment.__post_init__`` is statically known to
    pass and the frozen-dataclass ``__init__``/``__post_init__`` pair is
    bypassed with direct slot writes (for the stops too: a frozen
    dataclass ``__init__`` is itself a sequence of ``object.__setattr__``
    calls, so the bypass writes the same slots minus the call layers).
    Meant for solver egress loops that emit tens of thousands of
    assignments per simulated day; the engine still validates every
    schedule it executes.
    """
    request_id = request.request_id
    pickup = object.__new__(RouteStop)
    object.__setattr__(pickup, "request_id", request_id)
    object.__setattr__(pickup, "is_pickup", True)
    object.__setattr__(pickup, "point", request.pickup)
    dropoff = object.__new__(RouteStop)
    object.__setattr__(dropoff, "request_id", request_id)
    object.__setattr__(dropoff, "is_pickup", False)
    object.__setattr__(dropoff, "point", request.dropoff)
    assignment = object.__new__(Assignment)
    object.__setattr__(assignment, "taxi_id", taxi.taxi_id)
    object.__setattr__(assignment, "request_ids", (request_id,))
    object.__setattr__(assignment, "stops", (pickup, dropoff))
    return assignment


class PackedSingleSchedule(DispatchSchedule):
    """A frame's single-request assignments held as matched row arrays.

    Array egress paths (the sharded warm solver) already know the
    matched ``(taxi, request)`` rows into the frame's own ``taxis`` /
    ``requests`` sequences — and, when available, the exact pickup and
    trip leg lengths of every pair.  This schedule carries those arrays
    verbatim so the simulation engine can execute the frame without
    constructing one :class:`Assignment` (three frozen objects) per
    matched pair.  Every other consumer sees a normal
    :class:`DispatchSchedule`: the ``assignments`` list materializes
    lazily on first access through the canonical two-stop constructor.

    The schedule is finalized at construction; do not ``add`` to it —
    the row arrays would not see the appended assignment.

    ``pickup_km`` / ``trip_km`` (when not ``None``) are aligned with the
    row arrays and owe bit-equality with the scalar oracle under the
    batch-exactness contract; consumers may use them in place of
    ``oracle.distance`` calls for the matched legs.
    """

    __slots__ = ("taxis", "requests", "taxi_rows", "request_rows", "pickup_km", "trip_km")

    def __init__(
        self,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        taxi_rows: "np.ndarray",
        request_rows: "np.ndarray",
        *,
        pickup_km: "np.ndarray | None" = None,
        trip_km: "np.ndarray | None" = None,
    ):
        # ``assignments`` is intentionally left unset: the slot stays
        # empty until ``__getattr__`` materializes the object view.
        self.taxis = taxis
        self.requests = requests
        self.taxi_rows = taxi_rows
        self.request_rows = request_rows
        self.pickup_km = pickup_km
        self.trip_km = trip_km

    def __getattr__(self, name: str) -> list[Assignment]:
        # Reached only when normal lookup fails — i.e. the first read of
        # the never-assigned ``assignments`` slot.
        if name == "assignments":
            materialized = [
                trusted_single_assignment(self.taxis[t_row], self.requests[r_row])
                for t_row, r_row in zip(self.taxi_rows.tolist(), self.request_rows.tolist())
            ]
            self.assignments = materialized
            return materialized
        raise AttributeError(name)


def group_assignment(taxi: Taxi, group: RideGroup) -> Assignment:
    """A sharing assignment following the group's precomputed route."""
    return Assignment(
        taxi_id=taxi.taxi_id,
        request_ids=group.request_ids,
        stops=group.route,
    )
