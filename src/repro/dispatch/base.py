"""Dispatcher interface and assignment construction helpers.

A dispatcher sees one frame's idle taxis and pending requests and
returns a :class:`DispatchSchedule`; the simulation engine owns taxi
motion and request queueing across frames.  Dispatchers are constructed
once with their distance oracle and :class:`DispatchConfig` and are
stateless across frames by default (the engine may re-run a frame
during tests).  A dispatcher that opts into warm-start acceleration
carries frame-to-frame solver state; the engine owns its lifecycle
through :meth:`Dispatcher.reset_warm_state` (called at run start and
whenever a degradation-ladder fallback answered a frame, which breaks
the consecutive-frame invariant the state relies on).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.config import DispatchConfig
from repro.core.errors import DispatchError
from repro.core.types import (
    Assignment,
    DispatchSchedule,
    PassengerRequest,
    RideGroup,
    RouteStop,
    Taxi,
)
from repro.geometry.distance import DistanceOracle

if TYPE_CHECKING:  # imported lazily to avoid a dispatch <-> simulation cycle
    from repro.resilience.budget import FrameBudget
    from repro.simulation.frame_cache import FrameDistanceCache

__all__ = ["Dispatcher", "single_assignment", "group_assignment"]


class Dispatcher(abc.ABC):
    """Base class of every dispatch algorithm in the evaluation."""

    #: Short identifier used in experiment reports (e.g. "NSTD-P").
    name: str = "base"

    #: Optional per-frame distance memo, installed by the simulation
    #: engine (which also invalidates it every frame).  Dispatchers read
    #: it opportunistically; ``None`` means "compute from the oracle",
    #: and both paths are bit-identical by the exactness contract.
    frame_cache: "FrameDistanceCache | None" = None

    #: Optional frame deadline, installed by the simulation engine when a
    #: resilience policy is active.  Dispatchers call :meth:`checkpoint`
    #: at stage boundaries; with no budget installed a checkpoint is a
    #: no-op, so instrumented dispatchers behave identically outside the
    #: resilience path.
    frame_budget: "FrameBudget | None" = None

    def __init__(self, oracle: DistanceOracle, config: DispatchConfig | None = None):
        self.oracle = oracle
        self.config = config if config is not None else DispatchConfig()
        self.frame_cache = None
        self.frame_budget = None

    def checkpoint(self, label: str | None = None) -> None:
        """Cooperative frame-deadline check (see ``frame_budget``)."""
        budget = self.frame_budget
        if budget is not None:
            budget.checkpoint(label)

    def reset_warm_state(self, *, counters: bool = False) -> None:
        """Discard any frame-to-frame solver state (no-op by default).

        The engine calls this at the start of every run (with
        ``counters=True``, which also zeroes :meth:`run_telemetry`) and
        after any frame a degradation-ladder fallback answered: warm
        state is only valid between *consecutive* frames solved by this
        dispatcher.
        """

    def run_telemetry(self) -> dict[str, float | int]:
        """Counters accumulated over a run, for ``perf_stats()`` reporting.

        Stateless dispatchers have none; warm-start dispatchers report
        warm/cold frame counts and rebuild fractions.  Keys should be
        flat and JSON-friendly.
        """
        return {}

    @abc.abstractmethod
    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        """Assign idle ``taxis`` to pending ``requests`` for one frame.

        Implementations must leave unassigned requests out of the
        schedule (they stay queued) and must never assign a taxi or
        request twice; the engine validates this and raises
        :class:`DispatchError` on violations.
        """

    def _validated(
        self,
        schedule: DispatchSchedule,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
    ) -> DispatchSchedule:
        try:
            schedule.validate(list(taxis), list(requests))
        except ValueError as exc:
            raise DispatchError(f"{self.name}: {exc}") from exc
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def single_assignment(taxi: Taxi, request: PassengerRequest) -> Assignment:
    """A non-sharing assignment: drive to the pickup, then the dropoff."""
    return Assignment(
        taxi_id=taxi.taxi_id,
        request_ids=(request.request_id,),
        stops=(
            RouteStop(request_id=request.request_id, is_pickup=True, point=request.pickup),
            RouteStop(request_id=request.request_id, is_pickup=False, point=request.dropoff),
        ),
    )


def group_assignment(taxi: Taxi, group: RideGroup) -> Assignment:
    """A sharing assignment following the group's precomputed route."""
    return Assignment(
        taxi_id=taxi.taxi_id,
        request_ids=group.request_ids,
        stops=group.route,
    )
