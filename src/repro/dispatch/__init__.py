"""Dispatch layer: the Dispatcher protocol and the eleven dispatchers
(the paper's ten plus the NSTD-M median extension)."""

from repro.dispatch.base import Dispatcher, group_assignment, single_assignment
from repro.dispatch.nonsharing import (
    GreedyNearestDispatcher,
    MinCostDispatcher,
    MinimaxDispatcher,
    NSTDDispatcher,
    nstd_m,
    nstd_p,
    nstd_t,
)
from repro.dispatch.scoring import AssignmentMetrics, assignment_metrics, route_leg_lengths
from repro.dispatch.sharing import (
    ILPDispatcher,
    RAIIDispatcher,
    SARPDispatcher,
    STDDispatcher,
    std_p,
    std_t,
)

__all__ = [
    "Dispatcher",
    "single_assignment",
    "group_assignment",
    "AssignmentMetrics",
    "assignment_metrics",
    "route_leg_lengths",
    "NSTDDispatcher",
    "nstd_p",
    "nstd_t",
    "nstd_m",
    "GreedyNearestDispatcher",
    "MinCostDispatcher",
    "MinimaxDispatcher",
    "STDDispatcher",
    "std_p",
    "std_t",
    "RAIIDispatcher",
    "SARPDispatcher",
    "ILPDispatcher",
]
