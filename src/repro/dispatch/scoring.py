"""Dissatisfaction metrics (Section VI-B) computed from assignments.

One pair of formulas covers both modes because an :class:`Assignment`
always carries the taxi's full labeled stop plan:

* **Passenger dissatisfaction** of ``r_j`` served by ``t_i``:
  ``D_ck(t_i, r_j^s) + β·[D_ck(r_j^s, r_j^d) − D(r_j^s, r_j^d)]`` where
  ``D_ck(t_i, r_j^s)`` is the distance the taxi drives before reaching
  ``r_j``'s pickup.  For a non-sharing assignment the detour term is
  zero and this reduces to ``D(t_i, r_j^s)``, the paper's non-sharing
  metric.
* **Taxi dissatisfaction** of the assignment:
  ``D_ck(t_i) − (α+1)·Σ_j D(r_j^s, r_j^d)`` where ``D_ck(t_i)`` is the
  taxi's total driving distance.  For a single request this reduces to
  ``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)``.

Smaller values mean happier parties; units are kilometres.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.config import DispatchConfig
from repro.core.errors import DispatchError
from repro.core.types import Assignment, PassengerRequest, Taxi
from repro.geometry.distance import DistanceOracle

__all__ = ["AssignmentMetrics", "assignment_metrics", "route_leg_lengths"]


@dataclass(frozen=True, slots=True)
class AssignmentMetrics:
    """Per-assignment dissatisfaction values."""

    taxi_id: int
    taxi_dissatisfaction: float
    passenger_dissatisfaction: dict[int, float]
    pickup_distance_km: dict[int, float]
    total_drive_km: float


def route_leg_lengths(taxi: Taxi, assignment: Assignment, oracle: DistanceOracle) -> list[float]:
    """Cumulative driven distance at each stop, starting from the taxi."""
    cumulative = 0.0
    previous = taxi.location
    result = []
    for stop in assignment.stops:
        cumulative += oracle.distance(previous, stop.point)
        result.append(cumulative)
        previous = stop.point
    return result


def assignment_metrics(
    taxi: Taxi,
    assignment: Assignment,
    requests_by_id: Mapping[int, PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
) -> AssignmentMetrics:
    """Compute both parties' dissatisfaction for one assignment."""
    config = config if config is not None else DispatchConfig()
    if taxi.taxi_id != assignment.taxi_id:
        raise DispatchError(
            f"assignment belongs to taxi {assignment.taxi_id}, got taxi {taxi.taxi_id}"
        )
    cumulative = route_leg_lengths(taxi, assignment, oracle)
    pickup_at: dict[int, float] = {}
    dropoff_at: dict[int, float] = {}
    for stop, dist in zip(assignment.stops, cumulative):
        if stop.is_pickup:
            pickup_at[stop.request_id] = dist
        else:
            dropoff_at[stop.request_id] = dist

    passenger: dict[int, float] = {}
    pickup_distance: dict[int, float] = {}
    total_pay_distance = 0.0
    for request_id in assignment.request_ids:
        request = requests_by_id.get(request_id)
        if request is None:
            raise DispatchError(f"assignment references unknown request {request_id}")
        direct = request.trip_distance(oracle)
        total_pay_distance += direct
        onboard = dropoff_at[request_id] - pickup_at[request_id]
        detour = onboard - direct
        pickup_distance[request_id] = pickup_at[request_id]
        passenger[request_id] = pickup_at[request_id] + config.beta * detour

    total_drive = cumulative[-1]
    taxi_dissatisfaction = total_drive - (config.alpha + 1.0) * total_pay_distance
    return AssignmentMetrics(
        taxi_id=taxi.taxi_id,
        taxi_dissatisfaction=taxi_dissatisfaction,
        passenger_dissatisfaction=passenger,
        pickup_distance_km=pickup_distance,
        total_drive_km=total_drive,
    )
