"""RAII baseline (Ma et al. [7]): index-assisted minimum-travel sharing.

RAII serves requests in arrival order, inserting each into the taxi
whose route grows the least, retrieving candidate taxis through a
spatio-temporal index.  The index retrieval is what the paper calls
"information-lossy": only the ``candidate_count`` taxis nearest to the
pickup are evaluated, so the globally cheapest insertion can be missed —
which is exactly the behaviour that separates RAII from SARP in the
evaluation figures.  (With ``candidate_count`` at or above the idle
fleet size RAII degenerates into SARP, so the default is deliberately
small relative to the benchmark fleets.)
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import DispatchConfig
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher
from repro.dispatch.sharing.plan import TaxiPlan
from repro.dispatch.sharing.std import clip_batch
from repro.geometry.distance import DistanceOracle
from repro.geometry.spatial_index import GridSpatialIndex

__all__ = ["RAIIDispatcher"]


class RAIIDispatcher(Dispatcher):
    """Minimum additional travel distance with index-pruned candidates."""

    name = "RAII"

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        candidate_count: int = 3,
        max_batch: int | None = None,
    ):
        super().__init__(oracle, config)
        if candidate_count < 1:
            raise ValueError(f"candidate_count must be positive, got {candidate_count}")
        self.candidate_count = candidate_count
        self.max_batch = max_batch

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        plans = {t.taxi_id: TaxiPlan(taxi=t) for t in taxis}
        index = GridSpatialIndex(cell_size=self._cell_size(taxis), oracle=self.oracle)
        index.bulk_load((t.taxi_id, t.location) for t in taxis)

        for request in clip_batch(requests, taxis, self.config, self.max_batch):
            self.checkpoint("raii:request")
            candidates = index.nearest(request.pickup, k=self.candidate_count)
            best_plan: TaxiPlan | None = None
            best_quote = None
            for taxi_id, _ in candidates:
                plan = plans[int(taxi_id)]
                quote = plan.quote(request, self.oracle, self.config)
                if quote is None:
                    continue
                if best_quote is None or quote.added_km < best_quote.added_km - 1e-12:
                    best_plan, best_quote = plan, quote
            if best_plan is None or best_quote is None:
                continue
            best_plan.commit(request, best_quote)
            # Keep the index keyed on where the plan now ends, so later
            # requests retrieve taxis heading their way.
            index.move(best_plan.taxi.taxi_id, best_plan.end_point())

        for plan in plans.values():
            if not plan.is_empty:
                schedule.add(plan.to_assignment())
        return self._validated(schedule, taxis, requests)

    @staticmethod
    def _cell_size(taxis: Sequence[Taxi]) -> float:
        xs = [t.location.x for t in taxis]
        ys = [t.location.y for t in taxis]
        span = max(max(xs) - min(xs), max(ys) - min(ys), 1e-6)
        # Same 250 m floor as the greedy dispatcher: degenerate idle sets
        # must not create microscopic cells.
        return max(span / max(len(taxis) ** 0.5, 1.0), 0.25)
