"""SARP baseline (Li et al. [8]): TSP-style minimum-detour insertion.

SARP routes requests like the two-stage share-a-ride problem: each new
request is inserted into the route — over **all** taxis, not an
index-pruned candidate set — that grows by the least extra travel
distance, respecting seats and the θ detour budget.  Evaluating every
taxi is what lets SARP beat RAII slightly at the cost of more
computation per request.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import DispatchConfig
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher
from repro.dispatch.sharing.plan import TaxiPlan
from repro.dispatch.sharing.std import clip_batch
from repro.geometry.distance import DistanceOracle

__all__ = ["SARPDispatcher"]


class SARPDispatcher(Dispatcher):
    """Globally cheapest insertion per request, in arrival order."""

    name = "SARP"

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        max_batch: int | None = None,
    ):
        super().__init__(oracle, config)
        self.max_batch = max_batch

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        plans = [TaxiPlan(taxi=t) for t in sorted(taxis, key=lambda t: t.taxi_id)]
        for request in clip_batch(requests, taxis, self.config, self.max_batch):
            self.checkpoint("sarp:request")
            best_plan: TaxiPlan | None = None
            best_quote = None
            for plan in plans:
                quote = plan.quote(request, self.oracle, self.config)
                if quote is None:
                    continue
                if best_quote is None or quote.added_km < best_quote.added_km - 1e-12:
                    best_plan, best_quote = plan, quote
            if best_plan is not None and best_quote is not None:
                best_plan.commit(request, best_quote)
        for plan in plans:
            if not plan.is_empty:
                schedule.add(plan.to_assignment())
        return self._validated(schedule, taxis, requests)
