"""STD-P and STD-T: Algorithm 3 — sharing taxi dispatch.

Two stages, exactly as in the paper:

1. **Pack** — enumerate every feasible sharing group (member detours
   within θ along the group's optimal route) and solve the Maximum Set
   Packing Problem so as many groups as possible ride together.  The
   default solver is the local-search approximation behind the paper's
   cited (max|c|+2)/3 ratio [21]; greedy and exact solvers are
   selectable.
2. **Match** — treat each packed group, and every leftover request as a
   singleton group, as one dispatch unit, then run Algorithm 1 on units
   versus taxis with the sharing preference orders of Section V-A.
   ``optimize_for`` picks the passenger-optimal (STD-P) or taxi-optimal
   (STD-T) stable matching.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import DispatchError
from repro.core.types import DispatchSchedule, PassengerRequest, RideGroup, Taxi
from repro.dispatch.base import Dispatcher, group_assignment
from repro.dispatch.sharing.preferences import build_sharing_table
from repro.geometry.distance import DistanceOracle
from repro.matching.optimality import passenger_optimal, taxi_optimal
from repro.packing.feasibility import enumerate_feasible_groups
from repro.packing.set_packing import (
    exact_set_packing,
    greedy_set_packing,
    local_search_packing,
)
from repro.resilience.budget import WorkBudget
from repro.routing.shared_route import build_ride_group

__all__ = ["STDDispatcher", "std_p", "std_t", "pack_requests", "clip_batch"]


def clip_batch(
    requests: Sequence[PassengerRequest],
    taxis: Sequence[Taxi],
    config: DispatchConfig,
    max_batch: int | None,
) -> list[PassengerRequest]:
    """Limit one frame's sharing workload to what the fleet can absorb.

    A frame can serve at most ``max_group_size × |idle taxis|`` requests,
    so feeding the whole backlog into the O(|R|²)–O(|R|³) group
    enumeration buys nothing once the queue outgrows the fleet.  The
    oldest requests (lowest ids = earliest arrivals) are kept, plus
    slack so the packer still has pairing choices.  Pass ``max_batch``
    explicitly to override the automatic bound (any value ≥ len(requests)
    disables clipping, reproducing the paper's unbounded enumeration).
    """
    bound = (
        max_batch
        if max_batch is not None
        else config.max_group_size * len(taxis) + 8 * config.max_group_size
    )
    ordered = sorted(requests, key=lambda r: r.request_id)
    return ordered[: max(bound, 1)]

_PACKERS = {
    "greedy": lambda sets, budget: greedy_set_packing(sets),
    "local": lambda sets, budget: local_search_packing(sets, budget=budget),
    "exact": lambda sets, budget: exact_set_packing(sets, budget=budget),
}


def pack_requests(
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    packer: str = "local",
    max_passengers: int | None = 4,
    pairing_radius_km: float | None = None,
    pickup_gap: np.ndarray | None = None,
    cache: dict | None = None,
    budget: WorkBudget | None = None,
) -> list[RideGroup]:
    """Stage one of Algorithm 3: the dispatch units ``R' ∪ C'``.

    Returns packed multi-request groups plus singleton groups for every
    unpacked request, with consecutive group ids in deterministic order.

    ``budget`` makes the stage *anytime*: group enumeration and the
    packer stop expanding when the budget exhausts, so the result may
    pack fewer requests but is always a valid set of dispatch units
    (unpacked requests simply ride as singletons).
    """
    if packer not in _PACKERS:
        raise DispatchError(f"unknown packer {packer!r}; choose from {sorted(_PACKERS)}")
    candidates = enumerate_feasible_groups(
        requests,
        oracle,
        config,
        max_passengers=max_passengers,
        pairing_radius_km=pairing_radius_km,
        pickup_gap=pickup_gap,
        cache=cache,
        budget=budget,
    )
    member_sets = [frozenset(g.request_ids) for g in candidates]
    chosen_indices = _PACKERS[packer](member_sets, budget).chosen if member_sets else ()

    units: list[RideGroup] = []
    packed_ids: set[int] = set()
    for index in chosen_indices:
        group = candidates[index]
        units.append(
            RideGroup(
                group_id=len(units),
                requests=group.requests,
                route=group.route,
                route_length_km=group.route_length_km,
                onboard_distance_km=group.onboard_distance_km,
                pickup_offset_km=group.pickup_offset_km,
            )
        )
        packed_ids.update(group.request_ids)
    for request in sorted(requests, key=lambda r: r.request_id):
        if request.request_id not in packed_ids:
            units.append(build_ride_group(len(units), (request,), oracle))
    return units


class STDDispatcher(Dispatcher):
    """Sharing Taxi Dispatch via set packing + stable matching."""

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        optimize_for: str = "passenger",
        packer: str = "local",
        pairing_radius_km: float | None = None,
        max_batch: int | None = None,
    ):
        super().__init__(oracle, config)
        if optimize_for not in ("passenger", "taxi"):
            raise ValueError(f"optimize_for must be 'passenger' or 'taxi', got {optimize_for!r}")
        self.optimize_for = optimize_for
        self.packer = packer
        self.pairing_radius_km = pairing_radius_km
        self.max_batch = max_batch
        self.name = "STD-P" if optimize_for == "passenger" else "STD-T"
        # Cross-frame feasibility memo: queued requests keep their ids,
        # so group routes computed in earlier frames stay valid.
        self._group_cache: dict = {}

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        self.checkpoint("std:start")
        max_seats = max(t.seats for t in taxis)
        batch = clip_batch(requests, taxis, self.config, self.max_batch)
        if len(self._group_cache) > 500_000:
            self._group_cache.clear()
        pickup_gap = None
        if self.frame_cache is not None and self.pairing_radius_km is not None:
            # clip_batch returns the batch id-sorted, the order the
            # enumeration's radius prefilter expects.
            pickup_gap = self.frame_cache.pickup_gap_matrix(batch)
        # Under a frame deadline the exponential pack stage runs anytime:
        # it stops growing the candidate pool when time is up and packs
        # what it has, leaving the rest as singleton units.
        pack_budget = (
            WorkBudget(deadline=self.frame_budget) if self.frame_budget is not None else None
        )
        units = pack_requests(
            batch,
            self.oracle,
            self.config,
            packer=self.packer,
            max_passengers=max_seats,
            pairing_radius_km=self.pairing_radius_km,
            pickup_gap=pickup_gap,
            cache=self._group_cache,
            budget=pack_budget,
        )
        self.checkpoint("std:packed")
        table = build_sharing_table(taxis, units, self.oracle, self.config)
        self.checkpoint("std:table-built")
        if self.optimize_for == "passenger":
            matching = passenger_optimal(table)
        else:
            matching = taxi_optimal(table)
        taxis_by_id = {t.taxi_id: t for t in taxis}
        units_by_id = {g.group_id: g for g in units}
        for unit_id, taxi_id in sorted(matching.pairs):
            schedule.add(group_assignment(taxis_by_id[taxi_id], units_by_id[unit_id]))
        return self._validated(schedule, taxis, requests)


def std_p(
    oracle: DistanceOracle, config: DispatchConfig | None = None, **kwargs: Any
) -> STDDispatcher:
    """The packed passenger-optimal stable dispatcher."""
    return STDDispatcher(oracle, config, optimize_for="passenger", **kwargs)


def std_t(
    oracle: DistanceOracle, config: DispatchConfig | None = None, **kwargs: Any
) -> STDDispatcher:
    """The packed taxi-optimal stable dispatcher."""
    return STDDispatcher(oracle, config, optimize_for="taxi", **kwargs)
