"""Incremental per-frame taxi plans for insertion-based baselines.

RAII and SARP grow taxi routes one request at a time inside a frame.
:class:`TaxiPlan` wraps a taxi and its stop sequence, offering the
cheapest feasible insertion under the sharing constraints (seat
capacity, member detours within θ).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DispatchConfig
from repro.core.types import Assignment, PassengerRequest, RouteStop, Taxi
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point
from repro.routing.insertion import route_length

__all__ = ["TaxiPlan", "InsertionQuote"]


@dataclass(frozen=True, slots=True)
class InsertionQuote:
    """A feasible insertion and its marginal cost."""

    stops: tuple[RouteStop, ...]
    added_km: float


@dataclass(slots=True)
class TaxiPlan:
    """One taxi's tentative plan while a frame is being built."""

    taxi: Taxi
    requests: list[PassengerRequest] = field(default_factory=list)
    stops: tuple[RouteStop, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.requests

    @property
    def passengers(self) -> int:
        return sum(r.passengers for r in self.requests)

    def quote(
        self,
        request: PassengerRequest,
        oracle: DistanceOracle,
        config: DispatchConfig,
        *,
        max_group_size: int | None = None,
    ) -> InsertionQuote | None:
        """The cheapest feasible insertion of ``request``, or ``None``.

        Feasibility: seat capacity, group size, and — when the plan
        already carries passengers — every member's detour staying
        within θ after the insertion.
        """
        limit = max_group_size if max_group_size is not None else config.max_group_size
        if len(self.requests) + 1 > limit:
            return None
        if self.passengers + request.passengers > self.taxi.seats:
            return None
        if not self.stops:
            stops = (
                RouteStop(request_id=request.request_id, is_pickup=True, point=request.pickup),
                RouteStop(request_id=request.request_id, is_pickup=False, point=request.dropoff),
            )
            added = oracle.distance(self.taxi.location, request.pickup) + request.trip_distance(
                oracle
            )
            return InsertionQuote(stops=stops, added_km=added)
        # Cheapest insertion *among the θ-feasible ones*: the globally
        # cheapest position may blow another member's detour budget while
        # a slightly longer one (e.g. appending sequentially) is fine.
        pickup = RouteStop(request_id=request.request_id, is_pickup=True, point=request.pickup)
        dropoff = RouteStop(request_id=request.request_id, is_pickup=False, point=request.dropoff)
        base = route_length(self.stops, oracle, start=self.taxi.location)
        best: InsertionQuote | None = None
        n = len(self.stops)
        for i in range(n + 1):
            with_pickup = list(self.stops[:i]) + [pickup] + list(self.stops[i:])
            for j in range(i + 1, n + 2):
                candidate = tuple(with_pickup[:j] + [dropoff] + with_pickup[j:])
                added = route_length(candidate, oracle, start=self.taxi.location) - base
                if best is not None and added >= best.added_km - 1e-12:
                    continue
                if not self._detours_ok(candidate, oracle, config.theta_km, request):
                    continue
                best = InsertionQuote(stops=candidate, added_km=added)
        return best

    def _detours_ok(
        self,
        stops: tuple[RouteStop, ...],
        oracle: DistanceOracle,
        theta_km: float,
        new_request: PassengerRequest,
    ) -> bool:
        members = {r.request_id: r for r in self.requests}
        members[new_request.request_id] = new_request
        cumulative = 0.0
        previous = None
        pickup_at: dict[int, float] = {}
        for stop in stops:
            if previous is not None:
                cumulative += oracle.distance(previous, stop.point)
            previous = stop.point
            if stop.is_pickup:
                pickup_at[stop.request_id] = cumulative
            else:
                onboard = cumulative - pickup_at[stop.request_id]
                direct = members[stop.request_id].trip_distance(oracle)
                if onboard - direct > theta_km + 1e-9:
                    return False
        return True

    def commit(self, request: PassengerRequest, quote: InsertionQuote) -> None:
        self.requests.append(request)
        self.stops = quote.stops

    def to_assignment(self) -> Assignment:
        assert self.requests, "cannot emit an empty plan"
        return Assignment(
            taxi_id=self.taxi.taxi_id,
            request_ids=tuple(r.request_id for r in self.requests),
            stops=self.stops,
        )

    def end_point(self) -> Point:
        """Where the plan currently terminates (for spatial indexing)."""
        return self.stops[-1].point if self.stops else self.taxi.location

    def current_length(self, oracle: DistanceOracle) -> float:
        return route_length(self.stops, oracle, start=self.taxi.location)
