"""Sharing dispatchers: STD-P, STD-T, RAII, SARP, ILP."""

from repro.dispatch.sharing.ilp import ILPDispatcher
from repro.dispatch.sharing.plan import InsertionQuote, TaxiPlan
from repro.dispatch.sharing.preferences import (
    build_sharing_table,
    group_passenger_score,
    group_taxi_score,
)
from repro.dispatch.sharing.raii import RAIIDispatcher
from repro.dispatch.sharing.sarp import SARPDispatcher
from repro.dispatch.sharing.std import STDDispatcher, pack_requests, std_p, std_t

__all__ = [
    "STDDispatcher",
    "std_p",
    "std_t",
    "pack_requests",
    "build_sharing_table",
    "group_passenger_score",
    "group_taxi_score",
    "RAIIDispatcher",
    "SARPDispatcher",
    "ILPDispatcher",
    "TaxiPlan",
    "InsertionQuote",
]
