"""ILP baseline ([6]): integer-programmed sharing dispatch with a
heuristic for large frames.

The cited work formulates taxi sharing as an integer linear program —
choose disjoint (group, taxi) pairs maximizing served requests and
minimizing total travel distance — solves it exactly at small scale,
and falls back to a heuristic when the instance grows.  We reproduce
both regimes:

* **exact** (small frames): depth-first branch-and-bound over candidate
  pairs, lexicographic objective (served requests ↓cost);
* **heuristic** (large frames): greedy over candidates ordered by cost
  per served request.

Candidate groups come from the same feasibility enumeration as
Algorithm 3, so the comparison isolates the *assignment policy* (pure
company-side cost optimization vs. stability).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.config import DispatchConfig
from repro.core.types import DispatchSchedule, PassengerRequest, RideGroup, Taxi
from repro.dispatch.base import Dispatcher, group_assignment
from repro.dispatch.sharing.std import clip_batch, pack_requests
from repro.geometry.distance import DistanceOracle

__all__ = ["ILPDispatcher"]


@dataclass(frozen=True, slots=True)
class _Candidate:
    group: RideGroup
    taxi: Taxi
    cost_km: float

    @property
    def served(self) -> int:
        return len(self.group.requests)


class ILPDispatcher(Dispatcher):
    """Company-cost-optimal sharing assignment (exact or heuristic)."""

    name = "ILP"

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        exact_limit: int = 200,
        node_limit: int = 200_000,
        pairing_radius_km: float | None = None,
        max_batch: int | None = None,
    ):
        super().__init__(oracle, config)
        self.exact_limit = exact_limit
        self.node_limit = node_limit
        self.pairing_radius_km = pairing_radius_km
        self.max_batch = max_batch
        self._group_cache: dict = {}

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        self.checkpoint("ilp:start")
        max_seats = max(t.seats for t in taxis)
        batch = clip_batch(requests, taxis, self.config, self.max_batch)
        if len(self._group_cache) > 500_000:
            self._group_cache.clear()
        units = pack_requests(
            batch,
            self.oracle,
            self.config,
            packer="local",
            max_passengers=max_seats,
            pairing_radius_km=self.pairing_radius_km,
            cache=self._group_cache,
        )
        self.checkpoint("ilp:packed")
        candidates = self._candidates(taxis, units)
        self.checkpoint("ilp:candidates")
        if len(candidates) <= self.exact_limit:
            chosen = self._solve_exact(candidates)
        else:
            chosen = self._solve_greedy(candidates)
        for candidate in chosen:
            schedule.add(group_assignment(candidate.taxi, candidate.group))
        return self._validated(schedule, taxis, requests)

    def _candidates(self, taxis: Sequence[Taxi], units: Sequence[RideGroup]) -> list[_Candidate]:
        result: list[_Candidate] = []
        for group in units:
            for taxi in sorted(taxis, key=lambda t: t.taxi_id):
                if group.total_passengers > taxi.seats:
                    continue
                cost = (
                    self.oracle.distance(taxi.location, group.route_start)
                    + group.route_length_km
                )
                result.append(_Candidate(group=group, taxi=taxi, cost_km=cost))
        result.sort(key=lambda c: (c.cost_km / c.served, c.group.group_id, c.taxi.taxi_id))
        return result

    def _solve_greedy(self, candidates: list[_Candidate]) -> list[_Candidate]:
        used_taxis: set[int] = set()
        used_requests: set[int] = set()
        chosen: list[_Candidate] = []
        for candidate in candidates:
            if candidate.taxi.taxi_id in used_taxis:
                continue
            if used_requests & set(candidate.group.request_ids):
                continue
            chosen.append(candidate)
            used_taxis.add(candidate.taxi.taxi_id)
            used_requests.update(candidate.group.request_ids)
        return chosen

    def _solve_exact(self, candidates: list[_Candidate]) -> list[_Candidate]:
        """Branch-and-bound: maximize served requests, then minimize cost."""
        best_served = -1
        best_cost = float("inf")
        best_choice: list[_Candidate] = []
        nodes = 0
        n = len(candidates)
        # Optimistic bound on additional servable requests per suffix.
        suffix_served = [0] * (n + 1)
        for i in range(n - 1, -1, -1):
            suffix_served[i] = suffix_served[i + 1] + candidates[i].served

        def branch(
            index: int,
            served: int,
            cost: float,
            used_taxis: set[int],
            used_requests: set[int],
            chosen: list[_Candidate],
        ) -> None:
            nonlocal best_served, best_cost, best_choice, nodes
            nodes += 1
            if (served, -cost) > (best_served, -best_cost):
                best_served, best_cost = served, cost
                best_choice = list(chosen)
            if index == n or nodes > self.node_limit:
                return
            if served + suffix_served[index] < best_served:
                return
            candidate = candidates[index]
            if candidate.taxi.taxi_id not in used_taxis and not (
                used_requests & set(candidate.group.request_ids)
            ):
                chosen.append(candidate)
                branch(
                    index + 1,
                    served + candidate.served,
                    cost + candidate.cost_km,
                    used_taxis | {candidate.taxi.taxi_id},
                    used_requests | set(candidate.group.request_ids),
                    chosen,
                )
                chosen.pop()
            branch(index + 1, served, cost, used_taxis, used_requests, chosen)

        branch(0, 0, 0.0, set(), set(), [])
        return best_choice
