"""Sharing preference orders (Section V-A).

After packing, every dispatch unit is a :class:`RideGroup` (leftover
requests become singleton groups, for which all formulas reduce to the
non-sharing ones — a point the paper makes explicitly):

* a group's (averaged) passenger score for taxi ``t_i`` is
  ``mean_j [ D_ck(t_i, r_j^s) + β·(D_ck(r_j^s, r_j^d) − D(r_j^s, r_j^d)) ]``
  with ``D_ck(t_i, r_j^s) = D(t_i, route_start) + pickup_offset_j``;
* the taxi's score for the group is
  ``D_ck(t_i) − (α+1)·Σ_j D(r_j^s, r_j^d)`` with
  ``D_ck(t_i) = D(t_i, route_start) + route_length``.

Acceptability mirrors the non-sharing table: seat feasibility plus the
two dummy thresholds.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError
from repro.core.types import RideGroup, Taxi
from repro.geometry.batch import oracle_pairwise
from repro.geometry.distance import DistanceOracle
from repro.matching.preferences import PreferenceTable

__all__ = ["build_sharing_table", "group_passenger_score", "group_taxi_score"]


def group_passenger_score(
    taxi: Taxi, group: RideGroup, oracle: DistanceOracle, beta: float
) -> float:
    """Mean member dissatisfaction of being served by ``taxi``."""
    approach = oracle.distance(taxi.location, group.route_start)
    total = 0.0
    for request in group.requests:
        offset = group.pickup_offset_km[request.request_id]
        detour = group.onboard_distance_km[request.request_id] - request.trip_distance(oracle)
        total += approach + offset + beta * detour
    return total / len(group.requests)


def group_taxi_score(taxi: Taxi, group: RideGroup, oracle: DistanceOracle, alpha: float) -> float:
    """The driver's expense-minus-payoff score for serving ``group``."""
    total_drive = oracle.distance(taxi.location, group.route_start) + group.route_length_km
    return total_drive - (alpha + 1.0) * group.total_trip_distance(oracle)


def build_sharing_table(
    taxis: Sequence[Taxi],
    units: Sequence[RideGroup],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
) -> PreferenceTable:
    """Preference table with ride groups as proposers and taxis as reviewers.

    Unit ids are the groups' ``group_id`` values and must be unique.
    ``alpha_by_taxi`` mirrors the non-sharing extension: a per-driver
    fare coefficient (missing ids use ``config.alpha``).
    """
    config = config if config is not None else DispatchConfig()
    alphas = {
        taxi.taxi_id: (alpha_by_taxi or {}).get(taxi.taxi_id, config.alpha) for taxi in taxis
    }
    for taxi_id, alpha in alphas.items():
        if alpha < 0.0:
            raise PreferenceError(f"taxi {taxi_id} has negative alpha {alpha}")
    unit_ids = [g.group_id for g in units]
    if len(set(unit_ids)) != len(unit_ids):
        raise PreferenceError("duplicate group ids")
    taxi_ids = [t.taxi_id for t in taxis]
    if len(set(taxi_ids)) != len(taxi_ids):
        raise PreferenceError("duplicate taxi ids")

    proposer_scores: dict[tuple[int, int], float] = {}
    reviewer_scores: dict[tuple[int, int], float] = {}
    by_unit: dict[int, list[tuple[float, int]]] = {g.group_id: [] for g in units}
    by_taxi: dict[int, list[tuple[float, int]]] = {t.taxi_id: [] for t in taxis}

    if not units or not taxis:
        approach = None
    else:
        # One batched kernel call replaces the two scalar approach-distance
        # queries per (group, taxi) pair; exact=True keeps every score bit-
        # identical to group_passenger_score / group_taxi_score, whose
        # sources are taxi locations (D(taxi, route_start) — asymmetric
        # oracles distinguish the direction).
        approach = oracle_pairwise(
            oracle,
            sources=[t.location for t in taxis],
            targets=[g.route_start for g in units],
            exact=True,
        )

    for gi, group in enumerate(units):
        # Trip distances (and hence detours) do not depend on the taxi;
        # computing them once per group removes O(pairs·members) oracle
        # calls.  Summation order matches group.total_trip_distance.
        trips = [request.trip_distance(oracle) for request in group.requests]
        total_trip = sum(trips)
        member_terms = [
            (
                group.pickup_offset_km[request.request_id],
                config.beta * (group.onboard_distance_km[request.request_id] - trip),
            )
            for request, trip in zip(group.requests, trips)
        ]
        for ti, taxi in enumerate(taxis):
            if group.total_passengers > taxi.seats:
                continue
            assert approach is not None
            approach_km = float(approach[ti, gi])
            total = 0.0
            for offset, beta_detour in member_terms:
                total += approach_km + offset + beta_detour
            p_score = total / len(group.requests)
            if p_score > config.passenger_threshold_km:
                continue
            t_score = (approach_km + group.route_length_km) - (
                alphas[taxi.taxi_id] + 1.0
            ) * total_trip
            if t_score > config.taxi_threshold_km:
                continue
            proposer_scores[(group.group_id, taxi.taxi_id)] = p_score
            reviewer_scores[(group.group_id, taxi.taxi_id)] = t_score
            by_unit[group.group_id].append((p_score, taxi.taxi_id))
            by_taxi[taxi.taxi_id].append((t_score, group.group_id))

    return PreferenceTable(
        proposer_prefs={u: tuple(t for _, t in sorted(pairs)) for u, pairs in by_unit.items()},
        reviewer_prefs={t: tuple(u for _, u in sorted(pairs)) for t, pairs in by_taxi.items()},
        proposer_scores=proposer_scores,
        reviewer_scores=reviewer_scores,
        validate=False,
    )
