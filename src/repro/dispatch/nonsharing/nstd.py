"""NSTD-P and NSTD-T: the paper's stable non-sharing dispatchers.

``NSTD-P`` runs Algorithm 1 directly (passenger-optimal).  ``NSTD-T``
selects the taxi-optimal stable matching; by default it uses the
taxi-proposing fast path (provably equal to Algorithm 2's taxi-best
pick — see :mod:`repro.matching.optimality`), with an ``exact`` switch
that runs the full Algorithm 2 enumeration instead.

The passenger/taxi fast paths run array-native end to end: the frame is
compiled straight into :class:`~repro.matching.arrays.PreferenceArrays`
(no per-pair dicts) and matched by the array deferred-acceptance
engine, which is bit-identical to the dict reference (``use_arrays=
False`` forces the dict path; the median and ``exact`` selectors always
use it, since lattice enumeration walks dict tables).  When the
simulation engine installs a :class:`~repro.simulation.frame_cache.
FrameDistanceCache`, the pickup matrix and trip distances are read from
it instead of recomputed.

``warm_start=True`` (array fast paths only) additionally carries solver
state across frames through the warm frame solver
(:mod:`repro.matching.warm_frame`): only churn-proportional distance
strips are scored (never the full taxi × request pickup kernel), the
retained queue's coordinates/party/trip facts ride along as persistent
arrays, and the stable matching is recomputed by the same Gale–Shapley
rounds on a lean CSR that is bit-identical to the cold pack.  Any frame
whose state fails a warm precondition falls back to a cold solve
transparently; :meth:`NSTDDispatcher.run_telemetry` reports warm/cold
frame counts, fallbacks, and rebuild fractions.

``sharded=True`` (array fast paths only) routes frames through the
θ-ball component decomposition of :mod:`repro.matching.sharding`: cold
frames decompose into connected components of the acceptability graph
and solve each shard independently (bit-identical to the global solve
by the component-decomposition theorem), while warm frames run the
fused sharded warm solver (:mod:`repro.matching.shard_warm`), which
adaptively probes the shard structure and restricts churn strips to
mixed components only when that pays.  Under a frame budget the cold
sharded path degrades *per shard*: shards are solved smallest-first
with a checkpoint between them, and once the deadline fires only the
remaining (hot) shards are answered greedily — one hot shard degrades
alone.  ``shard_workers=N`` additionally farms cold-frame shards out to
a process pool (opt-in; the serial path is the benchmarked baseline).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, ClassVar

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import (
    WARM_FALLBACK_OTHER,
    WARM_FALLBACK_REASONS,
    FrameBudgetExceededError,
    WarmStartError,
)
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, PackedSingleSchedule, single_assignment
from repro.dispatch.nonsharing.greedy import GreedyNearestDispatcher
from repro.geometry.batch import as_point_array
from repro.geometry.distance import DistanceOracle
from repro.matching.arrays import PreferenceArrays
from repro.matching.lattice import median_stable_matching
from repro.matching.optimality import passenger_optimal, taxi_optimal, taxi_optimal_exact
from repro.matching.preferences import (
    PreferenceTable,
    build_nonsharing_arrays,
    build_nonsharing_table,
)
from repro.matching.result import Matching
from repro.matching.shard_warm import (
    ShardedFrameState,
    sharded_state_from_cold,
    sharded_warm_frame_solve,
)
from repro.matching.sharding import (
    _check_global_ids,
    _solve_shard_payload,
    frame_decomposition,
    shard_problems,
    solve_shard,
)
from repro.matching.warm_frame import (
    FrameSolveState,
    frame_state_from_cold,
    request_trips,
    warm_frame_solve,
)

__all__ = ["NSTDDispatcher", "nstd_p", "nstd_t", "nstd_m"]


def _reason_key(reason: str) -> str:
    """Cap telemetry reasons to the enumerated set (``other`` otherwise).

    Keeps the ``warm_fallback_<reason>`` / ``warm_invalidation_<reason>``
    key universe of ``perf_stats()`` bounded and deterministic across
    runs, whatever a future solver decides to raise.
    """
    return reason if reason in WARM_FALLBACK_REASONS else WARM_FALLBACK_OTHER


class NSTDDispatcher(Dispatcher):
    """Non-Sharing Taxi Dispatch via stable matching (Algorithms 1 and 2)."""

    _NAMES = {"passenger": "NSTD-P", "taxi": "NSTD-T", "median": "NSTD-M"}

    #: The declared durability contract (enforced by repro-lint REP008):
    #: cross-frame attributes this dispatcher mutates but deliberately
    #: does NOT persist in :meth:`state_payload`, each with the reason
    #: it is safe to drop.  Checkpoints are written at frame boundaries
    #: and a resumed run's first frame always solves cold (the engine
    #: calls ``reset_warm_state`` before resuming), so derived solver
    #: state rebuilds itself and nothing here can change the matching.
    DURABILITY_EXCLUSIONS: ClassVar[dict[str, str]] = {
        "_warm_state": (
            "derived per-frame solver state; a resumed run's first frame "
            "solves cold and reseeds it (bit-identical by the warm-start "
            "equivalence contract)"
        ),
        "_sharded_state": (
            "derived sharded solver state; rebuilt from the first cold "
            "frame after resume exactly like _warm_state"
        ),
        "_shard_pool": (
            "live process handles cannot cross a checkpoint; the pool is "
            "respawned lazily on the first sharded frame after resume"
        ),
        "_frame_degraded": (
            "intra-frame flag consumed before the frame ends; checkpoints "
            "are only written at frame boundaries where it is always False"
        ),
        "last_frame_mode": (
            "diagnostic label of the previous frame; the auditor only "
            "samples fast-path frames and the first resumed frame is cold"
        ),
    }

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        optimize_for: str = "passenger",
        exact: bool = False,
        alpha_by_taxi: Mapping[int, float] | None = None,
        use_arrays: bool = True,
        warm_start: bool = False,
        sharded: bool = False,
        shard_workers: int | None = None,
    ):
        super().__init__(oracle, config)
        if optimize_for not in self._NAMES:
            raise ValueError(
                f"optimize_for must be one of {sorted(self._NAMES)}, got {optimize_for!r}"
            )
        array_fast_path = use_arrays and optimize_for in ("passenger", "taxi") and not exact
        if warm_start and not array_fast_path:
            raise ValueError(
                "warm_start requires the array fast path: use_arrays=True, "
                "optimize_for in ('passenger', 'taxi'), exact=False"
            )
        if sharded and not array_fast_path:
            raise ValueError(
                "sharded requires the array fast path: use_arrays=True, "
                "optimize_for in ('passenger', 'taxi'), exact=False"
            )
        if shard_workers is not None:
            if not sharded:
                raise ValueError("shard_workers requires sharded=True")
            if warm_start:
                raise ValueError(
                    "shard_workers composes with the cold sharded path only; "
                    "warm_start frames are solved by the serial fused solver"
                )
            if shard_workers < 1:
                raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        self.optimize_for = optimize_for
        self.exact = exact
        self.alpha_by_taxi = dict(alpha_by_taxi) if alpha_by_taxi else None
        self.use_arrays = use_arrays
        self.warm_start = warm_start
        self.sharded = sharded
        self.shard_workers = shard_workers
        self.name = self._NAMES[optimize_for]
        self._warm_state: FrameSolveState | None = None
        self._sharded_state: ShardedFrameState | None = None
        self._shard_pool: ProcessPoolExecutor | None = None
        self._frame_degraded = False
        self._telemetry: dict[str, float | int] = {}

    # -- warm-start lifecycle ---------------------------------------------

    def reset_warm_state(self, *, counters: bool = False) -> None:
        """Drop the carried frame state (and optionally run counters).

        Called by the simulation engine at run start (``counters=True``)
        and after any frame answered by a degradation-ladder fallback,
        which breaks the consecutive-frame invariant the state encodes.
        """
        self._warm_state = None
        self._sharded_state = None
        if counters:
            self._telemetry = {}

    def invalidate_warm_state(self, *, reason: str = "external") -> None:
        """Drop the carried frame state as *suspect* and count why.

        The stability auditor calls this (``reason="audit-divergence"``)
        when a re-verified fast-path frame shipped blocking pairs: the
        carried state can no longer be trusted, so the next frame solves
        cold and reseeds.  Reasons outside the enumerated set collapse
        to the ``other`` bucket, keeping telemetry keys bounded.
        """
        self._bump(f"warm_invalidation_{_reason_key(reason)}")
        self.reset_warm_state()

    def restore_telemetry(self, counters: Mapping[str, float | int]) -> None:
        """Adopt checkpointed run counters (crash-recovery resume path)."""
        self._telemetry = dict(counters)

    def state_payload(self) -> dict[str, Any]:
        """The durable cross-frame state: run telemetry only.

        Everything else this dispatcher carries between frames is
        derived solver state, declared (with reasons) in
        :data:`DURABILITY_EXCLUSIONS` and rebuilt after resume.
        """
        return {"telemetry": dict(self._telemetry)}

    def restore_state(self, payload: Mapping[str, Any]) -> None:
        """Adopt a :meth:`state_payload` snapshot; solver state stays cold."""
        self.restore_telemetry(payload.get("telemetry") or {})

    def audit_preferences(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> PreferenceArrays:
        """The frame's preference arrays, rebuilt by the cold path.

        Reads the frame distance cache when installed (exact by
        contract) but never touches the carried warm/sharded state, so
        the result is a state-independent oracle for the auditor.
        """
        pickup_matrix = trip_km = None
        if self.frame_cache is not None:
            pickup_matrix = self.frame_cache.pickup_matrix(taxis, requests)
            trip_km = self.frame_cache.trip_km(requests)
        return build_nonsharing_arrays(
            taxis,
            requests,
            self.oracle,
            self.config,
            alpha_by_taxi=self.alpha_by_taxi,
            pickup_matrix=pickup_matrix,
            trip_km=trip_km,
        )

    def shutdown_shard_pool(self) -> None:
        """Tear down the lazily created ``shard_workers`` process pool."""
        if self._shard_pool is not None:
            self._shard_pool.shutdown()
            self._shard_pool = None

    def run_telemetry(self) -> dict[str, float | int]:
        """Warm-start counters since the last full reset.

        ``warm_frames`` / ``cold_frames`` partition the dispatched
        frames; ``warm_fallbacks`` counts warm frames that had to redo a
        cold solve after a failed resume precondition.  The pair/strip
        totals give the aggregate rebuild fraction — the share of the
        full taxi × request work the warm builder actually performed.
        """
        return dict(self._telemetry)

    def _bump(self, key: str, amount: float | int = 1) -> None:
        self._telemetry[key] = self._telemetry.get(key, 0) + amount

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            # The carried warm state stays put: nothing was solved, and
            # only arrivals can happen before the next non-empty frame,
            # so churn classification against it remains sound.
            return schedule
        self.checkpoint("nstd:start")
        array_path = (
            self.use_arrays
            and self.optimize_for in ("passenger", "taxi")
            and not self.exact
        )
        self._frame_degraded = False
        matched_rows: tuple[np.ndarray, np.ndarray] | None = None
        matched_legs: tuple[np.ndarray, np.ndarray] | None = None
        if self.warm_start and array_path:
            matching, matched_rows, matched_legs = self._dispatch_warm(taxis, requests)
        elif self.sharded:
            matching = self._dispatch_sharded_cold(taxis, requests)
        else:
            matching = self._dispatch_cold(taxis, requests, array_path)
        if not self._frame_degraded:
            # A per-shard degraded frame already spent its budget and
            # answered in full; checkpointing again would re-raise and
            # hand the whole frame to the ladder, discarding the exact
            # small-shard solutions.
            self.checkpoint("nstd:matched")
        if matched_rows is not None:
            # Warm frames: the solver hands back matched (taxi, request)
            # row pairs already sorted by request id, indexing straight
            # into this frame's sequences — the schedule is assembled
            # without re-keying either side by id.  The rows come from
            # deferred-acceptance partner arrays (one partner per side
            # by construction), so the structural re-validation the id
            # path pays is redundant here; the engine still validates
            # every schedule it executes.
            t_rows, r_rows = matched_rows
            if self.sharded:
                # The sharded egress ships the solver's row arrays (and
                # the matched pairs' exact leg lengths) verbatim: the
                # engine executes them directly, and any other consumer
                # materializes ordinary assignments lazily.
                pick_legs, trip_legs = (
                    matched_legs if matched_legs is not None else (None, None)
                )
                return PackedSingleSchedule(
                    taxis,
                    requests,
                    t_rows,
                    r_rows,
                    pickup_km=pick_legs,
                    trip_km=trip_legs,
                )
            # The legacy warm path keeps the belt-and-braces
            # constructor it shipped with.
            add = schedule.assignments.append
            for t_row, r_row in zip(t_rows.tolist(), r_rows.tolist()):
                add(single_assignment(taxis[t_row], requests[r_row]))
            return schedule
        taxis_by_id = {t.taxi_id: t for t in taxis}
        requests_by_id = {r.request_id: r for r in requests}
        for request_id, taxi_id in sorted(matching.pairs):
            schedule.add(single_assignment(taxis_by_id[taxi_id], requests_by_id[request_id]))
        return self._validated(schedule, taxis, requests)

    def _dispatch_cold(
        self,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        array_path: bool,
    ) -> Matching:
        """The stateless frame solve (the pre-warm-start behaviour)."""
        self.last_frame_mode = "cold"
        pickup_matrix = trip_km = None
        if self.frame_cache is not None:
            pickup_matrix = self.frame_cache.pickup_matrix(taxis, requests)
            trip_km = self.frame_cache.trip_km(requests)
        prefs: PreferenceArrays | PreferenceTable
        if array_path:
            prefs = build_nonsharing_arrays(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        else:
            prefs = build_nonsharing_table(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        self.checkpoint("nstd:prefs-built")
        if self.warm_start and isinstance(prefs, PreferenceArrays):
            # Cold frame of a warm-started run (first frame, or a warm
            # precondition failed): solve exactly as the stateless path
            # does, then seed the next frame's warm state from the
            # frame's own facts (the trip vector was computed above
            # either way).
            if self.optimize_for == "taxi":
                matching = taxi_optimal(prefs)
            else:
                matching = passenger_optimal(prefs)
            trips = (
                np.asarray(trip_km, dtype=np.float64)
                if trip_km is not None
                else request_trips(requests, self.oracle)
            )
            self._warm_state = frame_state_from_cold(taxis, requests, matching, trip=trips)
            return matching
        if self.optimize_for == "passenger":
            matching = passenger_optimal(prefs)
        elif self.optimize_for == "median":
            # The Teo-Sethuraman compromise the paper cites as [13]:
            # every matched side gets its median stable partner.
            matching = median_stable_matching(prefs)
        elif self.exact:
            # Under a frame deadline the full Algorithm 2 enumeration
            # becomes anytime: the taxi-best matching found in budget is
            # still stable, so a truncated pick remains a valid frame.
            matching = taxi_optimal_exact(prefs, deadline=self.frame_budget)
        else:
            matching = taxi_optimal(prefs)
        return matching

    def _dispatch_sharded_cold(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> Matching:
        """One cold frame through the θ-ball decomposition.

        Decompose → solve each mixed component independently → union,
        bit-identical to the global cold solve (the component-
        decomposition theorem; degenerate decompositions are literally
        the global solve).  Shards run smallest-first with a cooperative
        checkpoint between them, so under a frame deadline the many
        small shards finish exactly and only the remaining hot shards
        are answered by a greedy fallback — per-shard degradation.  With
        ``shard_workers`` > 1 the shards are farmed to a process pool
        instead (largest first, for pool balance; no mid-frame
        degradation on that path — the pool call is bracketed by
        checkpoints).  When the dispatcher is warm-started, the frame
        additionally seeds the sharded warm state, unless degradation
        produced a non-stable answer no warm frame may build on.
        """
        self.last_frame_mode = "sharded_cold"
        cache = self.frame_cache
        _, request_ids = _check_global_ids(taxis, requests)
        trip = (
            np.asarray(cache.trip_km(requests), dtype=np.float64)
            if cache is not None
            else request_trips(requests, self.oracle)
        )
        alpha_max = float(self.config.alpha)
        if self.alpha_by_taxi:
            alpha_max = max(alpha_max, max(float(a) for a in self.alpha_by_taxi.values()))
        taxi_xy = as_point_array([t.location for t in taxis], check_finite=False)
        pick_xy = as_point_array([r.pickup for r in requests], check_finite=False)
        decomp = frame_decomposition(
            taxi_xy, pick_xy, trip, self.oracle, self.config, alpha_max=alpha_max
        )
        problems = shard_problems(decomp, request_ids)
        self._bump("sharded_frames")
        if decomp.degenerate_reason is None:
            entities = np.bincount(decomp.taxi_labels, minlength=decomp.n_shards)
            entities += np.bincount(decomp.request_labels, minlength=decomp.n_shards)
            self._bump("shard_decomposed_frames")
            self._bump("shard_count", len(problems))
            self._bump("largest_shard_entities", int(entities.max()) if entities.size else 0)
            self._bump("frame_entities", len(taxis) + len(requests))
            covered = sum(shard.pair_count for shard in problems)
            self._bump("cross_shard_pairs_avoided", len(taxis) * len(requests) - covered)
        self.checkpoint("nstd:decomposed")
        pairs: dict[int, int] = {}
        degrade_from: int | None = None
        if self.shard_workers is not None and self.shard_workers > 1 and len(problems) > 1:
            payloads = [
                (
                    tuple(taxis[i] for i in shard.taxi_rows.tolist()),
                    tuple(requests[j] for j in shard.request_rows.tolist()),
                    self.oracle,
                    self.config,
                    self.optimize_for,
                    self.alpha_by_taxi,
                    trip[shard.request_rows],
                )
                for shard in reversed(problems)
            ]
            for matched_pairs in self._ensure_shard_pool().map(
                _solve_shard_payload, payloads
            ):
                pairs.update(matched_pairs)
        else:
            for position, shard in enumerate(problems):
                try:
                    self.checkpoint("nstd:shard")
                except FrameBudgetExceededError:
                    degrade_from = position
                    break
                matched = solve_shard(
                    [taxis[i] for i in shard.taxi_rows.tolist()],
                    [requests[j] for j in shard.request_rows.tolist()],
                    self.oracle,
                    self.config,
                    optimize_for=self.optimize_for,
                    alpha_by_taxi=self.alpha_by_taxi,
                    trip_km=trip[shard.request_rows],
                )
                pairs.update(matched.pairs)
        if degrade_from is not None:
            # The deadline fired between shards: every shard already
            # solved keeps its exact stable answer, and only the shards
            # still pending (the largest ones, by construction of the
            # ordering) degrade to the greedy ladder rung.  The fallback
            # dispatcher is fresh — no frame cache and no budget — so
            # its checkpoints are no-ops and it cannot re-raise.
            self._frame_degraded = True
            self._bump("shards_degraded", len(problems) - degrade_from)
            fallback = GreedyNearestDispatcher(self.oracle, self.config)
            for shard in problems[degrade_from:]:
                degraded = fallback.dispatch(
                    [taxis[i] for i in shard.taxi_rows.tolist()],
                    [requests[j] for j in shard.request_rows.tolist()],
                )
                for assignment in degraded.assignments:
                    pairs[assignment.request_ids[0]] = assignment.taxi_id
        matching = Matching(pairs)
        if self.warm_start:
            # Seed the next frame's warm state — but never from a
            # degraded frame, whose matching is not the stable matching
            # the warm induction invariant assumes.
            self._sharded_state = (
                None
                if degrade_from is not None
                else sharded_state_from_cold(
                    taxis,
                    requests,
                    matching,
                    trip=trip,
                    config=self.config,
                    alpha_by_taxi=self.alpha_by_taxi,
                )
            )
        return matching

    def _ensure_shard_pool(self) -> ProcessPoolExecutor:
        if self._shard_pool is None:
            self._shard_pool = ProcessPoolExecutor(max_workers=self.shard_workers)
        return self._shard_pool

    def _dispatch_warm_sharded(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> tuple[
        Matching,
        tuple[np.ndarray, np.ndarray] | None,
        tuple[np.ndarray, np.ndarray] | None,
    ]:
        """One frame through the fused sharded warm solver.

        Mirrors :meth:`_dispatch_warm` (same fallback contract, same
        telemetry) with the sharded state and solver, and additionally
        records what the adaptive shard probe did.
        """
        state = self._sharded_state
        if state is None:
            self._bump("cold_frames")
            return self._dispatch_sharded_cold(taxis, requests), None, None
        cache = self.frame_cache
        try:
            matching, matched_rows, matched_legs, build_stats, new_state, info = (
                sharded_warm_frame_solve(
                    state,
                    taxis,
                    requests,
                    self.oracle,
                    self.config,
                    optimize_for=self.optimize_for,
                    alpha_by_taxi=self.alpha_by_taxi,
                    on_new_trips=None if cache is None else cache.prime_trip_km,
                )
            )
        except WarmStartError as exc:
            self._bump("warm_fallbacks")
            self._bump(f"warm_fallback_{_reason_key(exc.reason)}")
            self._sharded_state = None
            self._bump("cold_frames")
            return self._dispatch_sharded_cold(taxis, requests), None, None
        self.checkpoint("nstd:prefs-built")
        self.last_frame_mode = "warm_sharded"
        self._sharded_state = new_state
        self._bump("warm_frames")
        self._bump("pairs_scored_warm", build_stats.pairs_scored)
        self._bump("full_pairs_warm", build_stats.full_pairs)
        self._bump("sharded_frames")
        if info.largest_entities:
            self._bump("shard_decomposed_frames")
            self._bump("shard_count", info.n_shards)
            self._bump("largest_shard_entities", info.largest_entities)
            self._bump("frame_entities", info.frame_entities)
        if info.probed:
            self._bump("shard_probe_frames")
        if info.restricted:
            self._bump("shard_restricted_frames")
            self._bump("cross_shard_pairs_avoided", info.pairs_global - info.pairs_scored)
        return matching, matched_rows, matched_legs

    def _dispatch_warm(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> tuple[
        Matching,
        tuple[np.ndarray, np.ndarray] | None,
        tuple[np.ndarray, np.ndarray] | None,
    ]:
        """One frame through the warm frame solver.

        Crucially this path never touches the full taxi × request pickup
        kernel — only the churn strips are scored — and never rebuilds
        the queue's per-request facts: coordinates, party sizes and trip
        distances of retained requests ride along inside the carried
        :class:`~repro.matching.warm_frame.FrameSolveState`.

        Returns the matching plus the solver's matched row pairs and
        (sharded only) the matched pairs' leg lengths; the rows are
        ``None`` when the frame fell back to a cold solve (the id-keyed
        schedule path handles those).
        """
        if self.sharded:
            return self._dispatch_warm_sharded(taxis, requests)
        state = self._warm_state
        if state is None:
            self._bump("cold_frames")
            return self._dispatch_cold(taxis, requests, array_path=True), None, None
        cache = self.frame_cache
        try:
            matching, matched_rows, build_stats, new_state = warm_frame_solve(
                state,
                taxis,
                requests,
                self.oracle,
                self.config,
                optimize_for=self.optimize_for,
                alpha_by_taxi=self.alpha_by_taxi,
                # Keep the engine's request-keyed trip memo primed so
                # per-assignment scoring hits it on warm frames too.
                on_new_trips=None if cache is None else cache.prime_trip_km,
            )
        except WarmStartError as exc:
            # The frame failed a warm precondition; redo it cold.
            self._bump("warm_fallbacks")
            self._bump(f"warm_fallback_{_reason_key(exc.reason)}")
            self._warm_state = None
            self._bump("cold_frames")
            return self._dispatch_cold(taxis, requests, array_path=True), None, None
        self.checkpoint("nstd:prefs-built")
        self.last_frame_mode = "warm"
        self._warm_state = new_state
        self._bump("warm_frames")
        self._bump("pairs_scored_warm", build_stats.pairs_scored)
        self._bump("full_pairs_warm", build_stats.full_pairs)
        return matching, matched_rows, None


def nstd_p(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The passenger-optimal stable dispatcher (Algorithm 1)."""
    return NSTDDispatcher(oracle, config, optimize_for="passenger")


def nstd_t(
    oracle: DistanceOracle, config: DispatchConfig | None = None, *, exact: bool = False
) -> NSTDDispatcher:
    """The taxi-optimal stable dispatcher (Algorithms 1 + 2)."""
    return NSTDDispatcher(oracle, config, optimize_for="taxi", exact=exact)


def nstd_m(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The median-stable compromise dispatcher (Sethuraman et al. [13])."""
    return NSTDDispatcher(oracle, config, optimize_for="median")
