"""NSTD-P and NSTD-T: the paper's stable non-sharing dispatchers.

``NSTD-P`` runs Algorithm 1 directly (passenger-optimal).  ``NSTD-T``
selects the taxi-optimal stable matching; by default it uses the
taxi-proposing fast path (provably equal to Algorithm 2's taxi-best
pick — see :mod:`repro.matching.optimality`), with an ``exact`` switch
that runs the full Algorithm 2 enumeration instead.

The passenger/taxi fast paths run array-native end to end: the frame is
compiled straight into :class:`~repro.matching.arrays.PreferenceArrays`
(no per-pair dicts) and matched by the array deferred-acceptance
engine, which is bit-identical to the dict reference (``use_arrays=
False`` forces the dict path; the median and ``exact`` selectors always
use it, since lattice enumeration walks dict tables).  When the
simulation engine installs a :class:`~repro.simulation.frame_cache.
FrameDistanceCache`, the pickup matrix and trip distances are read from
it instead of recomputed.

``warm_start=True`` (array fast paths only) additionally carries solver
state across frames through the warm frame solver
(:mod:`repro.matching.warm_frame`): only churn-proportional distance
strips are scored (never the full taxi × request pickup kernel), the
retained queue's coordinates/party/trip facts ride along as persistent
arrays, and the stable matching is recomputed by the same Gale–Shapley
rounds on a lean CSR that is bit-identical to the cold pack.  Any frame
whose state fails a warm precondition falls back to a cold solve
transparently; :meth:`NSTDDispatcher.run_telemetry` reports warm/cold
frame counts, fallbacks, and rebuild fractions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import WarmStartError
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.geometry.distance import DistanceOracle
from repro.matching.arrays import PreferenceArrays
from repro.matching.lattice import median_stable_matching
from repro.matching.optimality import passenger_optimal, taxi_optimal, taxi_optimal_exact
from repro.matching.preferences import (
    PreferenceTable,
    build_nonsharing_arrays,
    build_nonsharing_table,
)
from repro.matching.result import Matching
from repro.matching.warm_frame import (
    FrameSolveState,
    frame_state_from_cold,
    request_trips,
    warm_frame_solve,
)

__all__ = ["NSTDDispatcher", "nstd_p", "nstd_t", "nstd_m"]


class NSTDDispatcher(Dispatcher):
    """Non-Sharing Taxi Dispatch via stable matching (Algorithms 1 and 2)."""

    _NAMES = {"passenger": "NSTD-P", "taxi": "NSTD-T", "median": "NSTD-M"}

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        optimize_for: str = "passenger",
        exact: bool = False,
        alpha_by_taxi: Mapping[int, float] | None = None,
        use_arrays: bool = True,
        warm_start: bool = False,
    ):
        super().__init__(oracle, config)
        if optimize_for not in self._NAMES:
            raise ValueError(
                f"optimize_for must be one of {sorted(self._NAMES)}, got {optimize_for!r}"
            )
        if warm_start and not (
            use_arrays and optimize_for in ("passenger", "taxi") and not exact
        ):
            raise ValueError(
                "warm_start requires the array fast path: use_arrays=True, "
                "optimize_for in ('passenger', 'taxi'), exact=False"
            )
        self.optimize_for = optimize_for
        self.exact = exact
        self.alpha_by_taxi = dict(alpha_by_taxi) if alpha_by_taxi else None
        self.use_arrays = use_arrays
        self.warm_start = warm_start
        self.name = self._NAMES[optimize_for]
        self._warm_state: FrameSolveState | None = None
        self._telemetry: dict[str, float | int] = {}

    # -- warm-start lifecycle ---------------------------------------------

    def reset_warm_state(self, *, counters: bool = False) -> None:
        """Drop the carried frame state (and optionally run counters).

        Called by the simulation engine at run start (``counters=True``)
        and after any frame answered by a degradation-ladder fallback,
        which breaks the consecutive-frame invariant the state encodes.
        """
        self._warm_state = None
        if counters:
            self._telemetry = {}

    def run_telemetry(self) -> dict[str, float | int]:
        """Warm-start counters since the last full reset.

        ``warm_frames`` / ``cold_frames`` partition the dispatched
        frames; ``warm_fallbacks`` counts warm frames that had to redo a
        cold solve after a failed resume precondition.  The pair/strip
        totals give the aggregate rebuild fraction — the share of the
        full taxi × request work the warm builder actually performed.
        """
        return dict(self._telemetry)

    def _bump(self, key: str, amount: float | int = 1) -> None:
        self._telemetry[key] = self._telemetry.get(key, 0) + amount

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            # The carried warm state stays put: nothing was solved, and
            # only arrivals can happen before the next non-empty frame,
            # so churn classification against it remains sound.
            return schedule
        self.checkpoint("nstd:start")
        array_path = (
            self.use_arrays
            and self.optimize_for in ("passenger", "taxi")
            and not self.exact
        )
        matched_rows: tuple[np.ndarray, np.ndarray] | None = None
        if self.warm_start and array_path:
            matching, matched_rows = self._dispatch_warm(taxis, requests)
        else:
            matching = self._dispatch_cold(taxis, requests, array_path)
        self.checkpoint("nstd:matched")
        if matched_rows is not None:
            # Warm frames: the solver hands back matched (taxi, request)
            # row pairs already sorted by request id, indexing straight
            # into this frame's sequences — the schedule is assembled
            # without re-keying either side by id.  The rows come from
            # deferred-acceptance partner arrays (one partner per side
            # by construction), so the structural re-validation the id
            # path pays is redundant here; the engine still validates
            # every schedule it executes.
            t_rows, r_rows = matched_rows
            for t_row, r_row in zip(t_rows.tolist(), r_rows.tolist()):
                schedule.add(single_assignment(taxis[t_row], requests[r_row]))
            return schedule
        taxis_by_id = {t.taxi_id: t for t in taxis}
        requests_by_id = {r.request_id: r for r in requests}
        for request_id, taxi_id in sorted(matching.pairs):
            schedule.add(single_assignment(taxis_by_id[taxi_id], requests_by_id[request_id]))
        return self._validated(schedule, taxis, requests)

    def _dispatch_cold(
        self,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        array_path: bool,
    ) -> Matching:
        """The stateless frame solve (the pre-warm-start behaviour)."""
        pickup_matrix = trip_km = None
        if self.frame_cache is not None:
            pickup_matrix = self.frame_cache.pickup_matrix(taxis, requests)
            trip_km = self.frame_cache.trip_km(requests)
        prefs: PreferenceArrays | PreferenceTable
        if array_path:
            prefs = build_nonsharing_arrays(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        else:
            prefs = build_nonsharing_table(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        self.checkpoint("nstd:prefs-built")
        if self.warm_start and isinstance(prefs, PreferenceArrays):
            # Cold frame of a warm-started run (first frame, or a warm
            # precondition failed): solve exactly as the stateless path
            # does, then seed the next frame's warm state from the
            # frame's own facts (the trip vector was computed above
            # either way).
            if self.optimize_for == "taxi":
                matching = taxi_optimal(prefs)
            else:
                matching = passenger_optimal(prefs)
            trips = (
                np.asarray(trip_km, dtype=np.float64)
                if trip_km is not None
                else request_trips(requests, self.oracle)
            )
            self._warm_state = frame_state_from_cold(taxis, requests, matching, trip=trips)
            return matching
        if self.optimize_for == "passenger":
            matching = passenger_optimal(prefs)
        elif self.optimize_for == "median":
            # The Teo-Sethuraman compromise the paper cites as [13]:
            # every matched side gets its median stable partner.
            matching = median_stable_matching(prefs)
        elif self.exact:
            # Under a frame deadline the full Algorithm 2 enumeration
            # becomes anytime: the taxi-best matching found in budget is
            # still stable, so a truncated pick remains a valid frame.
            matching = taxi_optimal_exact(prefs, deadline=self.frame_budget)
        else:
            matching = taxi_optimal(prefs)
        return matching

    def _dispatch_warm(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> tuple[Matching, tuple[np.ndarray, np.ndarray] | None]:
        """One frame through the warm frame solver.

        Crucially this path never touches the full taxi × request pickup
        kernel — only the churn strips are scored — and never rebuilds
        the queue's per-request facts: coordinates, party sizes and trip
        distances of retained requests ride along inside the carried
        :class:`~repro.matching.warm_frame.FrameSolveState`.

        Returns the matching plus the solver's matched row pairs; the
        rows are ``None`` when the frame fell back to a cold solve (the
        id-keyed schedule path handles those).
        """
        state = self._warm_state
        if state is None:
            self._bump("cold_frames")
            return self._dispatch_cold(taxis, requests, array_path=True), None
        cache = self.frame_cache
        try:
            matching, matched_rows, build_stats, new_state = warm_frame_solve(
                state,
                taxis,
                requests,
                self.oracle,
                self.config,
                optimize_for=self.optimize_for,
                alpha_by_taxi=self.alpha_by_taxi,
                # Keep the engine's request-keyed trip memo primed so
                # per-assignment scoring hits it on warm frames too.
                on_new_trips=None if cache is None else cache.prime_trip_km,
            )
        except WarmStartError as exc:
            # The frame failed a warm precondition; redo it cold.
            self._bump("warm_fallbacks")
            self._bump(f"warm_fallback_{exc.reason}")
            self._warm_state = None
            self._bump("cold_frames")
            return self._dispatch_cold(taxis, requests, array_path=True), None
        self.checkpoint("nstd:prefs-built")
        self._warm_state = new_state
        self._bump("warm_frames")
        self._bump("pairs_scored_warm", build_stats.pairs_scored)
        self._bump("full_pairs_warm", build_stats.full_pairs)
        return matching, matched_rows


def nstd_p(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The passenger-optimal stable dispatcher (Algorithm 1)."""
    return NSTDDispatcher(oracle, config, optimize_for="passenger")


def nstd_t(
    oracle: DistanceOracle, config: DispatchConfig | None = None, *, exact: bool = False
) -> NSTDDispatcher:
    """The taxi-optimal stable dispatcher (Algorithms 1 + 2)."""
    return NSTDDispatcher(oracle, config, optimize_for="taxi", exact=exact)


def nstd_m(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The median-stable compromise dispatcher (Sethuraman et al. [13])."""
    return NSTDDispatcher(oracle, config, optimize_for="median")
