"""NSTD-P and NSTD-T: the paper's stable non-sharing dispatchers.

``NSTD-P`` runs Algorithm 1 directly (passenger-optimal).  ``NSTD-T``
selects the taxi-optimal stable matching; by default it uses the
taxi-proposing fast path (provably equal to Algorithm 2's taxi-best
pick — see :mod:`repro.matching.optimality`), with an ``exact`` switch
that runs the full Algorithm 2 enumeration instead.

The passenger/taxi fast paths run array-native end to end: the frame is
compiled straight into :class:`~repro.matching.arrays.PreferenceArrays`
(no per-pair dicts) and matched by the array deferred-acceptance
engine, which is bit-identical to the dict reference (``use_arrays=
False`` forces the dict path; the median and ``exact`` selectors always
use it, since lattice enumeration walks dict tables).  When the
simulation engine installs a :class:`~repro.simulation.frame_cache.
FrameDistanceCache`, the pickup matrix and trip distances are read from
it instead of recomputed.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.config import DispatchConfig
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.geometry.distance import DistanceOracle
from repro.matching.lattice import median_stable_matching
from repro.matching.optimality import passenger_optimal, taxi_optimal, taxi_optimal_exact
from repro.matching.preferences import build_nonsharing_arrays, build_nonsharing_table

__all__ = ["NSTDDispatcher", "nstd_p", "nstd_t", "nstd_m"]


class NSTDDispatcher(Dispatcher):
    """Non-Sharing Taxi Dispatch via stable matching (Algorithms 1 and 2)."""

    _NAMES = {"passenger": "NSTD-P", "taxi": "NSTD-T", "median": "NSTD-M"}

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        optimize_for: str = "passenger",
        exact: bool = False,
        alpha_by_taxi: Mapping[int, float] | None = None,
        use_arrays: bool = True,
    ):
        super().__init__(oracle, config)
        if optimize_for not in self._NAMES:
            raise ValueError(
                f"optimize_for must be one of {sorted(self._NAMES)}, got {optimize_for!r}"
            )
        self.optimize_for = optimize_for
        self.exact = exact
        self.alpha_by_taxi = dict(alpha_by_taxi) if alpha_by_taxi else None
        self.use_arrays = use_arrays
        self.name = self._NAMES[optimize_for]

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        self.checkpoint("nstd:start")
        pickup_matrix = trip_km = None
        if self.frame_cache is not None:
            pickup_matrix = self.frame_cache.pickup_matrix(taxis, requests)
            trip_km = self.frame_cache.trip_km(requests)
        array_path = (
            self.use_arrays
            and self.optimize_for in ("passenger", "taxi")
            and not self.exact
        )
        if array_path:
            prefs = build_nonsharing_arrays(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        else:
            prefs = build_nonsharing_table(
                taxis,
                requests,
                self.oracle,
                self.config,
                alpha_by_taxi=self.alpha_by_taxi,
                pickup_matrix=pickup_matrix,
                trip_km=trip_km,
            )
        self.checkpoint("nstd:prefs-built")
        if self.optimize_for == "passenger":
            matching = passenger_optimal(prefs)
        elif self.optimize_for == "median":
            # The Teo-Sethuraman compromise the paper cites as [13]:
            # every matched side gets its median stable partner.
            matching = median_stable_matching(prefs)
        elif self.exact:
            # Under a frame deadline the full Algorithm 2 enumeration
            # becomes anytime: the taxi-best matching found in budget is
            # still stable, so a truncated pick remains a valid frame.
            matching = taxi_optimal_exact(prefs, deadline=self.frame_budget)
        else:
            matching = taxi_optimal(prefs)
        self.checkpoint("nstd:matched")
        taxis_by_id = {t.taxi_id: t for t in taxis}
        requests_by_id = {r.request_id: r for r in requests}
        for request_id, taxi_id in sorted(matching.pairs):
            schedule.add(single_assignment(taxis_by_id[taxi_id], requests_by_id[request_id]))
        return self._validated(schedule, taxis, requests)


def nstd_p(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The passenger-optimal stable dispatcher (Algorithm 1)."""
    return NSTDDispatcher(oracle, config, optimize_for="passenger")


def nstd_t(
    oracle: DistanceOracle, config: DispatchConfig | None = None, *, exact: bool = False
) -> NSTDDispatcher:
    """The taxi-optimal stable dispatcher (Algorithms 1 + 2)."""
    return NSTDDispatcher(oracle, config, optimize_for="taxi", exact=exact)


def nstd_m(oracle: DistanceOracle, config: DispatchConfig | None = None) -> NSTDDispatcher:
    """The median-stable compromise dispatcher (Sethuraman et al. [13])."""
    return NSTDDispatcher(oracle, config, optimize_for="median")
