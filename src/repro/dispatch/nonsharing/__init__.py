"""Non-sharing dispatchers: NSTD-P, NSTD-T, Greedy, MCBM, MMCM."""

from repro.dispatch.nonsharing.greedy import GreedyNearestDispatcher
from repro.dispatch.nonsharing.mincost import MinCostDispatcher, build_cost_matrix
from repro.dispatch.nonsharing.minimax import MinimaxDispatcher
from repro.dispatch.nonsharing.nstd import NSTDDispatcher, nstd_m, nstd_p, nstd_t

__all__ = [
    "NSTDDispatcher",
    "nstd_p",
    "nstd_t",
    "nstd_m",
    "GreedyNearestDispatcher",
    "MinCostDispatcher",
    "MinimaxDispatcher",
    "build_cost_matrix",
]
