"""MCBM baseline: minimum-cost bipartite matching (Hanna et al. [3], ii).

Costs are pickup distances ``D(t_i, r_j^s)``; the Hungarian algorithm
matches ``min(|R|, |T|)`` pairs minimizing the total.  Pairs beyond the
passenger wait threshold or without enough seats are forbidden.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.matching.bipartite import min_cost_matching

__all__ = ["MinCostDispatcher", "build_cost_matrix"]


def build_cost_matrix(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle,
    threshold_km: float = math.inf,
) -> np.ndarray:
    """``cost[j][i] = D(t_i, r_j^s)``; ``inf`` marks forbidden pairs."""
    matrix = np.full((len(requests), len(taxis)), math.inf)
    for j, request in enumerate(requests):
        for i, taxi in enumerate(taxis):
            if not taxi.can_carry(request):
                continue
            distance = oracle.distance(taxi.location, request.pickup)
            if distance <= threshold_km:
                matrix[j, i] = distance
    return matrix


class MinCostDispatcher(Dispatcher):
    """Minimum total pickup distance over a maximum set of pairs."""

    name = "MCBM"

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        ordered_requests = sorted(requests, key=lambda r: r.request_id)
        ordered_taxis = sorted(taxis, key=lambda t: t.taxi_id)
        matrix = build_cost_matrix(
            ordered_taxis, ordered_requests, self.oracle, self.config.passenger_threshold_km
        )
        for j, i in min_cost_matching(matrix):
            schedule.add(single_assignment(ordered_taxis[i], ordered_requests[j]))
        return self._validated(schedule, taxis, requests)
