"""MCBM baseline: minimum-cost bipartite matching (Hanna et al. [3], ii).

Costs are pickup distances ``D(t_i, r_j^s)``; the Hungarian algorithm
matches ``min(|R|, |T|)`` pairs minimizing the total.  Pairs beyond the
passenger wait threshold or without enough seats are forbidden.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.geometry.batch import oracle_pairwise
from repro.geometry.distance import DistanceOracle
from repro.matching.bipartite import min_cost_matching

__all__ = ["MinCostDispatcher", "build_cost_matrix"]


def build_cost_matrix(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    threshold_km: float = math.inf,
    *,
    pickup_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """``cost[j][i] = D(t_i, r_j^s)``; ``inf`` marks forbidden pairs.

    Built on the batched distance kernels (one vectorized pickup-distance
    matrix plus seat/threshold masks); oracles without an exact batch
    kernel fall back to scalar ``distance`` calls, so entries are always
    bit-identical to the scalar double loop.  ``pickup_matrix``
    optionally supplies that taxi-major ``(len(taxis), len(requests))``
    distance matrix precomputed (the frame cache's layout) instead of
    recomputing it here.
    """
    if not taxis or not requests:
        return np.full((len(requests), len(taxis)), math.inf)
    # Sources are taxi locations: D(t_i, r_j^s) differs from D(r_j^s, t_i)
    # on asymmetric oracles such as a road network with oneway edges.  The
    # masking runs in the kernel's taxi-major layout (contiguous), and only
    # the final result is transposed (a free view) to the documented
    # request-major indexing.
    if pickup_matrix is not None:
        pick = np.asarray(pickup_matrix, dtype=np.float64)
        if pick.shape != (len(taxis), len(requests)):
            raise ValueError(
                f"pickup_matrix has shape {pick.shape}, "
                f"expected ({len(taxis)}, {len(requests)})"
            )
    else:
        pick = oracle_pairwise(
            oracle,
            sources=[t.location for t in taxis],
            targets=[r.pickup for r in requests],
            exact=True,
        )
    seats = np.array([t.seats for t in taxis], dtype=np.int64)
    party = np.array([r.passengers for r in requests], dtype=np.int64)
    allowed = (party[None, :] <= seats[:, None]) & (pick <= threshold_km)
    return np.where(allowed, pick, math.inf).T


class MinCostDispatcher(Dispatcher):
    """Minimum total pickup distance over a maximum set of pairs."""

    name = "MCBM"

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        ordered_requests = sorted(requests, key=lambda r: r.request_id)
        ordered_taxis = sorted(taxis, key=lambda t: t.taxi_id)
        pickup = (
            self.frame_cache.pickup_matrix(ordered_taxis, ordered_requests)
            if self.frame_cache is not None
            else None
        )
        self.checkpoint("mcbm:start")
        matrix = build_cost_matrix(
            ordered_taxis,
            ordered_requests,
            self.oracle,
            self.config.passenger_threshold_km,
            pickup_matrix=pickup,
        )
        self.checkpoint("mcbm:cost-matrix")
        for j, i in min_cost_matching(matrix):
            schedule.add(single_assignment(ordered_taxis[i], ordered_requests[j]))
        return self._validated(schedule, taxis, requests)
