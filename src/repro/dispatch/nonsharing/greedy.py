"""Greedy baseline: nearest idle taxi first (Hanna et al. [3], method i).

Requests are served in arrival (id) order; each takes the geometrically
nearest idle taxi with enough seats.  A grid spatial index keeps the
per-request query sublinear, which is what makes this the fastest — and
least driver-friendly — baseline.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.geometry.spatial_index import GridSpatialIndex

__all__ = ["GreedyNearestDispatcher"]


class GreedyNearestDispatcher(Dispatcher):
    """Dispatch each request to its nearest idle taxi, in request order."""

    name = "Greedy"

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        index = GridSpatialIndex(cell_size=self._cell_size(taxis), oracle=self.oracle)
        index.bulk_load((taxi.taxi_id, taxi.location) for taxi in taxis)
        taxis_by_id = {t.taxi_id: t for t in taxis}
        threshold = self.config.passenger_threshold_km
        for request in sorted(requests, key=lambda r: r.request_id):
            if not index:
                break
            chosen: Taxi | None = None
            # The nearest taxi may lack seats; widen the query until a
            # seat-feasible one is found or candidates run out.
            k = 1
            while k <= len(index):
                candidates = index.nearest(request.pickup, k=k)
                taxi_id, distance = candidates[-1]
                if distance > threshold:
                    break
                taxi = taxis_by_id[int(taxi_id)]
                if taxi.can_carry(request):
                    chosen = taxi
                    break
                k += 1
            if chosen is None:
                continue
            index.remove(chosen.taxi_id)
            schedule.add(single_assignment(chosen, request))
        return self._validated(schedule, taxis, requests)

    @staticmethod
    def _cell_size(taxis: Sequence[Taxi]) -> float:
        xs = [t.location.x for t in taxis]
        ys = [t.location.y for t in taxis]
        span = max(max(xs) - min(xs), max(ys) - min(ys), 1e-6)
        # Floor at 250 m so a near-degenerate fleet (one idle taxi) does
        # not shatter the index into microscopic cells.
        return max(span / max(len(taxis) ** 0.5, 1.0), 0.25)
