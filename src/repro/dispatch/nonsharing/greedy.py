"""Greedy baseline: nearest idle taxi first (Hanna et al. [3], method i).

Requests are served in arrival (id) order; each takes the geometrically
nearest idle taxi with enough seats.  A grid spatial index keeps the
per-request query sublinear, which is what makes this the fastest — and
least driver-friendly — baseline.

When the simulation engine installs a frame cache, the per-request index
queries are replaced by masked argmins over the frame's shared pickup
matrix.  The selection rule is unchanged: among available in-threshold
taxis with enough seats, nearest wins and distance ties break toward
the smaller taxi id — the same (distance, key) order the index uses —
so both paths produce identical schedules.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.geometry.spatial_index import GridSpatialIndex, suggest_cell_size

__all__ = ["GreedyNearestDispatcher"]


class GreedyNearestDispatcher(Dispatcher):
    """Dispatch each request to its nearest idle taxi, in request order."""

    name = "Greedy"

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        if self.frame_cache is not None:
            return self._dispatch_matrix(taxis, requests)
        index = GridSpatialIndex(
            cell_size=suggest_cell_size(t.location for t in taxis), oracle=self.oracle
        )
        index.bulk_load((taxi.taxi_id, taxi.location) for taxi in taxis)
        taxis_by_id = {t.taxi_id: t for t in taxis}
        threshold = self.config.passenger_threshold_km
        for request in sorted(requests, key=lambda r: r.request_id):
            if not index:
                break
            self.checkpoint("greedy:request")
            chosen = self._nearest_feasible(index, taxis_by_id, request, threshold)
            if chosen is None:
                continue
            index.remove(chosen.taxi_id)
            schedule.add(single_assignment(chosen, request))
        return self._validated(schedule, taxis, requests)

    def _dispatch_matrix(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        """The frame-cache fast path: one matrix, one argmin per request.

        Taxis are id-sorted, so ``argmin``'s first-minimum convention is
        exactly the index path's smallest-id tie-break.
        """
        schedule = DispatchSchedule()
        ordered_taxis = sorted(taxis, key=lambda t: t.taxi_id)
        ordered_requests = sorted(requests, key=lambda r: r.request_id)
        pick = self.frame_cache.pickup_matrix(ordered_taxis, ordered_requests)
        seats = np.array([t.seats for t in ordered_taxis], dtype=np.int64)
        available = np.ones(len(ordered_taxis), dtype=bool)
        threshold = self.config.passenger_threshold_km
        for j, request in enumerate(ordered_requests):
            if not available.any():
                break
            self.checkpoint("greedy:request")
            column = pick[:, j]
            feasible = available & (column <= threshold) & (request.passengers <= seats)
            if not feasible.any():
                continue
            i = int(np.argmin(np.where(feasible, column, np.inf)))
            available[i] = False
            schedule.add(single_assignment(ordered_taxis[i], request))
        return self._validated(schedule, taxis, requests)

    @staticmethod
    def _nearest_feasible(
        index: GridSpatialIndex,
        taxis_by_id: dict[int, Taxi],
        request: PassengerRequest,
        threshold: float,
    ) -> Taxi | None:
        """The closest in-threshold taxi with enough seats.

        The nearest taxi may lack seats; the query widens by doubling
        ``k`` (O(log k) index queries instead of one per candidate) and
        scans only the not-yet-examined tail of each result, which is
        consistent across widenings because ``nearest`` orders
        deterministically by (distance, key).
        """
        k = 1
        examined = 0
        n = len(index)
        while examined < n:
            candidates = index.nearest(request.pickup, k=min(k, n))
            for taxi_id, distance in candidates[examined:]:
                if distance > threshold:
                    return None
                taxi = taxis_by_id[int(taxi_id)]
                if taxi.can_carry(request):
                    return taxi
            examined = len(candidates)
            k *= 2
        return None