"""MMCM baseline: minimax-cost bipartite matching (Hanna et al. [3], iii).

Matches as many pairs as MCBM but minimizes the *largest* matched pickup
distance, which is why the paper's Fig. 4(b) shows MMCM capping almost
every passenger's dissatisfaction at a common bound.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, single_assignment
from repro.dispatch.nonsharing.mincost import build_cost_matrix
from repro.matching.bipartite import minimax_matching

__all__ = ["MinimaxDispatcher"]


class MinimaxDispatcher(Dispatcher):
    """Minimize the maximum matched pickup distance."""

    name = "MMCM"

    def dispatch(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> DispatchSchedule:
        schedule = DispatchSchedule()
        if not taxis or not requests:
            return schedule
        ordered_requests = sorted(requests, key=lambda r: r.request_id)
        ordered_taxis = sorted(taxis, key=lambda t: t.taxi_id)
        pickup = (
            self.frame_cache.pickup_matrix(ordered_taxis, ordered_requests)
            if self.frame_cache is not None
            else None
        )
        self.checkpoint("mmcm:start")
        matrix = build_cost_matrix(
            ordered_taxis,
            ordered_requests,
            self.oracle,
            self.config.passenger_threshold_km,
            pickup_matrix=pickup,
        )
        self.checkpoint("mmcm:cost-matrix")
        for j, i in minimax_matching(matrix):
            schedule.add(single_assignment(ordered_taxis[i], ordered_requests[j]))
        return self._validated(schedule, taxis, requests)
