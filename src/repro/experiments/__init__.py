"""Experiment harnesses reproducing the paper's evaluation figures."""

from repro.experiments.environment import effective_cpu_count, environment_metadata
from repro.experiments.figures import FIGURES, FigureResult, run_figure
from repro.experiments.runners import (
    build_workload,
    make_dispatcher,
    run_city_experiment,
    run_taxi_sweep,
)
from repro.experiments.settings import (
    NONSHARING_ALGORITHMS,
    SHARING_ALGORITHMS,
    ExperimentScale,
    city_dispatch_config,
    city_simulation_config,
    profile_by_name,
)

__all__ = [
    "effective_cpu_count",
    "environment_metadata",
    "FIGURES",
    "FigureResult",
    "run_figure",
    "make_dispatcher",
    "build_workload",
    "run_city_experiment",
    "run_taxi_sweep",
    "ExperimentScale",
    "city_dispatch_config",
    "city_simulation_config",
    "profile_by_name",
    "NONSHARING_ALGORITHMS",
    "SHARING_ALGORITHMS",
]
