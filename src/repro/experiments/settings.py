"""Experiment-wide settings and algorithm rosters.

The paper's evaluation constants (Section VI): α = β = 1, θ = 5 km,
one-minute frames, 20 km/h taxis, 700 NYC / 200 Boston taxis.  Dummy
thresholds are not quoted numerically in the paper; we use values
proportional to each city's spatial spread so that "too far to be worth
it" pairs fall behind the dummy — the mechanism Properties 1–2 and the
Boston delay discussion rely on.

``ExperimentScale`` shrinks a day to laptop size while preserving the
request/taxi ratio; ``scale=1.0`` reproduces paper-sized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DispatchConfig, SimulationConfig
from repro.core.errors import ExperimentError
from repro.trace.profiles import CityProfile, boston_profile, nyc_profile

__all__ = [
    "ExperimentScale",
    "city_dispatch_config",
    "city_simulation_config",
    "NONSHARING_ALGORITHMS",
    "SHARING_ALGORITHMS",
    "profile_by_name",
]

#: Non-sharing roster, in the order the paper's legends list them.
NONSHARING_ALGORITHMS = ("NSTD-P", "NSTD-T", "Greedy", "MCBM", "MMCM")

#: Sharing roster.
SHARING_ALGORITHMS = ("STD-P", "STD-T", "RAII", "SARP", "ILP")


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """How much of the paper-sized workload to simulate.

    ``factor`` scales daily requests and the fleet together; ``seed``
    drives all trace randomness; ``hours`` optionally restricts the
    simulated day to a clock window (whole day when ``None``).
    """

    factor: float = 0.03
    seed: int = 2017
    hours: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ExperimentError(f"scale factor must be positive, got {self.factor}")
        if self.hours is not None:
            start, end = self.hours
            if not 0.0 <= start < end <= 24.0:
                raise ExperimentError(f"invalid hour window {self.hours}")


def city_dispatch_config(profile: CityProfile) -> DispatchConfig:
    """Per-city preference parameters (α = β = 1, θ = 5 km at paper size).

    Dummy thresholds scale with the pickup spread σ.  A passenger will
    not wait for a taxi more than 3σ away.  A driver refuses rides whose
    score ``D(t, r^s) − α·D(r^s, r^d)`` exceeds σ/2 — i.e. rides whose
    deadhead clearly outweighs the fare.  The driver-side refusal is the
    paper's headline mechanism ("our approach ... refuses to dispatch
    taxis to passengers that are not preferred"): it is what buys
    NSTD/STD their large taxi-dissatisfaction advantage at the cost of a
    slightly larger dispatch delay and a lower served fraction, the
    trade-off Section VI-C describes.  All length-typed parameters carry
    the profile's ``space_scale`` so scaled runs stay dynamically
    similar to paper-sized ones.
    """
    sigma = profile.pickup_sigma_km
    return DispatchConfig(
        alpha=1.0,
        beta=1.0,
        theta_km=5.0 * profile.space_scale,
        max_group_size=3,
        passenger_threshold_km=3.0 * sigma,
        taxi_threshold_km=0.5 * sigma,
    )


def city_simulation_config(profile: CityProfile) -> SimulationConfig:
    """Paper simulation constants: 60 s frames, 20 km/h at paper size.

    Taxi speed multiplies by the profile's ``space_scale`` so a
    geometry-shrunk city keeps paper-identical ride durations and fleet
    utilization (see :meth:`repro.trace.CityProfile.scaled`).

    Passengers abandon after an hour.  The paper's fleets run near
    saturation at rush hour (its own numbers: ~5 rides/taxi/hour against
    a peak demand of ~4.7 per taxi), so an unbounded queue would grow
    for hours and smear the delay CDF far past the ≤50-minute range
    Fig. 4(a) reports; finite patience is both realistic and what keeps
    the simulated operating point inside the paper's.  Patience is
    time-typed, hence invariant under workload scaling.
    """
    return SimulationConfig(
        frame_length_s=60.0,
        taxi_speed_kmh=20.0 * profile.space_scale,
        passenger_patience_s=3600.0,
        horizon_s=24.0 * 3600.0,
        dispatch=city_dispatch_config(profile),
    )


def profile_by_name(name: str) -> CityProfile:
    """Resolve 'new-york' / 'boston' (with common aliases)."""
    key = name.strip().lower()
    if key in ("new-york", "newyork", "ny", "nyc"):
        return nyc_profile()
    if key in ("boston", "bos"):
        return boston_profile()
    raise ExperimentError(f"unknown city {name!r}; expected 'new-york' or 'boston'")
