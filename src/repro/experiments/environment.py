"""Host environment metadata for experiment and benchmark provenance.

Wall-clock numbers are meaningless without knowing what produced them:
the benchmark JSON artifacts embed this snapshot so a regression check
can tell "the code got slower" apart from "the baseline came from a
different machine".
"""

from __future__ import annotations

import math
import os
import platform
import sys
from pathlib import Path

import numpy as np

__all__ = ["environment_metadata", "effective_cpu_count"]


def _cgroup_cpu_quota() -> float | None:
    """The container CPU quota as a fractional core count, if limited.

    Reads cgroup v2 ``cpu.max`` first, then the v1 CFS quota files.
    Returns ``None`` when unlimited, absent, or unreadable (non-Linux
    hosts, masked cgroupfs): the caller then trusts the scheduler view.
    """
    try:
        fields = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if fields and fields[0] != "max":
            return int(fields[0]) / int(fields[1])
    except (OSError, IndexError, ValueError, ZeroDivisionError):
        pass
    try:
        quota = int(Path("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").read_text())
        period = int(Path("/sys/fs/cgroup/cpu/cpu.cfs_period_us").read_text())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def effective_cpu_count() -> int:
    """CPUs this process can actually use, not what the host has.

    ``os.cpu_count()`` reports the machine; under CI runners and
    containers the process is typically confined well below that by a
    scheduler affinity mask and/or a cgroup CPU quota, and a benchmark
    baseline stamped with the host count would look comparable across
    environments that are not.  Takes the minimum of the host count,
    the affinity mask size, and the cgroup quota (rounded up: a 1.5-CPU
    quota can still run two-way parallel sections, just throttled).
    """
    count = os.cpu_count() or 1
    if hasattr(os, "sched_getaffinity"):
        try:
            count = min(count, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels only
            pass
    quota = _cgroup_cpu_quota()
    if quota is not None:
        count = min(count, math.ceil(quota))
    return max(1, count)


def environment_metadata() -> dict[str, str | int]:
    """Versions and hardware facts that shape wall-clock timings.

    ``cpu_count`` is the *effective* count (affinity- and cgroup-aware);
    ``cpu_count_host`` keeps the raw machine figure for context.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": effective_cpu_count(),
        "cpu_count_host": os.cpu_count() or 1,
        "executable": sys.executable,
    }
