"""Host environment metadata for experiment and benchmark provenance.

Wall-clock numbers are meaningless without knowing what produced them:
the benchmark JSON artifacts embed this snapshot so a regression check
can tell "the code got slower" apart from "the baseline came from a
different machine".
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np

__all__ = ["environment_metadata"]


def environment_metadata() -> dict[str, str | int]:
    """Versions and hardware facts that shape wall-clock timings."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "executable": sys.executable,
    }
