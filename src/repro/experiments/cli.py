"""Command-line entry point: regenerate any paper figure.

Examples
--------
Run the Boston non-sharing evaluation at the default laptop scale::

    repro-taxi fig5

Run the New York sharing evaluation at 2% of the paper's workload with
a fixed seed::

    repro-taxi fig8 --scale 0.02 --seed 7

Restrict the day to the morning rush, write the report to a file, and
freeze the exact workload next to it::

    repro-taxi fig5 --hours 7 11 --output fig5.txt --save-trace fig5_trace.csv
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.settings import ExperimentScale

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-taxi",
        description="Reproduce the figures of the ICDCS'17 stable taxi-dispatch paper.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES),
        help="which evaluation figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.03,
        help="fraction of the paper-sized workload to simulate (default 0.03; 1.0 = paper size)",
    )
    parser.add_argument("--seed", type=int, default=2017, help="trace random seed")
    parser.add_argument(
        "--hours",
        type=float,
        nargs=2,
        metavar=("START", "END"),
        default=None,
        help="restrict the simulated day to a clock window, e.g. --hours 7 11",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--save-trace",
        type=str,
        default=None,
        help="freeze the figure's request workload to a CSV for exact replay",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    scale = ExperimentScale(
        factor=args.scale,
        seed=args.seed,
        hours=tuple(args.hours) if args.hours is not None else None,
    )
    result = run_figure(args.figure, scale)
    print(result.report)
    if args.output is not None:
        Path(args.output).write_text(result.report + "\n")
        print(f"\nreport written to {args.output}")
    if args.save_trace is not None:
        from repro.experiments.figures import FIGURE_CITIES
        from repro.experiments.runners import build_workload
        from repro.experiments.settings import profile_by_name
        from repro.trace.persistence import save_requests_csv

        profile = profile_by_name(FIGURE_CITIES[args.figure])
        _, requests = build_workload(profile, scale)
        written = save_requests_csv(requests, args.save_trace)
        print(f"workload frozen to {args.save_trace} ({written} requests)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
