"""Per-figure experiment harnesses.

One entry per figure of the paper's evaluation (Section VI).  Each
harness returns a :class:`FigureResult` bundling the structured series
and a printable report that mirrors the figure's content:

* ``fig4`` — non-sharing CDFs, New York (Fig. 4 a–c)
* ``fig5`` — non-sharing CDFs, Boston (Fig. 5 a–c)
* ``fig6`` — averages vs. number of taxis, Boston (Fig. 6 a–c)
* ``fig7`` — averages vs. clock time, Boston (Fig. 7 a–c)
* ``fig8`` — sharing CDFs, New York (Fig. 8)
* ``fig9`` — sharing CDFs, Boston (Fig. 9)

Figs. 1–3 are worked micro-examples, reproduced as unit tests in
``tests/matching/test_paper_examples.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from repro.analysis.aggregate import hourly_averages
from repro.analysis.cdf import EmpiricalCDF, empirical_cdf
from repro.analysis.report import format_cdf_table, format_summary_table, format_table
from repro.core.errors import ExperimentError
from repro.experiments.runners import run_city_experiment, run_taxi_sweep
from repro.experiments.settings import (
    NONSHARING_ALGORITHMS,
    SHARING_ALGORITHMS,
    ExperimentScale,
    profile_by_name,
)
from repro.simulation.engine import SimulationResult

__all__ = ["FigureResult", "FIGURES", "FIGURE_CITIES", "run_figure"]


@dataclass(slots=True)
class FigureResult:
    """Structured output of one figure harness."""

    figure_id: str
    title: str
    report: str
    series: dict = field(default_factory=dict)
    summaries: dict[str, dict[str, float]] = field(default_factory=dict)


def _metric_cdfs(
    results: dict[str, SimulationResult],
) -> tuple[dict[str, EmpiricalCDF], dict[str, EmpiricalCDF], dict[str, EmpiricalCDF]]:
    delay = {name: empirical_cdf(r.dispatch_delays_min()) for name, r in results.items()}
    passenger = {name: empirical_cdf(r.passenger_dissatisfactions()) for name, r in results.items()}
    taxi = {name: empirical_cdf(r.taxi_dissatisfactions()) for name, r in results.items()}
    return delay, passenger, taxi


def _grid(cdfs: dict[str, EmpiricalCDF], points: int = 9) -> list[float]:
    values = np.concatenate([c.values for c in cdfs.values() if c.n]) if cdfs else np.array([])
    if values.size == 0:
        return [0.0]
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return [lo]
    return list(np.linspace(lo, hi, points))


def _cdf_figure(
    figure_id: str,
    title: str,
    city: str,
    algorithms: Sequence[str],
    scale: ExperimentScale,
) -> FigureResult:
    profile = profile_by_name(city)
    results = run_city_experiment(profile, algorithms, scale)
    delay, passenger, taxi = _metric_cdfs(results)
    report_parts = [
        f"== {title} ==",
        "",
        "(a) dispatch delay CDF (minutes)",
        format_cdf_table(delay, _grid(delay), value_label="delay_min"),
        "",
        "(b) passenger dissatisfaction CDF (km)",
        format_cdf_table(passenger, _grid(passenger), value_label="pd_km"),
        "",
        "(c) taxi dissatisfaction CDF (km)",
        format_cdf_table(taxi, _grid(taxi), value_label="td_km"),
        "",
        "summary",
        format_summary_table({name: r.summary() for name, r in results.items()}),
    ]
    return FigureResult(
        figure_id=figure_id,
        title=title,
        report="\n".join(report_parts),
        series={"delay": delay, "passenger": passenger, "taxi": taxi},
        summaries={name: r.summary() for name, r in results.items()},
    )


def fig4(scale: ExperimentScale) -> FigureResult:
    """Fig. 4: non-sharing performance in the New York trace."""
    return _cdf_figure("fig4", "Fig. 4 — non-sharing, New York", "new-york", NONSHARING_ALGORITHMS, scale)


def fig5(scale: ExperimentScale) -> FigureResult:
    """Fig. 5: non-sharing performance in the Boston trace."""
    return _cdf_figure("fig5", "Fig. 5 — non-sharing, Boston", "boston", NONSHARING_ALGORITHMS, scale)


def fig8(scale: ExperimentScale) -> FigureResult:
    """Fig. 8: sharing performance in the New York trace."""
    return _cdf_figure("fig8", "Fig. 8 — sharing, New York", "new-york", SHARING_ALGORITHMS, scale)


def fig9(scale: ExperimentScale) -> FigureResult:
    """Fig. 9: sharing performance in the Boston trace."""
    return _cdf_figure("fig9", "Fig. 9 — sharing, Boston", "boston", SHARING_ALGORITHMS, scale)


#: Paper-scale fleet sizes swept in Fig. 6 (Boston, 200 is the default).
FIG6_TAXI_COUNTS = (100, 150, 200, 250, 300)


def fig6(scale: ExperimentScale) -> FigureResult:
    """Fig. 6: Boston non-sharing averages under different fleet sizes."""
    profile = profile_by_name("boston")
    sweep = run_taxi_sweep(profile, NONSHARING_ALGORITHMS, FIG6_TAXI_COUNTS, scale)
    metrics = (
        ("mean_dispatch_delay_min", "(a) average dispatch delay (min)"),
        ("mean_passenger_dissatisfaction", "(b) average passenger dissatisfaction (km)"),
        ("mean_taxi_dissatisfaction", "(c) average taxi dissatisfaction (km)"),
    )
    algorithms = list(next(iter(sweep.values())))
    parts = ["== Fig. 6 — non-sharing vs number of taxis, Boston =="]
    series: dict = {}
    for key, caption in metrics:
        rows = []
        for count in FIG6_TAXI_COUNTS:
            rows.append([count] + [sweep[count][name].summary()[key] for name in algorithms])
        series[key] = {
            name: [sweep[count][name].summary()[key] for count in FIG6_TAXI_COUNTS]
            for name in algorithms
        }
        parts += ["", caption, format_table(["taxis"] + algorithms, rows)]
    return FigureResult(
        figure_id="fig6",
        title="Fig. 6 — non-sharing vs number of taxis, Boston",
        report="\n".join(parts),
        series=series,
        summaries={
            f"{name}@{count}": sweep[count][name].summary()
            for count in FIG6_TAXI_COUNTS
            for name in algorithms
        },
    )


def fig7(scale: ExperimentScale) -> FigureResult:
    """Fig. 7: Boston non-sharing averages across the clock."""
    profile = profile_by_name("boston")
    results = run_city_experiment(profile, NONSHARING_ALGORITHMS, scale)
    hourly = {name: hourly_averages(result) for name, result in results.items()}
    metrics = (
        ("mean_dispatch_delay_min", "(a) average dispatch delay (min)"),
        ("mean_passenger_dissatisfaction", "(b) average passenger dissatisfaction (km)"),
        ("mean_taxi_dissatisfaction", "(c) average taxi dissatisfaction (km)"),
    )
    algorithms = list(results)
    parts = ["== Fig. 7 — non-sharing vs clock time, Boston =="]
    series: dict = {}
    for key, caption in metrics:
        rows = [
            [f"{hour:02d}h"] + [hourly[name][hour][key] for name in algorithms]
            for hour in range(24)
        ]
        series[key] = {name: [hourly[name][h][key] for h in range(24)] for name in algorithms}
        parts += ["", caption, format_table(["hour"] + algorithms, rows)]
    return FigureResult(
        figure_id="fig7",
        title="Fig. 7 — non-sharing vs clock time, Boston",
        report="\n".join(parts),
        series=series,
        summaries={name: r.summary() for name, r in results.items()},
    )


#: Which city trace backs each figure (fig6/fig7 are Boston sweeps).
FIGURE_CITIES: dict[str, str] = {
    "fig4": "new-york",
    "fig5": "boston",
    "fig6": "boston",
    "fig7": "boston",
    "fig8": "new-york",
    "fig9": "boston",
}

FIGURES: dict[str, Callable[[ExperimentScale], FigureResult]] = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


def run_figure(figure_id: str, scale: ExperimentScale | None = None) -> FigureResult:
    """Run one figure harness by id ('fig4' … 'fig9')."""
    key = figure_id.strip().lower()
    if key not in FIGURES:
        raise ExperimentError(f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}")
    return FIGURES[key](scale if scale is not None else ExperimentScale())
