"""Experiment runners: one simulated city-day per algorithm.

These functions are the shared engine behind the per-figure harnesses in
:mod:`repro.experiments.figures`, the ``benchmarks/`` suite, and the CLI.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.config import DispatchConfig, SimulationConfig
from repro.core.errors import ExperimentError, TransientFaultError
from repro.core.types import PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher
from repro.dispatch.nonsharing import (
    GreedyNearestDispatcher,
    MinCostDispatcher,
    MinimaxDispatcher,
    NSTDDispatcher,
)
from repro.dispatch.sharing import (
    ILPDispatcher,
    RAIIDispatcher,
    SARPDispatcher,
    STDDispatcher,
)
from repro.geometry.distance import DistanceOracle, EuclideanDistance
from repro.resilience.faults import FaultPlan, maybe_crash_worker
from repro.resilience.ladder import ResiliencePolicy
from repro.simulation.engine import SimulationResult, Simulator
from repro.trace.profiles import CityProfile
from repro.trace.synthetic import SyntheticTraceGenerator
from repro.experiments.settings import ExperimentScale, city_simulation_config

__all__ = [
    "make_dispatcher",
    "build_workload",
    "run_city_experiment",
    "run_taxi_sweep",
]

logger = logging.getLogger(__name__)

_SECONDS_PER_HOUR = 3600.0

#: First retry delay for transient-fault cell retries; doubles per attempt.
#: Module-level so tests can monkeypatch the sleep away.
_BACKOFF_BASE_S = 0.05
_sleep: Callable[[float], None] = time.sleep  # repro-lint: disable=REP001 backoff pacing between cell retries; tests and chaos runs monkeypatch it away

#: Cell-level retries on :class:`TransientFaultError` when no resilience
#: policy supplies ``transient_retries``.
_DEFAULT_CELL_RETRIES = 2


def make_dispatcher(
    name: str,
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    pairing_radius_km: float | None = None,
) -> Dispatcher:
    """Instantiate any of the ten evaluated algorithms by paper name."""
    key = name.strip().upper()
    if key == "NSTD-P":
        return NSTDDispatcher(oracle, config, optimize_for="passenger")
    if key == "NSTD-T":
        return NSTDDispatcher(oracle, config, optimize_for="taxi")
    if key == "NSTD-M":
        return NSTDDispatcher(oracle, config, optimize_for="median")
    if key == "GREEDY":
        return GreedyNearestDispatcher(oracle, config)
    if key == "MCBM":
        return MinCostDispatcher(oracle, config)
    if key == "MMCM":
        return MinimaxDispatcher(oracle, config)
    radius = pairing_radius_km if pairing_radius_km is not None else 2.0 * config.theta_km
    if key == "STD-P":
        return STDDispatcher(oracle, config, optimize_for="passenger", pairing_radius_km=radius)
    if key == "STD-T":
        return STDDispatcher(oracle, config, optimize_for="taxi", pairing_radius_km=radius)
    if key == "RAII":
        return RAIIDispatcher(oracle, config)
    if key == "SARP":
        return SARPDispatcher(oracle, config)
    if key == "ILP":
        return ILPDispatcher(oracle, config, pairing_radius_km=radius)
    raise ExperimentError(f"unknown algorithm {name!r}")


def build_workload(
    profile: CityProfile, scale: ExperimentScale
) -> tuple[list[Taxi], list[PassengerRequest]]:
    """A scaled fleet and request trace for one city-day (deterministic)."""
    scaled = profile.scaled(scale.factor)
    request_gen = SyntheticTraceGenerator(scaled, seed=scale.seed)
    if scale.hours is None:
        requests = request_gen.requests_for_day()
    else:
        start, end = scale.hours
        window_share = _window_demand_share(scaled, start, end)
        n = max(1, round(scaled.daily_requests * window_share))
        requests = request_gen.requests_for_window(
            start * _SECONDS_PER_HOUR, end * _SECONDS_PER_HOUR, n
        )
    fleet = SyntheticTraceGenerator(scaled, seed=scale.seed + 7919).fleet()
    return fleet, requests


def _window_demand_share(profile: CityProfile, start_h: float, end_h: float) -> float:
    weights = profile.normalized_hourly_weights
    share = 0.0
    for hour in range(24):
        overlap = max(0.0, min(end_h, hour + 1) - max(start_h, hour))
        share += weights[hour] * overlap
    return share


def _cell_key(profile: CityProfile, name: str) -> str:
    """Unique, deterministic id for one (profile, fleet size, algorithm) cell."""
    return f"{profile.name}:{profile.n_taxis}:{name}"


def _run_experiment_cell(
    profile: CityProfile,
    name: str,
    scale: ExperimentScale,
    oracle: DistanceOracle | None,
    sim_config: SimulationConfig | None,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
    attempt: int = 0,
) -> tuple[str, SimulationResult]:
    """One (profile, algorithm) cell, self-contained and picklable.

    Everything is rederived deterministically from the arguments —
    workload from the profile and scale's seed, configuration from the
    scaled profile — so a cell produces the identical
    :class:`SimulationResult` whether it runs in this process or in a
    worker (wall-clock telemetry aside).

    ``faults`` injects a deterministic fault schedule derived from
    (plan, cell, attempt): the distance oracle is wrapped, crash-listed
    algorithms kill their *worker process* (never the parent), and any
    supplied ``resilience`` policy is bound to the cell's injector so
    its virtual clock drives the frame budgets.  Without a policy,
    transient faults escape the cell and are retried by
    :func:`_run_cell_with_recovery` at the next attempt number.
    """
    if faults is not None:
        maybe_crash_worker(faults, name)
    oracle = oracle if oracle is not None else EuclideanDistance()
    policy = resilience
    if faults is not None:
        injector = faults.build_injector(_cell_key(profile, name), attempt)
        oracle = injector.wrap(oracle)
        if policy is not None:
            policy = policy.with_injector(injector)
    if sim_config is None:
        sim_config = city_simulation_config(profile.scaled(scale.factor))
    fleet, requests = build_workload(profile, scale)
    dispatcher = make_dispatcher(name, oracle, sim_config.dispatch)
    simulator = Simulator(dispatcher, oracle, sim_config, resilience=policy)
    return dispatcher.name, simulator.run(fleet, requests)


def _run_cell_with_recovery(
    profile: CityProfile,
    name: str,
    scale: ExperimentScale,
    oracle: DistanceOracle | None,
    sim_config: SimulationConfig | None,
    faults: FaultPlan | None,
    resilience: ResiliencePolicy | None,
    *,
    first_attempt: int = 0,
) -> tuple[str, SimulationResult]:
    """Run one cell with retry + exponential backoff on transient faults.

    Attempt numbers vary the injector's fault schedule, so a cell whose
    plan fails its first N attempts deterministically succeeds on attempt
    N — the serial twin of the parallel path's retry-after-future-failure,
    which starts at ``first_attempt=1``.
    """
    retries = (
        resilience.transient_retries if resilience is not None else _DEFAULT_CELL_RETRIES
    )
    last: TransientFaultError | None = None
    for offset in range(retries + 1):
        attempt = first_attempt + offset
        try:
            return _run_experiment_cell(
                profile, name, scale, oracle, sim_config, faults, resilience, attempt
            )
        except TransientFaultError as exc:
            last = exc
            if offset == retries:
                break
            delay = _BACKOFF_BASE_S * (2**offset)
            logger.warning(
                "cell %s attempt %d hit a transient fault (%s); retrying in %.2fs",
                _cell_key(profile, name),
                attempt,
                exc,
                delay,
            )
            _sleep(delay)
    raise ExperimentError(
        f"cell {_cell_key(profile, name)} failed {retries + 1} attempts "
        f"(last fault: {last})"
    ) from last


def run_city_experiment(
    profile: CityProfile,
    algorithms: Sequence[str],
    scale: ExperimentScale,
    *,
    oracle: DistanceOracle | None = None,
    sim_config: SimulationConfig | None = None,
    workers: int = 1,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> dict[str, SimulationResult]:
    """Simulate one city-day under every requested algorithm.

    All algorithms see the identical fleet and trace, so differences in
    the output metrics are attributable to the dispatch policy alone.

    ``workers`` > 1 runs the algorithms in a process pool.  Each worker
    rebuilds its cell deterministically from the same seeds, so the
    returned results are identical to a serial run (the parallel-sweep
    test asserts this); result order follows ``algorithms`` either way.

    ``faults``/``resilience`` thread the chaos-testing layer through
    every cell.  Failures recover rather than abort: a cell that raises
    :class:`TransientFaultError` is retried (with exponential backoff
    and a fresh attempt-derived fault schedule), and a worker crash that
    breaks the pool re-runs every unfinished cell serially in the parent
    process.
    """
    if workers > 1 and len(algorithms) > 1:
        completed: dict[str, tuple[str, SimulationResult]] = {}
        with ProcessPoolExecutor(max_workers=min(workers, len(algorithms))) as pool:
            futures = [
                (
                    name,
                    pool.submit(
                        _run_experiment_cell,
                        profile,
                        name,
                        scale,
                        oracle,
                        sim_config,
                        faults,
                        resilience,
                        0,
                    ),
                )
                for name in algorithms
            ]
            for name, future in futures:
                try:
                    completed[name] = future.result()
                except TransientFaultError as exc:
                    logger.warning(
                        "parallel cell %s hit a transient fault (%s); retrying serially",
                        _cell_key(profile, name),
                        exc,
                    )
                    completed[name] = _run_cell_with_recovery(
                        profile, name, scale, oracle, sim_config, faults, resilience,
                        first_attempt=1,
                    )
                except BrokenProcessPool:
                    logger.warning(
                        "process pool broke on cell %s; recovering serially",
                        _cell_key(profile, name),
                    )
                    completed[name] = _run_cell_with_recovery(
                        profile, name, scale, oracle, sim_config, faults, resilience
                    )
        return {completed[name][0]: completed[name][1] for name in algorithms}

    oracle = oracle if oracle is not None else EuclideanDistance()
    if sim_config is None:
        # Configure against the *scaled* profile so θ, the thresholds and
        # the taxi speed pick up the dynamic-similarity space factor.
        sim_config = city_simulation_config(profile.scaled(scale.factor))
    results: dict[str, SimulationResult] = {}
    if faults is None and resilience is None:
        # The fault-free fast path shares one workload build across all
        # algorithms, exactly as before the resilience layer existed.
        fleet, requests = build_workload(profile, scale)
        for name in algorithms:
            dispatcher = make_dispatcher(name, oracle, sim_config.dispatch)
            simulator = Simulator(dispatcher, oracle, sim_config)
            results[dispatcher.name] = simulator.run(fleet, requests)
        return results
    for name in algorithms:
        dispatcher_name, result = _run_cell_with_recovery(
            profile, name, scale, oracle, sim_config, faults, resilience
        )
        results[dispatcher_name] = result
    return results


def run_taxi_sweep(
    profile: CityProfile,
    algorithms: Sequence[str],
    taxi_counts: Sequence[int],
    scale: ExperimentScale,
    *,
    oracle: DistanceOracle | None = None,
    sim_config: SimulationConfig | None = None,
    workers: int = 1,
    faults: FaultPlan | None = None,
    resilience: ResiliencePolicy | None = None,
) -> dict[int, dict[str, SimulationResult]]:
    """Fig. 6's sweep: same trace, varying fleet size.

    ``taxi_counts`` are paper-scale fleet sizes; they are scaled by the
    experiment factor alongside the demand.

    ``workers`` > 1 fans the full (fleet size × algorithm) grid out over
    a process pool; each cell is deterministic in its arguments, so the
    sweep's results are identical to the serial run — including under
    fault injection, where transient failures retry with the same
    attempt-derived schedules either way and a broken pool falls back to
    serial re-runs of whatever hadn't finished.
    """
    if workers > 1:
        cells = [(count, name) for count in taxi_counts for name in algorithms]
        if len(cells) > 1:
            results: dict[int, dict[str, SimulationResult]] = {
                count: {} for count in taxi_counts
            }
            with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
                futures = [
                    (
                        count,
                        name,
                        pool.submit(
                            _run_experiment_cell,
                            profile.with_taxis(count),
                            name,
                            scale,
                            oracle,
                            sim_config,
                            faults,
                            resilience,
                            0,
                        ),
                    )
                    for count, name in cells
                ]
                for count, name, future in futures:
                    swept = profile.with_taxis(count)
                    try:
                        dispatcher_name, result = future.result()
                    except TransientFaultError as exc:
                        logger.warning(
                            "sweep cell %s hit a transient fault (%s); retrying serially",
                            _cell_key(swept, name),
                            exc,
                        )
                        dispatcher_name, result = _run_cell_with_recovery(
                            swept, name, scale, oracle, sim_config, faults, resilience,
                            first_attempt=1,
                        )
                    except BrokenProcessPool:
                        logger.warning(
                            "process pool broke on sweep cell %s; recovering serially",
                            _cell_key(swept, name),
                        )
                        dispatcher_name, result = _run_cell_with_recovery(
                            swept, name, scale, oracle, sim_config, faults, resilience
                        )
                    results[count][dispatcher_name] = result
            return results

    oracle = oracle if oracle is not None else EuclideanDistance()
    results = {}
    for count in taxi_counts:
        swept = profile.with_taxis(count)
        # sim_config=None lets each run derive its configuration from the
        # scaled profile (dynamic-similarity speed and thresholds).
        results[count] = run_city_experiment(
            swept,
            algorithms,
            scale,
            oracle=oracle,
            sim_config=sim_config,
            faults=faults,
            resilience=resilience,
        )
    return results
