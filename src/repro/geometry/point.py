"""Planar points for the city model.

The paper models the city as a Euclidean surface; we use kilometre-scaled
planar coordinates so every distance the algorithms consume is directly in
kilometres (the paper's dissatisfaction unit).  :class:`Point` is a frozen
dataclass so points are hashable and safe to share between requests,
taxis, and routes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point", "ORIGIN"]


@dataclass(frozen=True, slots=True)
class Point:
    """A location on the planar city surface, in kilometres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 (grid-street) distance to ``other`` in kilometres."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translate(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)`` kilometres."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The ``(x, y)`` coordinate pair."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


ORIGIN = Point(0.0, 0.0)
