"""A uniform-grid spatial index.

The Greedy baseline needs "the nearest idle taxi" and RAII retrieves
candidate taxis near a pickup through a spatial index [7].  A uniform
grid with ring-expansion queries is simple, has O(1) expected insert and
remove, and is fast at city scale, which is exactly what a per-frame
dispatcher needs (the index is rebuilt or mutated every frame).

Items are stored by an opaque hashable key with an associated point, so
the index can hold taxi ids, request ids, or anything else.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from repro.geometry.distance import DistanceOracle, EuclideanDistance
from repro.geometry.point import Point

__all__ = [
    "GridSpatialIndex",
    "suggest_cell_size",
    "grid_cells",
    "pack_cell_keys",
    "cell_reach",
]

#: Packed cell coordinates live in a signed 32-bit lane of the 64-bit
#: key; anything outside is a degenerate geometry (coordinates billions
#: of kilometres from the origin) the packers refuse rather than wrap.
_CELL_LIMIT = np.int64(1) << 31


def grid_cells(xy: np.ndarray, cell_km: float) -> np.ndarray:
    """Vectorized grid-cell coordinates of ``(n, 2)`` planar points.

    The same floor-division convention as
    :meth:`GridSpatialIndex._cell_of` — ``floor(coordinate / cell_km)``
    per axis — so reach bounds derived for the object index
    (:func:`cell_reach`) transfer verbatim to these arrays.

    Raises ``ValueError`` on non-finite coordinates or cells outside the
    packable 32-bit range; callers treating the grid as an optimization
    (the sharding layer) catch this and fall back to one global bucket.
    """
    if cell_km <= 0.0 or not math.isfinite(cell_km):
        raise ValueError(f"cell_km must be positive and finite, got {cell_km}")
    pts = np.asarray(xy, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) coordinate array, got shape {pts.shape}")
    cells = np.floor_divide(pts, cell_km)
    if not bool(np.all(np.isfinite(cells))):
        raise ValueError("non-finite coordinates cannot be bucketed")
    out = cells.astype(np.int64)
    if bool(np.any(np.abs(out) >= _CELL_LIMIT)):
        raise ValueError("cell coordinates overflow the packable 32-bit range")
    return out


def pack_cell_keys(cells: np.ndarray) -> np.ndarray:
    """Pack ``(n, 2)`` int64 cell coordinates into one uint64 key each.

    The key is ``(cx + 2^31) << 32 | (cy + 2^31)``: a bijection on the
    range :func:`grid_cells` guarantees, monotone in ``(cx, cy)``
    lexicographic order, so sorted keys admit ``searchsorted`` joins.
    """
    cell_arr = np.asarray(cells, dtype=np.int64)
    shifted = (cell_arr + _CELL_LIMIT).astype(np.uint64)
    return (shifted[:, 0] << np.uint64(32)) | shifted[:, 1]


def cell_reach(radius_km: np.ndarray, cell_km: float) -> np.ndarray:
    """Per-radius Chebyshev cell reach, as :meth:`GridSpatialIndex.within`
    computes it: ``floor(radius / cell) + 2``.

    Any point within ``radius_km`` (under a metric dominating L∞) of a
    query point lies in a cell at Chebyshev cell-distance at most
    ``floor(radius/cell) + 1``; the extra ring absorbs floating-point
    division slop, exactly as the object index's queries do.
    """
    radii = np.asarray(radius_km, dtype=np.float64)
    return np.floor_divide(radii, cell_km).astype(np.int64) + 2


def suggest_cell_size(points: Iterable[Point], *, floor_km: float = 0.25) -> float:
    """A workable grid cell size for an indexed population.

    Targets roughly one item per cell (``span / sqrt(n)``), floored so a
    near-degenerate population (one point, or all points coincident)
    does not shatter the index into microscopic cells.
    """
    pts = list(points)
    if not pts:
        return max(floor_km, 1e-6)
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1e-6)
    return max(span / max(len(pts) ** 0.5, 1.0), floor_km)


class GridSpatialIndex:
    """Uniform-grid index over planar points.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell in kilometres.  Query cost degrades
        gracefully for any positive value; pick roughly the median
        nearest-neighbour distance of the indexed population.
    oracle:
        Distance oracle used to rank candidates.  Ring expansion uses the
        grid (L-infinity) geometry for candidate generation, which is a
        superset of the Euclidean ball, so results are exact for any
        metric bounded below by a constant times L-infinity distance
        (Euclidean and Manhattan both qualify).
    """

    def __init__(self, cell_size: float = 1.0, oracle: DistanceOracle | None = None):
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._oracle = oracle if oracle is not None else EuclideanDistance()
        self._cells: dict[tuple[int, int], set[Hashable]] = defaultdict(set)
        self._points: dict[Hashable, Point] = {}

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._points

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._points)

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (math.floor(point.x / self._cell_size), math.floor(point.y / self._cell_size))

    def insert(self, key: Hashable, point: Point) -> None:
        """Insert ``key`` at ``point``; re-inserting an existing key moves it."""
        if key in self._points:
            self.remove(key)
        self._points[key] = point
        self._cells[self._cell_of(point)].add(key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        point = self._points.pop(key)
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        bucket.discard(key)
        if not bucket:
            del self._cells[cell]

    def move(self, key: Hashable, point: Point) -> None:
        """Update ``key``'s location; raises ``KeyError`` if absent."""
        if key not in self._points:
            raise KeyError(key)
        self.insert(key, point)

    def point_of(self, key: Hashable) -> Point:
        """The stored location of ``key``."""
        return self._points[key]

    def bulk_load(self, items: Iterable[tuple[Hashable, Point]]) -> None:
        """Insert many ``(key, point)`` pairs."""
        for key, point in items:
            self.insert(key, point)

    def clear(self) -> None:
        self._cells.clear()
        self._points.clear()

    def _occupied_by_distance(self, center: tuple[int, int]) -> list[tuple[int, tuple[int, int]]]:
        """Occupied cells sorted by Chebyshev cell-distance from ``center``.

        Every point in a cell at Chebyshev cell-distance ``c ≥ 1`` is at
        least ``(c − 1)·cell_size`` away in L∞ (hence in any metric that
        dominates L∞, such as Euclidean or Manhattan), which gives the
        exact early-exit bound used by :meth:`nearest` and
        :meth:`within`.  Scanning occupied cells directly — instead of
        expanding empty rings — keeps queries O(cells·log cells) even
        when the query point is arbitrarily far from all items.
        """
        cx, cy = center
        return sorted(
            (max(abs(x - cx), abs(y - cy)), (x, y)) for (x, y) in self._cells
        )

    def _lower_bound_km(self, cheb: int) -> float:
        return max(0, cheb - 1) * self._cell_size

    def nearest(self, point: Point, k: int = 1) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items to ``point`` as ``(key, distance)`` pairs.

        Results are sorted by distance (ties broken by key repr for
        determinism).  Returns fewer than ``k`` pairs when the index holds
        fewer items.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._points:
            return []
        center = self._cell_of(point)
        found: list[tuple[float, str, Hashable]] = []
        kth = math.inf
        for cheb, cell in self._occupied_by_distance(center):
            if len(found) >= k and self._lower_bound_km(cheb) > kth:
                break
            for key in self._cells[cell]:
                dist = self._oracle.distance(point, self._points[key])
                found.append((dist, repr(key), key))
            if len(found) >= k:
                found.sort()
                kth = found[k - 1][0]
        found.sort()
        return [(key, dist) for dist, _, key in found[:k]]

    def box_candidates(self, point: Point, radius_km: float) -> list[Hashable]:
        """Unfiltered candidate keys for a ``within`` query: every key in
        a cell intersecting the L-infinity box of ``radius_km`` around
        ``point``.

        A strict superset of ``within(point, radius_km)`` keys (for
        oracles dominating L-infinity), with no distance evaluation and
        no ordering — bulk callers such as the pruned preference engine
        gather candidates for many queries and filter the exact
        distances in one vectorized pass.
        """
        if radius_km < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius_km}")
        if not self._points:
            return []
        if not math.isfinite(radius_km):
            return list(self._points)
        cx, cy = self._cell_of(point)
        reach = int(math.floor(radius_km / self._cell_size)) + 2
        out: list[Hashable] = []
        if (2 * reach + 1) ** 2 < len(self._cells):
            for x in range(cx - reach, cx + reach + 1):
                for y in range(cy - reach, cy + reach + 1):
                    bucket = self._cells.get((x, y))
                    if bucket:
                        out.extend(bucket)
        else:
            for (x, y), bucket in self._cells.items():
                if abs(x - cx) <= reach and abs(y - cy) <= reach:
                    out.extend(bucket)
        return out

    def within(self, point: Point, radius_km: float) -> list[tuple[Hashable, float]]:
        """All items within ``radius_km`` of ``point``, sorted by distance.

        The boundary is inclusive (``dist <= radius_km``) — the candidate
        -pruning invariant the preference builder relies on: a partner at
        exactly the acceptance threshold is never dropped.
        """
        if radius_km < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius_km}")
        center = self._cell_of(point)
        found: list[tuple[float, str, Hashable]] = []
        # A qualifying item lies within L-infinity ``radius_km`` of the
        # query (the oracle dominates L-infinity), i.e. in a cell at
        # Chebyshev cell-distance <= floor(radius/cell) + 1; the extra
        # ring (+2 total) absorbs floating-point division slop.  When
        # that box is smaller than the occupied-cell list, enumerating it
        # directly beats sorting every occupied cell by distance.
        if math.isfinite(radius_km):
            reach = int(math.floor(radius_km / self._cell_size)) + 2
            box_cells = (2 * reach + 1) ** 2
            if box_cells < len(self._cells):
                cx, cy = center
                for x in range(cx - reach, cx + reach + 1):
                    for y in range(cy - reach, cy + reach + 1):
                        bucket = self._cells.get((x, y))
                        if not bucket:
                            continue
                        for key in bucket:
                            dist = self._oracle.distance(point, self._points[key])
                            if dist <= radius_km:
                                found.append((dist, repr(key), key))
                found.sort()
                return [(key, dist) for dist, _, key in found]
        for cheb, cell in self._occupied_by_distance(center):
            if self._lower_bound_km(cheb) > radius_km:
                break
            for key in self._cells[cell]:
                dist = self._oracle.distance(point, self._points[key])
                if dist <= radius_km:
                    found.append((dist, repr(key), key))
        found.sort()
        return [(key, dist) for dist, _, key in found]
