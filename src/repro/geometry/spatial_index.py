"""A uniform-grid spatial index.

The Greedy baseline needs "the nearest idle taxi" and RAII retrieves
candidate taxis near a pickup through a spatial index [7].  A uniform
grid with ring-expansion queries is simple, has O(1) expected insert and
remove, and is fast at city scale, which is exactly what a per-frame
dispatcher needs (the index is rebuilt or mutated every frame).

Items are stored by an opaque hashable key with an associated point, so
the index can hold taxi ids, request ids, or anything else.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Hashable, Iterable, Iterator

from repro.geometry.distance import DistanceOracle, EuclideanDistance
from repro.geometry.point import Point

__all__ = ["GridSpatialIndex"]


class GridSpatialIndex:
    """Uniform-grid index over planar points.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell in kilometres.  Query cost degrades
        gracefully for any positive value; pick roughly the median
        nearest-neighbour distance of the indexed population.
    oracle:
        Distance oracle used to rank candidates.  Ring expansion uses the
        grid (L-infinity) geometry for candidate generation, which is a
        superset of the Euclidean ball, so results are exact for any
        metric bounded below by a constant times L-infinity distance
        (Euclidean and Manhattan both qualify).
    """

    def __init__(self, cell_size: float = 1.0, oracle: DistanceOracle | None = None):
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._oracle = oracle if oracle is not None else EuclideanDistance()
        self._cells: dict[tuple[int, int], set[Hashable]] = defaultdict(set)
        self._points: dict[Hashable, Point] = {}

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._points

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._points)

    @property
    def cell_size(self) -> float:
        return self._cell_size

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (math.floor(point.x / self._cell_size), math.floor(point.y / self._cell_size))

    def insert(self, key: Hashable, point: Point) -> None:
        """Insert ``key`` at ``point``; re-inserting an existing key moves it."""
        if key in self._points:
            self.remove(key)
        self._points[key] = point
        self._cells[self._cell_of(point)].add(key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises ``KeyError`` if absent."""
        point = self._points.pop(key)
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        bucket.discard(key)
        if not bucket:
            del self._cells[cell]

    def move(self, key: Hashable, point: Point) -> None:
        """Update ``key``'s location; raises ``KeyError`` if absent."""
        if key not in self._points:
            raise KeyError(key)
        self.insert(key, point)

    def point_of(self, key: Hashable) -> Point:
        """The stored location of ``key``."""
        return self._points[key]

    def bulk_load(self, items: Iterable[tuple[Hashable, Point]]) -> None:
        """Insert many ``(key, point)`` pairs."""
        for key, point in items:
            self.insert(key, point)

    def clear(self) -> None:
        self._cells.clear()
        self._points.clear()

    def _occupied_by_distance(self, center: tuple[int, int]) -> list[tuple[int, tuple[int, int]]]:
        """Occupied cells sorted by Chebyshev cell-distance from ``center``.

        Every point in a cell at Chebyshev cell-distance ``c ≥ 1`` is at
        least ``(c − 1)·cell_size`` away in L∞ (hence in any metric that
        dominates L∞, such as Euclidean or Manhattan), which gives the
        exact early-exit bound used by :meth:`nearest` and
        :meth:`within`.  Scanning occupied cells directly — instead of
        expanding empty rings — keeps queries O(cells·log cells) even
        when the query point is arbitrarily far from all items.
        """
        cx, cy = center
        return sorted(
            (max(abs(x - cx), abs(y - cy)), (x, y)) for (x, y) in self._cells
        )

    def _lower_bound_km(self, cheb: int) -> float:
        return max(0, cheb - 1) * self._cell_size

    def nearest(self, point: Point, k: int = 1) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items to ``point`` as ``(key, distance)`` pairs.

        Results are sorted by distance (ties broken by key repr for
        determinism).  Returns fewer than ``k`` pairs when the index holds
        fewer items.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not self._points:
            return []
        center = self._cell_of(point)
        found: list[tuple[float, str, Hashable]] = []
        kth = math.inf
        for cheb, cell in self._occupied_by_distance(center):
            if len(found) >= k and self._lower_bound_km(cheb) > kth:
                break
            for key in self._cells[cell]:
                dist = self._oracle.distance(point, self._points[key])
                found.append((dist, repr(key), key))
            if len(found) >= k:
                found.sort()
                kth = found[k - 1][0]
        found.sort()
        return [(key, dist) for dist, _, key in found[:k]]

    def within(self, point: Point, radius_km: float) -> list[tuple[Hashable, float]]:
        """All items within ``radius_km`` of ``point``, sorted by distance."""
        if radius_km < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius_km}")
        center = self._cell_of(point)
        found: list[tuple[float, str, Hashable]] = []
        for cheb, cell in self._occupied_by_distance(center):
            if self._lower_bound_km(cheb) > radius_km:
                break
            for key in self._cells[cell]:
                dist = self._oracle.distance(point, self._points[key])
                if dist <= radius_km:
                    found.append((dist, repr(key), key))
        found.sort()
        return [(key, dist) for dist, _, key in found]
