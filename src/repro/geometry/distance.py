"""Distance oracles.

All dispatch algorithms in the paper consume a single shortest-path
distance function ``D(a, b)`` (Section III-A).  We expose that as the
:class:`DistanceOracle` protocol so the same algorithm code runs against

* :class:`EuclideanDistance` — the paper's planar city surface (default),
* :class:`ManhattanDistance` — a grid-street approximation,
* :class:`HaversineDistance` — great-circle distance for raw lat/lon
  traces before projection, and
* :class:`repro.network.graph.RoadNetwork` — true shortest paths on a
  road graph (implemented in the network substrate).

Oracles must be symmetric in our usage only when the underlying metric
is; the algorithms never assume symmetry.

Next to the scalar protocol, every built-in oracle implements the batch
API of :mod:`repro.geometry.batch` (``pairwise`` / ``distances`` /
``paired``) with NumPy broadcasting.  The scalar protocol stays the
only *required* surface: consumers reach batch kernels through the
``oracle_*`` helpers, which fall back to a scalar loop for third-party
oracles.  Euclidean and Manhattan kernels honour the bit-exactness
contract (``batch_exact = True``); Haversine's NumPy trig differs from
CPython's libm by a few ulp, so it does not.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.geometry.batch import as_point_array, batch_kernels_exact, supports_batch
from repro.geometry.point import Point

__all__ = [
    "DistanceOracle",
    "EuclideanDistance",
    "ManhattanDistance",
    "HaversineDistance",
    "ScaledDistance",
    "EARTH_RADIUS_KM",
    "oracle_dominates_linf",
]

EARTH_RADIUS_KM = 6371.0088


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that measures the travel distance between two points, in km."""

    def distance(self, a: Point, b: Point) -> float:
        """Travel distance from ``a`` to ``b`` in kilometres."""
        ...


class _BroadcastKernelMixin:
    """Batch API via a broadcastable ``_kernel(ax, ay, bx, by)``.

    ``sources`` are the matrix rows — the first argument of the scalar
    ``D(source, target)`` reference (see the source-row convention in
    :mod:`repro.geometry.batch`).
    """

    _kernel: Callable[..., np.ndarray]

    def pairwise(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        a = as_point_array(sources)
        b = as_point_array(targets)
        return self._kernel(a[:, 0:1], a[:, 1:2], b[None, :, 0], b[None, :, 1])

    def distances(self, origin: Point, targets: Sequence[Point]) -> np.ndarray:
        b = as_point_array(targets)
        origin_arr = as_point_array([origin])
        return self._kernel(origin_arr[0, 0], origin_arr[0, 1], b[:, 0], b[:, 1])

    def paired(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        a = as_point_array(sources)
        b = as_point_array(targets)
        if a.shape[0] != b.shape[0]:
            raise ValueError(f"paired inputs differ in length: {a.shape[0]} vs {b.shape[0]}")
        return self._kernel(a[:, 0], a[:, 1], b[:, 0], b[:, 1])

    # -- packed entry points ----------------------------------------------
    # Trusted variants of pairwise/paired for per-frame hot loops: the
    # caller hands float64 ``(n, 2)`` arrays it already owns, so the
    # sequence conversion and finiteness validation of as_point_array are
    # skipped.  The kernel is the same object, so exactness guarantees
    # (``batch_exact``) carry over unchanged.

    def pairwise_packed(self, sources_xy: np.ndarray, targets_xy: np.ndarray) -> np.ndarray:
        """``pairwise`` over pre-packed ``(n, 2)`` float64 coordinates."""
        return self._kernel(
            sources_xy[:, 0:1], sources_xy[:, 1:2], targets_xy[None, :, 0], targets_xy[None, :, 1]
        )

    def paired_packed(self, sources_xy: np.ndarray, targets_xy: np.ndarray) -> np.ndarray:
        """``paired`` over pre-packed, equal-length coordinate arrays."""
        return self._kernel(
            sources_xy[:, 0], sources_xy[:, 1], targets_xy[:, 0], targets_xy[:, 1]
        )


class EuclideanDistance(_BroadcastKernelMixin):
    """Straight-line distance on the planar city surface.

    The scalar path computes ``sqrt(dx·dx + dy·dy)`` (not ``hypot``,
    whose CPython implementation is a correctly-rounded multi-step
    algorithm NumPy does not reproduce) so the vectorized kernel is
    bit-identical to it: IEEE 754 requires exact rounding for ``*``,
    ``+`` and ``sqrt``, making the two evaluation orders agree exactly.
    """

    batch_exact = True

    def distance(self, a: Point, b: Point) -> float:
        dx = a.x - b.x
        dy = a.y - b.y
        return math.sqrt(dx * dx + dy * dy)

    @staticmethod
    def _kernel(
        ax: np.ndarray | np.float64,
        ay: np.ndarray | np.float64,
        bx: np.ndarray | np.float64,
        by: np.ndarray | np.float64,
    ) -> np.ndarray:
        # In-place updates recycle the two difference buffers — the same
        # *, +, sqrt operations (so still bit-identical to the scalar
        # path), minus three full-size temporaries on the frame hot path.
        dx = ax - bx
        dy = ay - by
        dx *= dx
        dy *= dy
        dx += dy
        return np.sqrt(dx, out=dx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EuclideanDistance()"


class ManhattanDistance(_BroadcastKernelMixin):
    """L1 distance; a cheap stand-in for grid street networks."""

    batch_exact = True

    def distance(self, a: Point, b: Point) -> float:
        return abs(a.x - b.x) + abs(a.y - b.y)

    @staticmethod
    def _kernel(
        ax: np.ndarray | np.float64,
        ay: np.ndarray | np.float64,
        bx: np.ndarray | np.float64,
        by: np.ndarray | np.float64,
    ) -> np.ndarray:
        dx = ax - bx
        dy = ay - by
        np.abs(dx, out=dx)
        np.abs(dy, out=dy)
        dx += dy
        return dx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ManhattanDistance()"


class HaversineDistance(_BroadcastKernelMixin):
    """Great-circle distance, interpreting points as (lon, lat) degrees."""

    # NumPy's vectorized sin/cos/arcsin differ from libm by ~1 ulp, so the
    # kernel is numerically equivalent but not bit-identical to ``distance``.
    batch_exact = False

    def distance(self, a: Point, b: Point) -> float:
        lon1, lat1 = math.radians(a.x), math.radians(a.y)
        lon2, lat2 = math.radians(b.x), math.radians(b.y)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))

    @staticmethod
    def _kernel(
        ax: np.ndarray | np.float64,
        ay: np.ndarray | np.float64,
        bx: np.ndarray | np.float64,
        by: np.ndarray | np.float64,
    ) -> np.ndarray:
        lon1, lat1 = np.radians(ax), np.radians(ay)
        lon2, lat2 = np.radians(bx), np.radians(by)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
        return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HaversineDistance()"


class ScaledDistance:
    """Wraps another oracle and multiplies its output by a detour factor.

    Real road distances exceed straight-line distances by a roughly
    constant circuity factor (~1.3 for US cities); this wrapper lets
    experiments model that without a full road network.  Batch queries
    delegate to the base oracle's kernels (or its scalar loop) and scale
    the result, so the wrapper is exactly as batch-exact as its base.
    """

    def __init__(self, base: DistanceOracle, factor: float):
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self._base = base
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        return self._factor

    @property
    def batch_exact(self) -> bool:
        if supports_batch(self._base):
            return batch_kernels_exact(self._base)
        return True  # the scalar-loop fallback is scalar ``distance`` itself

    def distance(self, a: Point, b: Point) -> float:
        return self._factor * self._base.distance(a, b)

    def pairwise(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_pairwise

        return self._factor * oracle_pairwise(self._base, sources=sources, targets=targets)

    def distances(self, origin: Point, targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_distances

        return self._factor * oracle_distances(self._base, origin, targets=targets)

    def paired(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_paired

        return self._factor * oracle_paired(self._base, sources=sources, targets=targets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScaledDistance({self._base!r}, factor={self._factor})"


def oracle_dominates_linf(oracle: DistanceOracle) -> bool:
    """Whether ``oracle`` is bounded below by L∞ on the stored planar
    coordinates.

    This is the soundness condition for every grid-geometry shortcut in
    the package: cell-box candidate generation
    (:meth:`~repro.geometry.spatial_index.GridSpatialIndex.within`),
    preference-builder pruning, and the sharding layer's θ-ball
    component decomposition all reason "far apart in cell space ⇒ far
    apart under the oracle", which holds exactly when the metric
    dominates L∞.  Euclidean and Manhattan distance both do, as does any
    ``ScaledDistance`` *expansion* (factor ≥ 1) of a dominating metric;
    a contraction or an unknown third-party oracle does not, and callers
    must fall back to geometry-free behaviour.
    """
    base: DistanceOracle = oracle
    while isinstance(base, ScaledDistance):
        if base.factor < 1.0:
            return False
        base = base._base  # noqa: SLF001 - same-package structural check
    return isinstance(base, (EuclideanDistance, ManhattanDistance))
