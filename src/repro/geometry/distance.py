"""Distance oracles.

All dispatch algorithms in the paper consume a single shortest-path
distance function ``D(a, b)`` (Section III-A).  We expose that as the
:class:`DistanceOracle` protocol so the same algorithm code runs against

* :class:`EuclideanDistance` — the paper's planar city surface (default),
* :class:`ManhattanDistance` — a grid-street approximation,
* :class:`HaversineDistance` — great-circle distance for raw lat/lon
  traces before projection, and
* :class:`repro.network.graph.RoadNetwork` — true shortest paths on a
  road graph (implemented in the network substrate).

Oracles must be symmetric in our usage only when the underlying metric
is; the algorithms never assume symmetry.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from repro.geometry.point import Point

__all__ = [
    "DistanceOracle",
    "EuclideanDistance",
    "ManhattanDistance",
    "HaversineDistance",
    "ScaledDistance",
    "EARTH_RADIUS_KM",
]

EARTH_RADIUS_KM = 6371.0088


@runtime_checkable
class DistanceOracle(Protocol):
    """Anything that measures the travel distance between two points, in km."""

    def distance(self, a: Point, b: Point) -> float:
        """Travel distance from ``a`` to ``b`` in kilometres."""
        ...


class EuclideanDistance:
    """Straight-line distance on the planar city surface."""

    def distance(self, a: Point, b: Point) -> float:
        return math.hypot(a.x - b.x, a.y - b.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EuclideanDistance()"


class ManhattanDistance:
    """L1 distance; a cheap stand-in for grid street networks."""

    def distance(self, a: Point, b: Point) -> float:
        return abs(a.x - b.x) + abs(a.y - b.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ManhattanDistance()"


class HaversineDistance:
    """Great-circle distance, interpreting points as (lon, lat) degrees."""

    def distance(self, a: Point, b: Point) -> float:
        lon1, lat1 = math.radians(a.x), math.radians(a.y)
        lon2, lat2 = math.radians(b.x), math.radians(b.y)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HaversineDistance()"


class ScaledDistance:
    """Wraps another oracle and multiplies its output by a detour factor.

    Real road distances exceed straight-line distances by a roughly
    constant circuity factor (~1.3 for US cities); this wrapper lets
    experiments model that without a full road network.
    """

    def __init__(self, base: DistanceOracle, factor: float):
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self._base = base
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        return self._factor

    def distance(self, a: Point, b: Point) -> float:
        return self._factor * self._base.distance(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScaledDistance({self._base!r}, factor={self._factor})"
