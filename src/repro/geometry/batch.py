"""Batched distance kernels and the scalar-fallback contract.

A dispatch frame scores every (taxi, request) pair, so the frame hot
path is dominated by pairwise distance evaluation.  This module defines
the *batch* side of the oracle API:

* :class:`BatchDistanceOracle` — the optional protocol an oracle may
  implement next to ``distance(a, b)``: ``pairwise(sources, targets)``
  (full cross product), ``distances(origin, targets)`` (one-to-many)
  and ``paired(sources, targets)`` (elementwise, equal lengths), all
  returning float64 arrays of kilometres;
* generic helpers (:func:`oracle_pairwise`, :func:`oracle_distances`,
  :func:`oracle_paired`) that use the batch API when present and fall
  back to a scalar ``distance`` loop otherwise, so third-party oracles
  that only implement the scalar protocol keep working everywhere.

**Source-row convention.**  Batch operands are named, not positional:
``sources`` are the rows / first argument of the scalar reference
``D(source, target)`` and ``targets`` the columns.  In dispatch code
the sources are the *taxis* of ``D(taxi, pickup)``.  On an asymmetric
oracle (one-way road edges) swapping the two silently produces wrong
scores — the exact bug PR 1's review fixed — so the helpers take both
as keyword-only arguments and lint rule REP005 requires the keywords
at every ``pairwise``/``paired`` call site.

**Exactness contract.**  A batch kernel may be declared *exact* by
setting ``batch_exact = True`` on the oracle: every entry of a batch
result is then guaranteed bit-identical to the corresponding scalar
``distance`` call.  The built-in Euclidean/Manhattan kernels (and the
road network, which reuses the scalar snap + cached Dijkstra maps) are
exact; the Haversine kernel agrees only to a few ulp (NumPy's SIMD trig
is not CPython's libm) and is therefore *not* flagged exact.  Consumers
that must produce bit-identical results to their scalar reference (the
preference-table builder) only trust kernels flagged exact; everything
else still benefits from the vectorized masking/sorting around the
scalar fallback.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.geometry.point import Point

if TYPE_CHECKING:  # batch is imported by distance; annotation-only cycle
    from repro.geometry.distance import DistanceOracle

__all__ = [
    "BatchDistanceOracle",
    "as_point_array",
    "supports_batch",
    "batch_kernels_exact",
    "oracle_pairwise",
    "oracle_distances",
    "oracle_paired",
]


@runtime_checkable
class BatchDistanceOracle(Protocol):
    """The optional vectorized face of a distance oracle."""

    def distance(self, a: Point, b: Point) -> float: ...

    def pairwise(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        """The ``(len(sources), len(targets))`` matrix ``D(source, target)`` in km."""
        ...

    def distances(self, origin: Point, targets: Sequence[Point]) -> np.ndarray:
        """One-to-many distances as a ``(len(targets),)`` vector in km."""
        ...

    def paired(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        """Elementwise ``D(sources[i], targets[i])``; lengths must match."""
        ...


def as_point_array(points: Sequence[Point] | np.ndarray, *, check_finite: bool = True) -> np.ndarray:
    """Pack points into a float64 ``(n, 2)`` array.

    Accepts a sequence of :class:`Point` or an already-packed array.
    Non-finite coordinates raise ``ValueError`` (the batch kernels'
    NaN/inf guard): a silent NaN would otherwise corrupt every masked
    comparison downstream instead of failing at the source.
    """
    if isinstance(points, np.ndarray):
        array = np.asarray(points, dtype=np.float64)
    else:
        array = np.array([(p.x, p.y) for p in points], dtype=np.float64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"expected (n, 2) point array, got shape {array.shape}")
    if check_finite and not np.isfinite(array).all():
        raise ValueError("non-finite coordinate in batch distance input")
    return array


def supports_batch(oracle: object) -> bool:
    """Whether ``oracle`` implements the batch API."""
    return callable(getattr(oracle, "pairwise", None))


def batch_kernels_exact(oracle: object) -> bool:
    """Whether the oracle's batch kernels are bit-identical to its scalar
    ``distance`` (the exactness contract above)."""
    return bool(getattr(oracle, "batch_exact", False)) and supports_batch(oracle)


def _scalar_pairwise(
    oracle: "DistanceOracle", sources: Sequence[Point], targets: Sequence[Point]
) -> np.ndarray:
    out = np.empty((len(sources), len(targets)), dtype=np.float64)
    distance = oracle.distance
    for i, a in enumerate(sources):
        row = out[i]
        for j, b in enumerate(targets):
            row[j] = distance(a, b)
    return out


def oracle_pairwise(
    oracle: "DistanceOracle",
    *,
    sources: Sequence[Point],
    targets: Sequence[Point],
    exact: bool = False,
) -> np.ndarray:
    """``(len(sources), len(targets))`` matrix through the best available path.

    ``sources`` are the rows — the first argument of the scalar
    reference ``D(source, target)`` (taxis, in dispatch code).
    ``exact=True`` restricts the kernel path to oracles honouring the
    exactness contract; others fall back to the scalar loop (whose
    entries are scalar ``distance`` calls by construction).
    """
    if supports_batch(oracle) and (not exact or batch_kernels_exact(oracle)):
        # repro-lint: disable=REP005 generic delegation: third-party oracles may name their parameters differently
        return np.asarray(oracle.pairwise(sources, targets), dtype=np.float64)
    return _scalar_pairwise(oracle, sources, targets)


def oracle_distances(
    oracle: "DistanceOracle",
    origin: Point,
    *,
    targets: Sequence[Point],
    exact: bool = False,
) -> np.ndarray:
    """One-to-many distances with the same dispatch rule as
    :func:`oracle_pairwise`."""
    if callable(getattr(oracle, "distances", None)) and (
        not exact or batch_kernels_exact(oracle)
    ):
        return np.asarray(oracle.distances(origin, targets), dtype=np.float64)
    distance = oracle.distance
    return np.array([distance(origin, b) for b in targets], dtype=np.float64)


def oracle_paired(
    oracle: "DistanceOracle",
    *,
    sources: Sequence[Point],
    targets: Sequence[Point],
    exact: bool = False,
) -> np.ndarray:
    """Elementwise distances with the same dispatch rule as
    :func:`oracle_pairwise`; ``len(sources)`` must equal ``len(targets)``."""
    if len(sources) != len(targets):
        raise ValueError(f"paired inputs differ in length: {len(sources)} vs {len(targets)}")
    if callable(getattr(oracle, "paired", None)) and (not exact or batch_kernels_exact(oracle)):
        # repro-lint: disable=REP005 generic delegation: third-party oracles may name their parameters differently
        return np.asarray(oracle.paired(sources, targets), dtype=np.float64)
    distance = oracle.distance
    return np.array([distance(a, b) for a, b in zip(sources, targets)], dtype=np.float64)
