"""Geometry substrate: points, distance oracles, and a spatial index."""

from repro.geometry.distance import (
    EARTH_RADIUS_KM,
    DistanceOracle,
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    ScaledDistance,
)
from repro.geometry.point import ORIGIN, Point
from repro.geometry.spatial_index import GridSpatialIndex

__all__ = [
    "Point",
    "ORIGIN",
    "DistanceOracle",
    "EuclideanDistance",
    "ManhattanDistance",
    "HaversineDistance",
    "ScaledDistance",
    "GridSpatialIndex",
    "EARTH_RADIUS_KM",
]
