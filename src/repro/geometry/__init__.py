"""Geometry substrate: points, distance oracles, and a spatial index."""

from repro.geometry.batch import (
    BatchDistanceOracle,
    as_point_array,
    batch_kernels_exact,
    oracle_distances,
    oracle_paired,
    oracle_pairwise,
    supports_batch,
)
from repro.geometry.distance import (
    EARTH_RADIUS_KM,
    DistanceOracle,
    EuclideanDistance,
    HaversineDistance,
    ManhattanDistance,
    ScaledDistance,
    oracle_dominates_linf,
)
from repro.geometry.point import ORIGIN, Point
from repro.geometry.spatial_index import (
    GridSpatialIndex,
    cell_reach,
    grid_cells,
    pack_cell_keys,
    suggest_cell_size,
)

__all__ = [
    "Point",
    "ORIGIN",
    "DistanceOracle",
    "BatchDistanceOracle",
    "EuclideanDistance",
    "ManhattanDistance",
    "HaversineDistance",
    "ScaledDistance",
    "GridSpatialIndex",
    "suggest_cell_size",
    "grid_cells",
    "pack_cell_keys",
    "cell_reach",
    "oracle_dominates_linf",
    "EARTH_RADIUS_KM",
    "as_point_array",
    "supports_batch",
    "batch_kernels_exact",
    "oracle_pairwise",
    "oracle_distances",
    "oracle_paired",
]
