"""Selecting among stable matchings: passenger-optimal, taxi-optimal,
and company-revenue-optimal.

Property 2 of the paper: Algorithm 1 yields the *passenger-optimal*
(and simultaneously taxi-pessimal) stable matching.  Its mirror — the
*taxi-optimal* stable matching (NSTD-T) — is obtained two ways here:

* the **fast path**: deferred acceptance on the role-reversed table,
  which is proposer-optimal for taxis.  With dummy thresholds the
  matched sets coincide across all stable matchings (the rural-hospitals
  invariance behind Theorem 2), so this is exactly the matching
  Algorithm 2 would select for taxis;
* the **exact path**: enumerate all stable matchings (Algorithm 2) and
  pick the taxi-best one.  Used by tests to certify the fast path and by
  analyses that want the whole lattice anyway.

Section IV-D motivates a third selector: the company "can pick a stable
matching from all possible ones, such that the most money is made" —
the company takes a fixed percentage of each fare, so revenue is the
total trip distance of served requests.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.errors import MatchingError
from repro.core.types import PassengerRequest
from repro.geometry.distance import DistanceOracle
from repro.matching.arrays import PreferenceArrays
from repro.matching.deferred_acceptance import deferred_acceptance
from repro.matching.enumeration import all_stable_matchings
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching
from repro.resilience.budget import FrameBudget

__all__ = [
    "passenger_optimal",
    "taxi_optimal",
    "taxi_optimal_exact",
    "company_revenue",
    "company_optimal",
    "rank_profile",
]


def passenger_optimal(table: PreferenceTable | PreferenceArrays) -> Matching:
    """NSTD-P: the passenger-optimal stable matching (Algorithm 1).

    Accepts either preference representation; arrays run on the
    array-backed engine.
    """
    return deferred_acceptance(table)


def taxi_optimal(table: PreferenceTable | PreferenceArrays) -> Matching:
    """NSTD-T fast path: deferred acceptance with taxis proposing.

    Returns a matching in the original orientation (request → taxi).
    For :class:`~repro.matching.arrays.PreferenceArrays` the role swap
    is a zero-copy field relabeling, so the taxi-proposing run costs no
    more than the passenger-proposing one.
    """
    reversed_matching = deferred_acceptance(table.reversed())
    return Matching({proposer: reviewer for reviewer, proposer in reversed_matching.pairs})


def taxi_optimal_exact(
    table: PreferenceTable,
    *,
    limit: int | None = None,
    max_nodes: int | None = None,
    deadline: FrameBudget | None = None,
) -> Matching:
    """NSTD-T via the paper's route: enumerate with Algorithm 2, then pick
    the matching every taxi weakly prefers (the taxi-best lattice point).

    Selection minimizes the sum of taxi-side ranks; on the stable-matching
    lattice this is uniquely minimized by the taxi-optimal matching.

    ``max_nodes``/``deadline`` bound the enumeration (see
    :func:`~repro.matching.enumeration.all_stable_matchings`); when it
    truncates, the selection is over the anytime prefix, which always
    contains the passenger-optimal matching, so a valid stable matching
    is still returned.
    """
    matchings = all_stable_matchings(table, limit=limit, max_nodes=max_nodes, deadline=deadline)
    if not matchings:
        raise MatchingError("no stable matchings found")
    return min(matchings, key=lambda m: (_taxi_rank_sum(table, m), sorted(m.pairs)))


def _taxi_rank_sum(table: PreferenceTable, matching: Matching) -> int:
    total = 0
    for proposer_id, reviewer_id in matching.pairs:
        rank = table.reviewer_rank(reviewer_id, proposer_id)
        assert rank is not None
        total += rank
    return total


def company_revenue(
    matching: Matching,
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
) -> float:
    """Total fare-proportional revenue: sum of served trip distances (km)."""
    by_id = {r.request_id: r for r in requests}
    return sum(
        by_id[proposer_id].trip_distance(oracle)
        for proposer_id, _ in matching.pairs
        if proposer_id in by_id
    )


def company_optimal(
    table: PreferenceTable,
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    *,
    limit: int | None = None,
    objective: Callable[[Matching], float] | None = None,
) -> tuple[Matching, float]:
    """The stable matching maximizing the company's objective.

    By default the objective is :func:`company_revenue`.  Since every
    stable matching serves the same set of requests (Theorem 2 plus its
    taxi-side analogue), the default objective ties across the lattice —
    the function exists for custom objectives (e.g. revenue minus a
    deadhead-compensation cost) and returns the achieved value.
    """
    matchings = all_stable_matchings(table, limit=limit)
    if not matchings:
        raise MatchingError("no stable matchings found")
    if objective is None:
        score = lambda m: company_revenue(m, requests, oracle)  # noqa: E731
    else:
        score = objective
    best = max(matchings, key=lambda m: (score(m), sorted(m.pairs)))
    return best, score(best)


def rank_profile(table: PreferenceTable, matching: Matching) -> tuple[float, float]:
    """Mean proposer-side and reviewer-side ranks of the matched pairs.

    Useful to demonstrate the optimal/pessimal duality: the passenger-
    optimal matching minimizes the first component over the lattice and
    maximizes the second, and vice versa for the taxi-optimal one.
    """
    if matching.size == 0:
        return (0.0, 0.0)
    proposer_total = 0
    reviewer_total = 0
    for proposer_id, reviewer_id in matching.pairs:
        p_rank = table.proposer_rank(proposer_id, reviewer_id)
        r_rank = table.reviewer_rank(reviewer_id, proposer_id)
        assert p_rank is not None and r_rank is not None
        proposer_total += p_rank
        reviewer_total += r_rank
    return (proposer_total / matching.size, reviewer_total / matching.size)
