"""The :class:`Matching` value object.

A matching is a partial one-to-one map between proposers and reviewers;
entities absent from the map are matched to their dummy partner (i.e.
unserved / undispatched).  Matchings are immutable, hashable, and compare
by their pair set, which lets enumeration code deduplicate with a set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.errors import MatchingError

__all__ = ["Matching"]


class Matching:
    """An immutable proposer↔reviewer matching."""

    __slots__ = ("_by_proposer", "_by_reviewer", "_pairs")

    def __init__(self, pairs: Mapping[int, int] | Iterable[tuple[int, int]]):
        items = list(pairs.items()) if isinstance(pairs, Mapping) else list(pairs)
        by_proposer: dict[int, int] = {}
        by_reviewer: dict[int, int] = {}
        for proposer_id, reviewer_id in items:
            if proposer_id in by_proposer:
                raise MatchingError(f"proposer {proposer_id} matched twice")
            if reviewer_id in by_reviewer:
                raise MatchingError(f"reviewer {reviewer_id} matched twice")
            by_proposer[proposer_id] = reviewer_id
            by_reviewer[reviewer_id] = proposer_id
        self._by_proposer = by_proposer
        self._by_reviewer = by_reviewer
        self._pairs = frozenset(by_proposer.items())

    # -- queries ---------------------------------------------------------

    @property
    def pairs(self) -> frozenset[tuple[int, int]]:
        """The matched ``(proposer_id, reviewer_id)`` pairs."""
        return self._pairs

    @property
    def size(self) -> int:
        """Number of matched pairs."""
        return len(self._by_proposer)

    def reviewer_of(self, proposer_id: int) -> int | None:
        """The reviewer matched to ``proposer_id``; ``None`` means dummy."""
        return self._by_proposer.get(proposer_id)

    def proposer_of(self, reviewer_id: int) -> int | None:
        """The proposer matched to ``reviewer_id``; ``None`` means dummy."""
        return self._by_reviewer.get(reviewer_id)

    @property
    def matched_proposers(self) -> frozenset[int]:
        """Ids of proposers holding a (non-dummy) partner."""
        return frozenset(self._by_proposer)

    @property
    def matched_reviewers(self) -> frozenset[int]:
        """Ids of reviewers holding a (non-dummy) partner."""
        return frozenset(self._by_reviewer)

    def unmatched_proposers(self, proposer_ids: Iterable[int]) -> list[int]:
        """The given proposers left with the dummy, in input order."""
        return [p for p in proposer_ids if p not in self._by_proposer]

    def unmatched_reviewers(self, reviewer_ids: Iterable[int]) -> list[int]:
        """The given reviewers left with the dummy, in input order."""
        return [r for r in reviewer_ids if r not in self._by_reviewer]

    def as_dict(self) -> dict[int, int]:
        """A mutable copy of the proposer → reviewer map."""
        return dict(self._by_proposer)

    # -- mutation-by-copy --------------------------------------------------

    def with_pair(self, proposer_id: int, reviewer_id: int) -> "Matching":
        """A new matching with ``(proposer_id, reviewer_id)`` added; any
        existing partners of either side are released."""
        mapping = dict(self._by_proposer)
        old_partner = self._by_reviewer.get(reviewer_id)
        if old_partner is not None:
            del mapping[old_partner]
        mapping[proposer_id] = reviewer_id
        return Matching(mapping)

    def without_proposer(self, proposer_id: int) -> "Matching":
        """A new matching with ``proposer_id`` released to its dummy."""
        mapping = dict(self._by_proposer)
        mapping.pop(proposer_id, None)
        return Matching(mapping)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __len__(self) -> int:
        return len(self._by_proposer)

    def __iter__(self):
        return iter(sorted(self._by_proposer.items()))

    def __repr__(self) -> str:
        pairs = ", ".join(f"{p}->{r}" for p, r in sorted(self._by_proposer.items()))
        return f"Matching({{{pairs}}})"
