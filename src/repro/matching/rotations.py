"""Rotations: the classical structure underlying Algorithm 2.

In the stable marriage literature (Irving/Gusfield), the moves between
stable matchings are *rotations*: cyclic sequences
``ρ = (p_0, r_0), …, (p_{k−1}, r_{k−1})`` where each proposer's best
attainable alternative ``s_M(p_i)`` is exactly the next pair's reviewer.
Eliminating a rotation shifts every ``p_i`` to ``r_{i+1}``, moving one
step down the lattice; every stable matching is reachable by
eliminating an antichain-closed set of rotations.

This module implements rotation detection and elimination for
**complete, equal-sized markets** (the textbook setting — the paper's
Theorem 1 reduces the dummy-threshold market to it) and an
enumeration built on them.  It serves as an independent engine to
cross-validate the `BreakDispatch`-based Algorithm 2: both must produce
the identical lattice.
"""

from __future__ import annotations

from repro.core.errors import MatchingError
from repro.matching.deferred_acceptance import deferred_acceptance
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["Rotation", "exposed_rotations", "eliminate_rotation", "all_stable_matchings_by_rotations"]

Rotation = tuple[tuple[int, int], ...]


def _require_complete(table: PreferenceTable, matching: Matching) -> None:
    proposers = set(table.proposer_prefs)
    reviewers = set(table.reviewer_prefs)
    if len(proposers) != len(reviewers):
        raise MatchingError("rotation machinery needs equal-sized sides")
    for p, prefs in table.proposer_prefs.items():
        if set(prefs) != reviewers:
            raise MatchingError(f"proposer {p} does not rank every reviewer")
    for r, prefs in table.reviewer_prefs.items():
        if set(prefs) != proposers:
            raise MatchingError(f"reviewer {r} does not rank every proposer")
    if matching.matched_proposers != proposers:
        raise MatchingError("matching must be perfect for rotation analysis")


def _best_alternative(table: PreferenceTable, matching: Matching, proposer: int) -> int | None:
    """``s_M(p)``: the first reviewer below ``M(p)`` on p's list that
    strictly prefers ``p`` over its current partner."""
    current = matching.reviewer_of(proposer)
    assert current is not None
    prefs = table.proposer_prefs[proposer]
    start = table.proposer_rank(proposer, current)
    assert start is not None
    for reviewer in prefs[start + 1 :]:
        holder = matching.proposer_of(reviewer)
        assert holder is not None  # perfect matching
        if table.reviewer_prefers(reviewer, proposer, holder):
            return reviewer
    return None


def exposed_rotations(table: PreferenceTable, matching: Matching) -> list[Rotation]:
    """All rotations exposed in a stable matching of a complete market.

    Each rotation is a tuple of ``(proposer, reviewer)`` pairs in cycle
    order, normalized to start at its smallest proposer id.
    """
    _require_complete(table, matching)
    successor: dict[int, int] = {}
    for proposer in table.proposer_prefs:
        alternative = _best_alternative(table, matching, proposer)
        if alternative is not None:
            next_proposer = matching.proposer_of(alternative)
            assert next_proposer is not None
            successor[proposer] = next_proposer

    rotations: list[Rotation] = []
    seen: set[int] = set()
    for start in sorted(successor):
        if start in seen:
            continue
        # Walk the functional graph until a repeat; extract the cycle.
        path: list[int] = []
        index_of: dict[int, int] = {}
        node = start
        while node in successor and node not in index_of and node not in seen:
            index_of[node] = len(path)
            path.append(node)
            node = successor[node]
        seen.update(path)
        if node in index_of:
            cycle = path[index_of[node] :]
            pivot = cycle.index(min(cycle))
            ordered = cycle[pivot:] + cycle[:pivot]
            rotation = tuple(
                (p, matching.reviewer_of(p)) for p in ordered  # type: ignore[misc]
            )
            rotations.append(rotation)
    return sorted(rotations)


def eliminate_rotation(matching: Matching, rotation: Rotation) -> Matching:
    """The matching after shifting every ``p_i`` to ``r_{i+1}``."""
    if len(rotation) < 2:
        raise MatchingError("a rotation involves at least two pairs")
    pairs = matching.as_dict()
    k = len(rotation)
    for index, (proposer, reviewer) in enumerate(rotation):
        if pairs.get(proposer) != reviewer:
            raise MatchingError("rotation does not match the given matching")
        pairs[proposer] = rotation[(index + 1) % k][1]
    return Matching(pairs)


def all_stable_matchings_by_rotations(table: PreferenceTable) -> list[Matching]:
    """Enumerate the lattice by rotation elimination (complete markets).

    The proposer-optimal matching comes first; the rest follow in
    breadth-first elimination order, deduplicated.
    """
    optimal = deferred_acceptance(table)
    _require_complete(table, optimal)
    seen = {optimal}
    ordered = [optimal]
    frontier = [optimal]
    while frontier:
        next_frontier: list[Matching] = []
        for matching in frontier:
            for rotation in exposed_rotations(table, matching):
                produced = eliminate_rotation(matching, rotation)
                if produced not in seen:
                    seen.add(produced)
                    ordered.append(produced)
                    next_frontier.append(produced)
        frontier = next_frontier
    return ordered
