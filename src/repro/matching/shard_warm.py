"""Shard-aware warm frame solver: fused facts, keyed GS, adaptive strips.

This composes PR 6's warm-start churn machinery
(:mod:`repro.matching.warm_frame`) with the θ-ball component
decomposition of :mod:`repro.matching.sharding`, in one
allocation-lean pipeline.  Three ideas on top of the plain warm solver:

**Shard state needs no split/merge bookkeeping.**  The warm stability
theorem says the frame's entire edge set lives on the churn strips
(``new taxis × all requests`` ∪ ``retained taxis × new requests``) —
retained × retained pairs are mutually unacceptable, or they would have
blocked last frame's matching.  Shard labels are therefore recomputed
*fresh* on every decomposed frame from the current coordinates, and
per-shard work is derived from this frame's labels and this frame's
churn alone: a component that split or merged since the previous frame
simply produces different labels, with nothing carried across frames to
invalidate.  (Carried facts — coordinates, party, trip, seats, α — are
properties of frozen entities, not of shards.)

**Per-shard strips are a restriction, not a different edge set.**  A
cross-shard pair is beyond the acceptability radius by construction, so
scoring strips shard-by-shard discards only pairs the global masks
would discard anyway; the surviving edge set is identical, and the
canonical pack below orders it identically.  Shards with no churn on
the relevant side contribute no strip at all — the component-level form
of the stability theorem.  Because restriction only pays when churn is
spatially concentrated (many mixed components), the solver *probes*
every ``probe_interval`` frames: it decomposes, compares the restricted
pair count against the global strip count, and enables per-shard strips
only while the ratio stays under ``restrict_threshold``.  On a
one-giant-component geometry (the NYC benchmark — θ_pass is unbinding
and the driver radius covers the city) the probe keeps restriction off
and the decomposition runs ~1/64 frames, costing microseconds per frame
amortized.

**One canonical order, half the sort work.**  The cold pack sorts both
sides' preference lists; deferred acceptance only ever *walks* the
proposer lists, while reviewer lists are consulted solely to compare
two suitors.  The solver therefore packs just the proposer CSR (one
``np.lexsort`` by proposer row, then score, then partner id — the same
total ``(row, score, id)`` key as the cold lexsort, and a *total* order
because the partner id is unique within a row, so the CSR is
bit-identical no matter what order strips were emitted in) and replaces
the reviewer-side rank structure with one complex128 key per edge:
``reviewer_score + 1j·proposer_id``.  NumPy orders complex values
lexicographically (real, then imaginary), so a single ``np.minimum``
reduction over keys picks exactly the suitor the reviewer's
``(score, id)``-sorted list ranks best — the same winner, hence the
same matching, as the rank-based engine, round for round.  Ids ride in
the imaginary float64 lane, exact below 2^53; larger ids raise
:class:`~repro.core.errors.WarmStartError` and the frame re-runs cold.

Entity facts are carried as two fused matrices (``(R, 4)`` request
``x, y, party, trip`` and ``(T, 4)`` taxi ``x, y, seats, α``) so a
frame's retained-entity gather is one fancy-index per side.  Party and
seat counts are validated to the float-exact integer range on
extraction.  The identity index keeps only *previously unmatched*
entities: a previously matched entity that reappears is simply not
found and re-enters as new, which removes the matched-address
subtraction the plain solver performs every frame.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import WarmStartError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import as_point_array, batch_kernels_exact
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point
from repro.matching.arrays import NO_PARTNER
from repro.matching.incremental import IncrementalBuildStats
from repro.matching.result import Matching
from repro.matching.sharding import ShardDecomposition, frame_decomposition, shard_problems
from repro.matching.warm_frame import (
    _addrs_of,
    _pickup_strip,
    _sorted_member_rows,
    request_trips,
)

__all__ = [
    "ShardedFrameState",
    "ShardFrameInfo",
    "sharded_state_from_cold",
    "sharded_warm_frame_solve",
]

#: Column layout of the fused per-request fact matrix.
_RX, _RY, _RPARTY, _RTRIP = 0, 1, 2, 3
#: Column layout of the fused per-taxi fact matrix.
_TX, _TY, _TSEATS, _TALPHA = 0, 1, 2, 3

#: Ids and counts carried in float64 lanes must stay integer-exact.
_FLOAT_EXACT = float(1 << 53)

#: Decompose-and-compare cadence of the adaptive probe, in frames.
DEFAULT_PROBE_INTERVAL = 64
#: Enable per-shard strips while restricted/global pair ratio ≤ this.
DEFAULT_RESTRICT_THRESHOLD = 0.7


@dataclass(slots=True)
class ShardedFrameState:
    """Frame-to-frame state of the sharded warm solver.

    The identity machinery pins the previous frame's objects (so CPython
    cannot reuse their addresses) exactly like :class:`~repro.matching.
    warm_frame.FrameSolveState`, but the sorted address index covers only
    the entities the previous matching left *unmatched* — membership in
    the index is the whole retained test.  Entity facts are fused into
    one matrix per side, and the adaptive-probe position rides along.
    No shard labels are stored — see the module docstring.
    """

    req_ids: np.ndarray
    req_addr_sorted: np.ndarray
    """Sorted addresses of the previously *unmatched* requests."""
    req_addr_rows: np.ndarray
    """Previous-frame row of each ``req_addr_sorted`` entry."""
    req_objs: list[PassengerRequest]
    rfacts: np.ndarray
    """``(R, 4)`` float64: pickup x, pickup y, party, trip km."""
    taxi_ids: np.ndarray
    taxi_addr_sorted: np.ndarray
    """Sorted addresses of the previously *unmatched* taxis."""
    taxi_addr_rows: np.ndarray
    taxi_objs: list[Taxi]
    tfacts: np.ndarray
    """``(T, 4)`` float64: x, y, seats, α."""
    restrict: bool
    """Whether per-shard strip restriction is currently enabled."""
    frames_since_probe: int
    ids_bound: float
    """Upper bound on ``max |id|`` over every entity the state has seen.

    Conservative and monotone (departed entities keep contributing), so
    one scalar comparison per frame replaces the full-array float-exact
    scan; a cold reseed recomputes it exactly.
    """
    counts_bound: float
    """Same bound for party sizes and seat counts."""
    facts_finite: bool
    """Every trip and α the state has seen was finite (conservative —
    enables the lean strip masks; never affects correctness)."""


@dataclass(frozen=True, slots=True)
class ShardFrameInfo:
    """What the sharding machinery did on one warm frame."""

    probed: bool
    restricted: bool
    n_shards: int
    """Mixed (solvable) shard count on decomposed frames, else 0."""
    largest_entities: int
    """Entities in the largest component on decomposed frames, else 0."""
    frame_entities: int
    pairs_global: int
    """Strip pairs the unrestricted solver would score."""
    pairs_scored: int
    """Strip pairs actually scored (== ``pairs_global`` unrestricted)."""


def _taxi_fact_row(
    taxi: Taxi, config: DispatchConfig, alpha_by_taxi: Mapping[int, float] | None
) -> tuple[float, float, float, float]:
    alpha = float(
        config.alpha if alpha_by_taxi is None else alpha_by_taxi.get(taxi.taxi_id, config.alpha)
    )
    return (taxi.location.x, taxi.location.y, float(taxi.seats), alpha)


def _abs_max(values: np.ndarray) -> float:
    """``max |values|`` as a float, 0 for an empty array."""
    return float(np.abs(values).max()) if values.size else 0.0


def _unmatched_addr_index(
    addrs: np.ndarray, matched_rows: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted unmatched addresses, their frame rows)`` for one side."""
    keep = np.ones(n, dtype=bool)
    keep[matched_rows] = False
    rows = np.flatnonzero(keep)
    order = np.argsort(addrs[rows])
    rows = rows[order]
    return addrs[rows], rows


def _rows_of_ids(ids: np.ndarray, wanted: Sequence[int]) -> np.ndarray:
    """Frame rows of ``wanted`` ids (each id must occur in ``ids``)."""
    if not len(wanted):
        return np.empty(0, dtype=np.intp)
    wanted_arr = np.fromiter(map(int, wanted), dtype=np.int64, count=len(wanted))
    order = np.argsort(ids, kind="stable")
    return np.asarray(order[np.searchsorted(ids[order], wanted_arr)], dtype=np.intp)


def sharded_state_from_cold(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    matching: Matching,
    *,
    trip: np.ndarray,
    config: DispatchConfig,
    alpha_by_taxi: Mapping[int, float] | None = None,
    probe_interval: int = DEFAULT_PROBE_INTERVAL,
) -> ShardedFrameState:
    """Seed sharded warm state from a cold frame's inputs and matching.

    ``frames_since_probe`` starts at the probe interval so the first
    warm frame decomposes and decides restriction immediately.
    """
    n_requests = len(requests)
    n_taxis = len(taxis)
    req_ids = np.fromiter((r.request_id for r in requests), dtype=np.int64, count=n_requests)
    taxi_ids = np.fromiter((t.taxi_id for t in taxis), dtype=np.int64, count=n_taxis)
    req_addr_sorted, req_addr_rows = _unmatched_addr_index(
        _addrs_of(requests), _rows_of_ids(req_ids, [p for p, _ in matching.pairs]), n_requests
    )
    taxi_addr_sorted, taxi_addr_rows = _unmatched_addr_index(
        _addrs_of(taxis), _rows_of_ids(taxi_ids, [t for _, t in matching.pairs]), n_taxis
    )
    rfacts = np.empty((n_requests, 4), dtype=np.float64)
    rfacts[:, _RX : _RY + 1] = as_point_array([r.pickup for r in requests], check_finite=False)
    rfacts[:, _RPARTY] = np.fromiter(
        (r.passengers for r in requests), dtype=np.int64, count=n_requests
    )
    rfacts[:, _RTRIP] = np.asarray(trip, dtype=np.float64)
    tfacts = np.array(
        [_taxi_fact_row(t, config, alpha_by_taxi) for t in taxis], dtype=np.float64
    ).reshape(n_taxis, 4)
    facts_finite = bool(np.isfinite(rfacts[:, _RTRIP]).all()) and bool(
        np.isfinite(tfacts[:, _TALPHA]).all()
    )
    return ShardedFrameState(
        req_ids=req_ids,
        req_addr_sorted=req_addr_sorted,
        req_addr_rows=req_addr_rows,
        req_objs=list(requests),
        rfacts=rfacts,
        taxi_ids=taxi_ids,
        taxi_addr_sorted=taxi_addr_sorted,
        taxi_addr_rows=taxi_addr_rows,
        taxi_objs=list(taxis),
        tfacts=tfacts,
        restrict=False,
        frames_since_probe=probe_interval,
        ids_bound=max(_abs_max(req_ids), _abs_max(taxi_ids)),
        counts_bound=max(_abs_max(rfacts[:, _RPARTY]), _abs_max(tfacts[:, _TSEATS])),
        facts_finite=facts_finite,
    )


def _gs_rounds_keyed(
    indptr: np.ndarray, pref: np.ndarray, keys: np.ndarray, n_reviewers: int
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Gale–Shapley rounds on complex suitor keys.

    The same round structure as
    :func:`~repro.matching.deferred_acceptance.gale_shapley_rounds`,
    with the per-reviewer rank reduction replaced by a lexicographic
    ``np.minimum`` over ``score + 1j·proposer_id`` keys.  Within one
    round each reviewer accepts the incoming suitor with the smallest
    key — exactly the best-ranked suitor of the rank engine, since the
    reviewer's rank order *is* ascending ``(score, id)``.  Equal key
    sets traverse equal rounds, so the matching is bit-identical; the
    proposal/refusal counters the rank engine reports are not
    maintained (warm frames never consume them).

    Returns ``(partner, next_choice)``.  A proposer stops proposing the
    moment it is accepted and only resumes when displaced, so for every
    proposer matched at termination ``next_choice[p] - 1`` is the packed
    index of its *accepted* edge — the egress reads the matched pair's
    already-computed leg lengths straight out of the edge arrays.
    """
    next_choice = indptr[:-1].copy()
    ends = indptr[1:]
    partner = np.full(n_reviewers, NO_PARTNER, dtype=np.int64)
    # The dummy partner's key: any listed suitor beats it.
    best = np.full(n_reviewers, np.inf, dtype=np.complex128)
    free = np.flatnonzero(ends > next_choice)
    while free.size:
        active = free[next_choice[free] < ends[free]]
        if active.size == 0:
            break
        edges = next_choice[active]
        reviewers = pref[edges]
        offered = keys[edges]
        next_choice[active] += 1
        np.minimum.at(best, reviewers, offered)
        won = offered == best[reviewers]
        winners = active[won]
        win_reviewers = reviewers[won]
        holders = partner[win_reviewers]
        displaced = holders[holders != NO_PARTNER]
        partner[win_reviewers] = winners
        free = np.concatenate((active[~won], displaced))
    return partner, next_choice


def sharded_warm_frame_solve(
    state: ShardedFrameState,
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    optimize_for: str = "passenger",
    alpha_by_taxi: Mapping[int, float] | None = None,
    on_new_trips: Callable[[np.ndarray, np.ndarray], None] | None = None,
    probe_interval: int = DEFAULT_PROBE_INTERVAL,
    restrict_threshold: float = DEFAULT_RESTRICT_THRESHOLD,
    cell_km: float | None = None,
) -> tuple[
    Matching,
    tuple[np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray],
    IncrementalBuildStats,
    ShardedFrameState,
    ShardFrameInfo,
]:
    """Solve one frame warm with shard-aware strips.

    Bit-identical to the cold array path (and to
    :func:`~repro.matching.warm_frame.warm_frame_solve`) on the same
    inputs: restriction never changes the surviving edge set, the pack
    realizes the cold lexsort's total order, and the keyed rounds
    reproduce the rank engine's decisions — see the module docstring
    for each argument.  Returns ``(matching, matched (taxi_rows,
    request_rows) sorted by request id, matched (pickup_km, trip_km)
    legs in the same order, build stats, next state, shard info)``.
    The legs are read from the frame's own edge arrays — the pickup leg
    is the exact-kernel distance of the accepted edge, the trip leg the
    carried trip fact — so a consumer can execute the matching without
    re-deriving either distance.
    """
    n_requests = len(requests)
    n_taxis = len(taxis)
    theta = config.passenger_threshold_km
    tau = config.taxi_threshold_km

    # -- classify churn: retained == member of the unmatched index ---------
    addrs = _addrs_of(requests)
    ret_r, addr_pos = _sorted_member_rows(state.req_addr_sorted, addrs)
    prev_rows = state.req_addr_rows[addr_pos] if state.req_addr_rows.size else addr_pos
    taxi_addrs = _addrs_of(taxis)
    ret_t, taxi_pos = _sorted_member_rows(state.taxi_addr_sorted, taxi_addrs)
    prev_t_rows = state.taxi_addr_rows[taxi_pos] if state.taxi_addr_rows.size else taxi_pos

    new_r_rows = np.flatnonzero(~ret_r)
    ret_r_rows = np.flatnonzero(ret_r)
    new_t_rows = np.flatnonzero(~ret_t)
    ret_t_rows = np.flatnonzero(ret_t)

    # -- fused entity facts: one gather per side, extract only the new -----
    # Retained rows were bounded and finiteness-checked when they first
    # entered a state, so only the new entities update the carried
    # bounds; one scalar comparison per frame replaces the full scans.
    ids_bound = state.ids_bound
    counts_bound = state.counts_bound
    facts_finite = state.facts_finite
    # Packed kernel entry points skip the per-call sequence conversion
    # and validation of the public batch API; same kernel, same bits.
    # Exact oracles without them (user-supplied) take the public path.
    exact_kernels = batch_kernels_exact(oracle)
    paired_packed = getattr(oracle, "paired_packed", None) if exact_kernels else None
    pairwise_packed = getattr(oracle, "pairwise_packed", None) if exact_kernels else None
    taxi_ids = np.empty(n_taxis, dtype=np.int64)
    tfacts = np.empty((n_taxis, 4), dtype=np.float64)
    if ret_t_rows.size:
        src_t = prev_t_rows[ret_t_rows]
        taxi_ids[ret_t_rows] = state.taxi_ids[src_t]
        tfacts[ret_t_rows] = state.tfacts[src_t]
    new_taxis = [taxis[i] for i in new_t_rows.tolist()]
    if new_taxis:
        k = len(new_taxis)
        new_tids = np.fromiter((t.taxi_id for t in new_taxis), dtype=np.int64, count=k)
        taxi_ids[new_t_rows] = new_tids
        if alpha_by_taxi is None:
            # Flat extraction: one C-level loop for x, y, seats; α is a
            # frame constant.
            blk = np.fromiter(
                (v for t in new_taxis for v in (t.location.x, t.location.y, t.seats)),
                dtype=np.float64,
                count=3 * k,
            ).reshape(k, 3)
            tfacts[new_t_rows, :_TALPHA] = blk
            alpha_const = float(config.alpha)
            tfacts[new_t_rows, _TALPHA] = alpha_const
            seats_new = blk[:, _TSEATS]
            if alpha_const < 0.0:
                raise WarmStartError("negative alpha in frame", reason="bad-alpha")
            facts_finite = facts_finite and math.isfinite(alpha_const)
        else:
            new_trows = np.array(
                [_taxi_fact_row(t, config, alpha_by_taxi) for t in new_taxis], dtype=np.float64
            )
            tfacts[new_t_rows] = new_trows
            seats_new = new_trows[:, _TSEATS]
            if bool(np.any(new_trows[:, _TALPHA] < 0.0)):
                raise WarmStartError("negative alpha in frame", reason="bad-alpha")
            facts_finite = facts_finite and bool(np.isfinite(new_trows[:, _TALPHA]).all())
        ids_bound = max(ids_bound, _abs_max(new_tids))
        counts_bound = max(counts_bound, _abs_max(seats_new))
    taxi_ids_ascending = n_taxis < 2 or bool(np.all(taxi_ids[1:] > taxi_ids[:-1]))
    if not taxi_ids_ascending and np.unique(taxi_ids).size != n_taxis:
        raise WarmStartError("duplicate taxi ids in frame", reason="duplicate-ids")

    req_ids = np.empty(n_requests, dtype=np.int64)
    rfacts = np.empty((n_requests, 4), dtype=np.float64)
    if ret_r_rows.size:
        src = prev_rows[ret_r_rows]
        req_ids[ret_r_rows] = state.req_ids[src]
        rfacts[ret_r_rows] = state.rfacts[src]
    new_requests = [requests[j] for j in new_r_rows.tolist()]
    if new_requests:
        k = len(new_requests)
        new_rids = np.fromiter((r.request_id for r in new_requests), dtype=np.int64, count=k)
        req_ids[new_r_rows] = new_rids
        new_pick = as_point_array([r.pickup for r in new_requests], check_finite=False)
        rfacts[new_r_rows, :_RPARTY] = new_pick
        party_new = np.fromiter(
            (r.passengers for r in new_requests), dtype=np.float64, count=k
        )
        rfacts[new_r_rows, _RPARTY] = party_new
        if paired_packed is not None:
            new_drop = as_point_array([r.dropoff for r in new_requests], check_finite=False)
            new_trips = np.asarray(paired_packed(new_pick, new_drop), dtype=np.float64)
            # request_trips validates coordinates on the exact path; a
            # non-finite coordinate always surfaces as a non-finite trip
            # (±inf/NaN survive subtraction, squaring and sqrt), so the
            # packed kernel reproduces its error behaviour from the trip
            # values alone.
            if not bool(np.isfinite(new_trips).all()):
                raise ValueError("non-finite coordinate in batch distance input")
        else:
            new_trips = request_trips(new_requests, oracle)
            facts_finite = facts_finite and bool(np.isfinite(new_trips).all())
        rfacts[new_r_rows, _RTRIP] = new_trips
        ids_bound = max(ids_bound, _abs_max(new_rids))
        counts_bound = max(counts_bound, _abs_max(party_new))
        if on_new_trips is not None:
            on_new_trips(new_rids, new_trips)
    req_ids_ascending = n_requests < 2 or bool(np.all(req_ids[1:] > req_ids[:-1]))
    if not req_ids_ascending and np.unique(req_ids).size != n_requests:
        raise WarmStartError("duplicate request ids in frame", reason="duplicate-ids")
    # Ids ride in the complex keys' imaginary float64 lane and counts in
    # fact-matrix lanes; both must stay integer-exact.  The carried
    # bounds cover every entity this state chain has seen (cold seeds
    # scan their full arrays), so two scalar comparisons suffice.
    if ids_bound >= _FLOAT_EXACT:
        raise WarmStartError("frame id exceeds float-exact range", reason="id-overflow")
    if counts_bound >= _FLOAT_EXACT:
        raise WarmStartError("frame count exceeds float-exact range", reason="id-overflow")

    txy = tfacts[:, : _TY + 1]
    rxy = rfacts[:, : _RY + 1]
    seats = tfacts[:, _TSEATS]
    alpha = tfacts[:, _TALPHA]
    party = rfacts[:, _RPARTY]
    trip = rfacts[:, _RTRIP]

    # -- adaptive probe / decomposition ------------------------------------
    pairs_global = int(new_t_rows.size) * n_requests + int(ret_t_rows.size) * int(
        new_r_rows.size
    )
    frames_since = state.frames_since_probe + 1
    probed = False
    restricted = state.restrict
    decomp: ShardDecomposition | None = None
    n_mixed = 0
    largest_entities = 0
    pairs_restricted = pairs_global
    shard_blocks: list[tuple[np.ndarray, np.ndarray]] = []
    if restricted or frames_since >= probe_interval:
        alpha_max = float(alpha.max()) if n_taxis else float(config.alpha)
        decomp = frame_decomposition(
            txy, rxy, trip, oracle, config, alpha_max=alpha_max, cell_km=cell_km
        )
        probed = frames_since >= probe_interval
        if probed:
            frames_since = 0
        if decomp.degenerate_reason is not None:
            restricted = False
        else:
            new_t_mask = ~ret_t
            new_r_mask = ~ret_r
            problems = shard_problems(decomp, req_ids)
            n_mixed = len(problems)
            entities = np.bincount(
                decomp.taxi_labels, minlength=decomp.n_shards
            ) + np.bincount(decomp.request_labels, minlength=decomp.n_shards)
            largest_entities = int(entities.max()) if entities.size else 0
            pairs_restricted = 0
            for shard in problems:
                t_rows = shard.taxi_rows
                r_rows = shard.request_rows
                nt = t_rows[new_t_mask[t_rows]]
                rt = t_rows[~new_t_mask[t_rows]]
                nr = r_rows[new_r_mask[r_rows]]
                if nt.size and r_rows.size:
                    pairs_restricted += int(nt.size) * int(r_rows.size)
                    shard_blocks.append((nt, r_rows))
                if rt.size and nr.size:
                    pairs_restricted += int(rt.size) * int(nr.size)
                    shard_blocks.append((rt, nr))
            if probed:
                ratio = pairs_restricted / pairs_global if pairs_global else 1.0
                restricted = ratio <= restrict_threshold
            if not restricted:
                pairs_restricted = pairs_global

    # -- churn strips (globally, or per shard when restriction pays) -------
    strip_ti: list[np.ndarray] = []
    strip_rj: list[np.ndarray] = []
    strip_pick: list[np.ndarray] = []
    strip_driver: list[np.ndarray] = []
    # Lean-mask regime: with θ finite and every trip/α finite, a pair can
    # only survive ``pick ≤ θ`` with finite pick, and then its driver cost
    # is finite by construction (finite − finite·finite); NaN coordinates
    # fail the ≤ comparisons on their own.  Both ``isfinite`` masks are
    # therefore redundant — the surviving edge set is provably identical.
    lean_masks = math.isfinite(theta) and facts_finite

    def score_block(t_block: np.ndarray, r_block: np.ndarray | None) -> None:
        """Score one taxi-rows × request-rows strip and keep survivors.

        ``r_block=None`` means *all requests* (the new-taxi strip) and
        skips the request-side gathers entirely.
        """
        if r_block is None:
            r_xy, r_party, r_trip = rxy, party, trip

            def pick_points() -> list[Point]:
                return [r.pickup for r in requests]

        else:
            rb = r_block
            r_xy = rxy[rb]
            r_party = party[rb]
            r_trip = trip[rb]

            def pick_points() -> list[Point]:
                return [requests[j].pickup for j in rb.tolist()]

        if pairwise_packed is not None:
            pick_m = pairwise_packed(txy[t_block], r_xy)
        else:
            pick_m = _pickup_strip(
                oracle,
                txy[t_block],
                lambda: [taxis[i].location for i in t_block.tolist()],
                r_xy,
                pick_points,
            )
        # Same *, − operations as ``pick − α·trip``, recycling the α·trip
        # buffer (bit-identical, one fewer strip-sized allocation).
        driver_m = alpha[t_block, None] * r_trip[None, :]
        np.subtract(pick_m, driver_m, out=driver_m)
        ok = pick_m <= theta
        ok &= r_party[None, :] <= seats[t_block, None]
        if not lean_masks:
            ok &= np.isfinite(pick_m)
            ok &= np.isfinite(driver_m)
        ok &= driver_m <= tau
        # One nonzero scan feeds every gather: integer fancy indexing
        # walks the same row-major survivor order a boolean mask would,
        # without re-scanning the mask per gathered array.
        t_loc, r_loc = np.nonzero(ok)
        strip_ti.append(t_block[t_loc])
        strip_rj.append(r_loc if r_block is None else r_block[r_loc])
        strip_pick.append(pick_m[t_loc, r_loc])
        strip_driver.append(driver_m[t_loc, r_loc])

    if restricted and decomp is not None:
        for t_block, r_block in shard_blocks:
            score_block(t_block, r_block)
    else:
        if new_t_rows.size and n_requests:
            score_block(new_t_rows, None)
        if ret_t_rows.size and new_r_rows.size:
            score_block(ret_t_rows, new_r_rows)

    if strip_ti:
        ti = np.concatenate(strip_ti)
        rj = np.concatenate(strip_rj)
        pick = np.concatenate(strip_pick)
        driver = np.concatenate(strip_driver)
    else:
        ti = np.empty(0, dtype=np.intp)
        rj = np.empty(0, dtype=np.intp)
        pick = np.empty(0, dtype=np.float64)
        driver = np.empty(0, dtype=np.float64)
    n_edges = len(rj)

    # -- proposer-only canonical pack + keyed GS ---------------------------
    # One lexsort realizes the total (proposer row, score, partner id)
    # order of the cold pack regardless of strip emission order — the key
    # triple is unique per edge (a partner appears once per row), so the
    # permutation is the unique sorted order.  The reviewer side needs no
    # pack at all: its (score, id) order is encoded in the complex keys.
    idx_small = max(n_taxis, n_requests) <= 32767
    if optimize_for == "taxi":
        prop_rows, rev_rows = ti, rj
        n_prop, n_rev = n_taxis, n_requests
        prop_score = driver
        partner_tie = (
            rj.astype(np.int16) if (idx_small and req_ids_ascending) else req_ids[rj]
        )
        rev_score = pick
        rev_tie_ids = taxi_ids
    else:
        prop_rows, rev_rows = rj, ti
        n_prop, n_rev = n_requests, n_taxis
        prop_score = pick
        partner_tie = (
            ti.astype(np.int16) if (idx_small and taxi_ids_ascending) else taxi_ids[ti]
        )
        rev_score = driver
        rev_tie_ids = req_ids
    prop_small = prop_rows.astype(np.int16) if idx_small else prop_rows
    order = np.lexsort((partner_tie, prop_score, prop_small))
    indptr = np.zeros(n_prop + 1, dtype=np.int64)
    np.cumsum(np.bincount(prop_rows, minlength=n_prop), out=indptr[1:])
    pref = rev_rows[order]
    keys = np.empty(n_edges, dtype=np.complex128)
    keys.real = rev_score[order]
    keys.imag = rev_tie_ids[prop_rows[order]].astype(np.float64)
    partner, final_choice = _gs_rounds_keyed(indptr, pref, keys, n_rev)

    matched_rev = np.flatnonzero(partner != NO_PARTNER)
    matched_prop = partner[matched_rev]
    if optimize_for == "taxi":
        t_rows_m, r_rows_m = matched_prop, matched_rev
    else:
        t_rows_m, r_rows_m = matched_rev, matched_prop
    pairs = dict(zip(req_ids[r_rows_m].tolist(), taxi_ids[t_rows_m].tolist()))
    matching = Matching(pairs)
    row_order = np.argsort(req_ids[r_rows_m], kind="stable")
    matched_rows = (t_rows_m[row_order], r_rows_m[row_order])
    # Each matched proposer's accepted edge is its last proposal
    # (``final_choice - 1`` in pack order); ``order`` maps it back to the
    # strip arrays, whose pick entry is the exact-kernel pickup distance
    # of that very pair.
    pick_pair = pick[order[final_choice[matched_prop] - 1]]
    matched_legs = (pick_pair[row_order], trip[matched_rows[1]])

    stats = IncrementalBuildStats(
        n_taxis=n_taxis,
        n_requests=n_requests,
        retained_taxis=int(ret_t_rows.size),
        retained_requests=int(ret_r_rows.size),
        pairs_scored=pairs_restricted if restricted else pairs_global,
        full_pairs=n_taxis * n_requests,
    )
    info = ShardFrameInfo(
        probed=probed,
        restricted=restricted,
        n_shards=n_mixed,
        largest_entities=largest_entities,
        frame_entities=n_taxis + n_requests,
        pairs_global=pairs_global,
        pairs_scored=pairs_restricted if restricted else pairs_global,
    )

    req_addr_sorted, req_addr_rows = _unmatched_addr_index(
        addrs, matched_rows[1], n_requests
    )
    taxi_addr_sorted, taxi_addr_rows = _unmatched_addr_index(
        taxi_addrs, matched_rows[0], n_taxis
    )
    new_state = ShardedFrameState(
        req_ids=req_ids,
        req_addr_sorted=req_addr_sorted,
        req_addr_rows=req_addr_rows,
        req_objs=list(requests),
        rfacts=rfacts,
        taxi_ids=taxi_ids,
        taxi_addr_sorted=taxi_addr_sorted,
        taxi_addr_rows=taxi_addr_rows,
        taxi_objs=list(taxis),
        tfacts=tfacts,
        restrict=restricted,
        frames_since_probe=frames_since,
        ids_bound=ids_bound,
        counts_bound=counts_bound,
        facts_finite=facts_finite,
    )
    return matching, matched_rows, matched_legs, stats, new_state, info
