"""``PreferenceArrays``: the array-native preference representation.

:class:`~repro.matching.preferences.PreferenceTable` is the semantic
reference structure — Python dicts of id tuples — but the frame hot path
(Algorithm 1 at 700×700 scale, every minute of a city day) pays dearly
for it: building per-reviewer rank dicts alone is O(E) dictionary
inserts per frame.  :class:`PreferenceArrays` is the same market in flat
NumPy arrays:

* both sides' preference orders in CSR form (``proposer_indptr`` /
  ``proposer_list`` and the reviewer mirror), entries best-first,
  ``int32`` partner *indices* (not ids — ids live in ``proposer_ids`` /
  ``reviewer_ids``);
* per-edge cross ranks (``proposer_list_rank[e]`` is the rank of the
  *proposing* side's member in the listed reviewer's own order), which
  is all deferred acceptance needs for its refusal test — no rank dict,
  no dense lookup in the inner loop;
* dense rank matrices (``reviewer_rank[r, p]`` / ``proposer_rank[p,
  r]``) for vectorized stability verification, with the **dummy
  sentinel** :data:`UNRANKED` marking unacceptable pairs.

**Rank-matrix refusal convention.**  Ranks are positions in the
acceptable prefix of a preference order (0 = best).  The implicit dummy
partner of Theorem 1 sits at rank :data:`UNRANKED` (``int32`` max): an
unmatched reviewer "holds" its dummy, so the acceptance test for a
proposal arriving with edge rank ``k`` is uniformly ``k <
current_rank`` — against a real holder and against the dummy alike.
Unacceptable pairs (behind the dummy on either side) never appear in
the CSR lists and carry :data:`UNRANKED` in both dense matrices.

``reversed()`` swaps the two sides by *relabeling fields only* — no
array is copied — which is what makes the taxi-proposing NSTD-T fast
path zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import PreferenceError
from repro.matching.preferences import PreferenceTable

__all__ = ["PreferenceArrays", "UNRANKED", "NO_PARTNER"]

#: Dummy-partner rank sentinel: every acceptable partner ranks strictly
#: below this, so ``rank < UNRANKED`` is exactly "preferred to the dummy".
UNRANKED: int = np.iinfo(np.int32).max

#: Engine sentinel for "matched to the dummy" (no partner held).
NO_PARTNER: int = -1


@dataclass(frozen=True, slots=True)
class PreferenceArrays:
    """A mutually consistent preference market in flat arrays.

    Attributes
    ----------
    proposer_ids / reviewer_ids:
        ``int64`` original entity ids; position in these arrays is the
        index every other field speaks in.
    proposer_indptr / proposer_list:
        CSR preference orders: proposer ``p``'s acceptable reviewers are
        ``proposer_list[proposer_indptr[p]:proposer_indptr[p+1]]``,
        best first.  The implicit dummy sits at the end of each segment.
    proposer_list_rank:
        Aligned with ``proposer_list``: the rank of proposer ``p`` in
        the *listed reviewer's* order — the only cross-side data the
        proposer-side deferred-acceptance loop touches.
    reviewer_indptr / reviewer_list / reviewer_list_rank:
        The mirror structure for reviewers (used when taxis propose).
    proposer_rank / reviewer_rank:
        Dense ``(P, R)`` / ``(R, P)`` ``int32`` rank matrices with
        :data:`UNRANKED` for unacceptable pairs; the vectorized
        stability check runs on these.
    """

    proposer_ids: np.ndarray
    reviewer_ids: np.ndarray
    proposer_indptr: np.ndarray
    proposer_list: np.ndarray
    proposer_list_rank: np.ndarray
    reviewer_indptr: np.ndarray
    reviewer_list: np.ndarray
    reviewer_list_rank: np.ndarray
    proposer_rank: np.ndarray
    reviewer_rank: np.ndarray

    # -- basic shape -------------------------------------------------------

    @property
    def n_proposers(self) -> int:
        """Number of proposer rows in the market."""
        return len(self.proposer_ids)

    @property
    def n_reviewers(self) -> int:
        """Number of reviewer rows in the market."""
        return len(self.reviewer_ids)

    @property
    def n_pairs(self) -> int:
        """Number of mutually acceptable pairs (CSR edges per side)."""
        return len(self.proposer_list)

    # -- role reversal -----------------------------------------------------

    def reversed(self) -> "PreferenceArrays":
        """The same market with roles swapped — a pure field relabeling.

        No array is copied; the reviewer-side CSR becomes the proposer
        CSR and the dense matrices trade places.  Deferred acceptance on
        the result is reviewer-optimal for this market.
        """
        return PreferenceArrays(
            proposer_ids=self.reviewer_ids,
            reviewer_ids=self.proposer_ids,
            proposer_indptr=self.reviewer_indptr,
            proposer_list=self.reviewer_list,
            proposer_list_rank=self.reviewer_list_rank,
            reviewer_indptr=self.proposer_indptr,
            reviewer_list=self.proposer_list,
            reviewer_list_rank=self.proposer_list_rank,
            proposer_rank=self.reviewer_rank,
            reviewer_rank=self.proposer_rank,
        )

    # -- conversions -------------------------------------------------------

    @classmethod
    def from_table(cls, table: PreferenceTable) -> "PreferenceArrays":
        """Pack a dict :class:`PreferenceTable` into arrays.

        Entity order follows the table's dict insertion order, so a
        round trip through :meth:`to_table` preserves iteration order.
        This is the compatibility path (tests, hand-built tables); the
        frame hot path builds arrays directly via
        :func:`repro.matching.preferences.build_nonsharing_arrays`
        without materializing the dicts at all.
        """
        proposer_ids = np.fromiter(table.proposer_prefs, dtype=np.int64, count=len(table.proposer_prefs))
        reviewer_ids = np.fromiter(table.reviewer_prefs, dtype=np.int64, count=len(table.reviewer_prefs))
        p_index = {int(pid): i for i, pid in enumerate(proposer_ids)}
        r_index = {int(rid): i for i, rid in enumerate(reviewer_ids)}

        n_prop, n_rev = len(proposer_ids), len(reviewer_ids)
        proposer_rank = np.full((n_prop, n_rev), UNRANKED, dtype=np.int32)
        reviewer_rank = np.full((n_rev, n_prop), UNRANKED, dtype=np.int32)

        p_indptr = np.zeros(n_prop + 1, dtype=np.int64)
        p_cols: list[int] = []
        for pid, prefs in table.proposer_prefs.items():
            p = p_index[pid]
            for k, rid in enumerate(prefs):
                r = r_index.get(rid)
                if r is None:
                    raise PreferenceError(f"proposer {pid} lists unknown reviewer {rid}")
                p_cols.append(r)
                proposer_rank[p, r] = k
            p_indptr[p + 1] = len(prefs)
        np.cumsum(p_indptr, out=p_indptr)

        r_indptr = np.zeros(n_rev + 1, dtype=np.int64)
        r_cols: list[int] = []
        for rid, prefs in table.reviewer_prefs.items():
            r = r_index[rid]
            for k, pid in enumerate(prefs):
                p = p_index.get(pid)
                if p is None:
                    raise PreferenceError(f"reviewer {rid} lists unknown proposer {pid}")
                r_cols.append(p)
                reviewer_rank[r, p] = k
            r_indptr[r + 1] = len(prefs)
        np.cumsum(r_indptr, out=r_indptr)

        proposer_list = np.array(p_cols, dtype=np.int32)
        reviewer_list = np.array(r_cols, dtype=np.int32)
        if len(proposer_list) != len(reviewer_list):
            raise PreferenceError(
                "preference lists are not mutually consistent: "
                f"{len(proposer_list)} proposer edges vs {len(reviewer_list)} reviewer edges"
            )
        proposer_owner = np.repeat(np.arange(n_prop), np.diff(p_indptr))
        reviewer_owner = np.repeat(np.arange(n_rev), np.diff(r_indptr))
        proposer_list_rank = reviewer_rank[proposer_list, proposer_owner]
        reviewer_list_rank = proposer_rank[reviewer_list, reviewer_owner]
        if len(proposer_list) and (
            (proposer_list_rank == UNRANKED).any() or (reviewer_list_rank == UNRANKED).any()
        ):
            raise PreferenceError("preference lists are not mutually consistent")
        return cls(
            proposer_ids=proposer_ids,
            reviewer_ids=reviewer_ids,
            proposer_indptr=p_indptr,
            proposer_list=proposer_list,
            proposer_list_rank=proposer_list_rank,
            reviewer_indptr=r_indptr,
            reviewer_list=reviewer_list,
            reviewer_list_rank=reviewer_list_rank,
            proposer_rank=proposer_rank,
            reviewer_rank=reviewer_rank,
        )

    def to_table(self, *, validate: bool = False) -> PreferenceTable:
        """Unpack into the dict :class:`PreferenceTable` (scores omitted)."""
        proposer_prefs: dict[int, tuple[int, ...]] = {}
        rid_list = self.reviewer_ids.tolist()
        pid_list = self.proposer_ids.tolist()
        p_indptr = self.proposer_indptr.tolist()
        p_cols = self.proposer_list.tolist()
        for p, pid in enumerate(pid_list):
            proposer_prefs[pid] = tuple(
                rid_list[r] for r in p_cols[p_indptr[p] : p_indptr[p + 1]]
            )
        reviewer_prefs: dict[int, tuple[int, ...]] = {}
        r_indptr = self.reviewer_indptr.tolist()
        r_cols = self.reviewer_list.tolist()
        for r, rid in enumerate(rid_list):
            reviewer_prefs[rid] = tuple(
                pid_list[p] for p in r_cols[r_indptr[r] : r_indptr[r + 1]]
            )
        return PreferenceTable(
            proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs, validate=validate
        )

    # -- equality (for tests) ---------------------------------------------

    def equals(self, other: "PreferenceArrays") -> bool:
        """Structural equality, field by field (array-aware)."""
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in (
                "proposer_ids",
                "reviewer_ids",
                "proposer_indptr",
                "proposer_list",
                "proposer_list_rank",
                "reviewer_indptr",
                "reviewer_list",
                "reviewer_list_rank",
                "proposer_rank",
                "reviewer_rank",
            )
        )

    def validate(self) -> None:
        """O(E) consistency check for hand-built instances.

        The trusted builders produce consistent arrays by construction;
        call this from tests or when ingesting external data.
        """
        n_prop, n_rev = self.n_proposers, self.n_reviewers
        if self.proposer_indptr[0] != 0 or self.proposer_indptr[-1] != len(self.proposer_list):
            raise PreferenceError("proposer_indptr does not span proposer_list")
        if self.reviewer_indptr[0] != 0 or self.reviewer_indptr[-1] != len(self.reviewer_list):
            raise PreferenceError("reviewer_indptr does not span reviewer_list")
        if len(self.proposer_list) != len(self.reviewer_list):
            raise PreferenceError("edge counts differ between sides")
        if self.proposer_rank.shape != (n_prop, n_rev):
            raise PreferenceError(f"proposer_rank shape {self.proposer_rank.shape}")
        if self.reviewer_rank.shape != (n_rev, n_prop):
            raise PreferenceError(f"reviewer_rank shape {self.reviewer_rank.shape}")
        if len(self.proposer_list) and (
            self.proposer_list.min() < 0 or self.proposer_list.max() >= n_rev
        ):
            raise PreferenceError("proposer_list contains out-of-range reviewer index")
        if len(self.reviewer_list) and (
            self.reviewer_list.min() < 0 or self.reviewer_list.max() >= n_prop
        ):
            raise PreferenceError("reviewer_list contains out-of-range proposer index")
        # Mutual consistency: the edge sets of both sides coincide, and
        # the dense matrices agree with the CSR ranks.
        p_owner = np.repeat(np.arange(n_prop), np.diff(self.proposer_indptr))
        r_owner = np.repeat(np.arange(n_rev), np.diff(self.reviewer_indptr))
        p_edges = set(zip(p_owner.tolist(), self.proposer_list.tolist()))
        r_edges = set(zip(self.reviewer_list.tolist(), r_owner.tolist()))
        if p_edges != r_edges:
            diff = sorted(p_edges ^ r_edges)[:5]
            raise PreferenceError(f"sides disagree on acceptable pairs: {diff}")
        if not np.array_equal(self.proposer_list_rank, self.reviewer_rank[self.proposer_list, p_owner]):
            raise PreferenceError("proposer_list_rank disagrees with reviewer_rank")
        if not np.array_equal(self.reviewer_list_rank, self.proposer_rank[self.reviewer_list, r_owner]):
            raise PreferenceError("reviewer_list_rank disagrees with proposer_rank")
