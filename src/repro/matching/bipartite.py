"""Bipartite matching baselines from Hanna et al. [3].

Two of the paper's non-sharing comparison algorithms are cost-based
bipartite matchings between requests and taxis:

* **MCBM** — a minimum *total* cost matching of ``min(|R|, |T|)`` pairs
  (solved with the Hungarian algorithm via SciPy);
* **MMCM** — a matching of ``min(|R|, |T|)`` pairs minimizing the
  *maximum* matched cost (threshold search over the sorted distinct
  costs with Hopcroft–Karp feasibility checks).

Both operate on a dense cost matrix ``cost[j][i]`` (request j, taxi i);
``inf`` marks a forbidden pair.  Results come back as (row, col) pairs.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.errors import MatchingError
from repro.matching.hopcroft_karp import hopcroft_karp

__all__ = ["min_cost_matching", "minimax_matching", "matching_total_cost"]


def _as_matrix(cost: np.ndarray | list[list[float]]) -> np.ndarray:
    matrix = np.asarray(cost, dtype=float)
    if matrix.ndim != 2:
        raise MatchingError(f"cost matrix must be 2-D, got shape {matrix.shape}")
    return matrix


def min_cost_matching(cost: np.ndarray | list[list[float]]) -> list[tuple[int, int]]:
    """Minimum-total-cost matching of as many pairs as feasible.

    Forbidden (``inf``) pairs are never matched; if the instance cannot
    match ``min(rows, cols)`` pairs because of forbidden entries, the
    achievable maximum is matched instead (finite-cost pairs only).
    """
    matrix = _as_matrix(cost)
    if matrix.size == 0:
        return []
    finite = matrix[np.isfinite(matrix)]
    # Substitute forbidden pairs with a cost big enough that the optimizer
    # only uses them when unavoidable, then strip them from the result.
    big = (float(finite.max()) if finite.size else 0.0) + 1.0
    span = max(matrix.shape)
    sentinel = big * (span + 1)
    padded = np.where(np.isfinite(matrix), matrix, sentinel)
    rows, cols = linear_sum_assignment(padded)
    return [
        (int(r), int(c))
        for r, c in zip(rows, cols)
        if math.isfinite(matrix[r, c])
    ]


def minimax_matching(cost: np.ndarray | list[list[float]]) -> list[tuple[int, int]]:
    """A matching of maximum cardinality minimizing the largest matched cost.

    Implementation: the answer is one of the distinct finite costs; find
    the smallest threshold under which a maximum-cardinality matching
    still exists (binary search + Hopcroft–Karp), then return such a
    matching.
    """
    matrix = _as_matrix(cost)
    if matrix.size == 0:
        return []
    finite_costs = np.unique(matrix[np.isfinite(matrix)])
    if finite_costs.size == 0:
        return []

    n_rows, n_cols = matrix.shape

    def matching_under(threshold: float) -> dict[int, int]:
        adjacency = [
            [c for c in range(n_cols) if matrix[r, c] <= threshold] for r in range(n_rows)
        ]
        return hopcroft_karp(n_rows, n_cols, adjacency)

    target = len(matching_under(float(finite_costs[-1])))
    if target == 0:
        return []
    lo, hi = 0, finite_costs.size - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if len(matching_under(float(finite_costs[mid]))) >= target:
            hi = mid
        else:
            lo = mid + 1
    best = matching_under(float(finite_costs[lo]))
    return sorted((int(r), int(c)) for r, c in best.items())


def matching_total_cost(cost: np.ndarray | list[list[float]], pairs: list[tuple[int, int]]) -> float:
    """Total cost of ``pairs`` under ``cost`` (``inf`` pairs raise)."""
    matrix = _as_matrix(cost)
    total = 0.0
    for r, c in pairs:
        value = float(matrix[r, c])
        if not math.isfinite(value):
            raise MatchingError(f"pair ({r}, {c}) is forbidden")
        total += value
    return total
