"""Algorithm 1: non-sharing taxi dispatch via deferred acceptance.

This is the paper's passenger-proposing Gale–Shapley variant with dummy
partners.  Each passenger request proposes down its preference order
(sub-algorithm *Proposal*); a taxi holds its best proposal so far and
refuses the rest (sub-algorithm *Refusal*); a request whose list is
exhausted falls to its dummy partner and stays unserved.

The paper presents the cascade recursively; we run it with an explicit
work stack so deep refusal chains cannot overflow Python's recursion
limit.  The result is the **passenger-optimal** stable matching
(Property 2), and by Theorem 2 its unserved requests are unserved in
every stable matching.

Two engines implement the identical algorithm:

* the **dict engine** (:func:`deferred_acceptance_dict`) runs on
  :class:`~repro.matching.preferences.PreferenceTable` and is the
  retained semantic reference;
* the **array engine** (:func:`deferred_acceptance_arrays`) runs on
  :class:`~repro.matching.arrays.PreferenceArrays` with flat
  ``next_choice`` / ``current_partner`` / ``current_rank`` int arrays
  and the per-edge cross-rank refusal test — no rank dictionaries are
  ever built, which is where the dict engine spends most of a frame.
  It executes in **batched proposal rounds**: every free proposer
  proposes to its next choice at once, and each reviewer keeps the
  best suitor via one vectorized min-reduction.

The two engines run different proposal *orders* yet are bit-identical
in matching *and* counters, which the property suite asserts.  Both
facts are the McVitie–Wilson order-independence of deferred acceptance:
under any execution order the algorithm makes the same *set* of
proposals (hence equal proposal counters and, by Property 2, the same
proposer-optimal matching), and every proposal is either held when the
algorithm stops or refused exactly once — immediately, or later by
displacement — so refusal counters agree too (``refusals = proposals −
matched`` in both engines).

Complexity: O(|R|·|T|) proposals, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.arrays import NO_PARTNER, UNRANKED, PreferenceArrays
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = [
    "deferred_acceptance",
    "deferred_acceptance_dict",
    "deferred_acceptance_arrays",
    "gale_shapley_rounds",
    "DeferredAcceptanceStats",
]


@dataclass(frozen=True, slots=True)
class DeferredAcceptanceStats:
    """Counters describing one deferred-acceptance run."""

    proposals: int
    refusals: int
    matched_pairs: int


def deferred_acceptance(
    table: PreferenceTable | PreferenceArrays, *, with_stats: bool = False
) -> Matching | tuple[Matching, DeferredAcceptanceStats]:
    """Run Algorithm 1 and return the proposer-optimal matching.

    Dispatches on the input representation: a
    :class:`~repro.matching.arrays.PreferenceArrays` instance runs on
    the array engine (the frame fast path), a
    :class:`~repro.matching.preferences.PreferenceTable` on the dict
    reference engine.  Both produce identical matchings and counters.

    Parameters
    ----------
    table:
        Mutually consistent preference lists (dummies are implicit list
        ends), in either representation.
    with_stats:
        When true, also return proposal/refusal counters.
    """
    if isinstance(table, PreferenceArrays):
        return deferred_acceptance_arrays(table, with_stats=with_stats)
    return deferred_acceptance_dict(table, with_stats=with_stats)


def deferred_acceptance_dict(
    table: PreferenceTable, *, with_stats: bool = False
) -> Matching | tuple[Matching, DeferredAcceptanceStats]:
    """The retained dict-based reference engine (the oracle in tests)."""
    # next_choice[p] = index of the next entry p will propose to.
    next_choice: dict[int, int] = {p: 0 for p in table.proposer_prefs}
    current_partner: dict[int, int] = {}  # reviewer -> proposer currently held
    engaged_to: dict[int, int] = {}  # proposer -> reviewer currently holding it

    reviewer_ranks = table._reviewer_ranks()  # cached rank maps; hot path

    proposals = 0
    refusals = 0

    # Requests propose "one by one" (Algorithm 1, lines 20-21); a refusal
    # pushes the refused request back onto the stack (line 14/16).
    stack: list[int] = sorted(table.proposer_prefs, reverse=True)
    while stack:
        proposer = stack.pop()
        prefs = table.proposer_prefs[proposer]
        while next_choice[proposer] < len(prefs):
            reviewer = prefs[next_choice[proposer]]
            next_choice[proposer] += 1
            proposals += 1
            holder = current_partner.get(reviewer)
            if holder is None:
                # Refusal lines 10-11: an undispatched taxi accepts any
                # proposer it prefers over its dummy; every entry in the
                # preference list is above the dummy by construction.
                current_partner[reviewer] = proposer
                engaged_to[proposer] = reviewer
                break
            ranks = reviewer_ranks[reviewer]
            if ranks[proposer] < ranks[holder]:
                # Refusal lines 12-14: keep the preferred proposer, push
                # the displaced one back to Proposal.
                current_partner[reviewer] = proposer
                engaged_to[proposer] = reviewer
                del engaged_to[holder]
                refusals += 1
                stack.append(holder)
                break
            refusals += 1  # line 16: proposer is refused, tries next entry
        # Falling out of the while means the proposer reached its dummy
        # (Proposal lines 6-7) and stays unserved.

    matching = Matching(engaged_to)
    if with_stats:
        stats = DeferredAcceptanceStats(
            proposals=proposals, refusals=refusals, matched_pairs=matching.size
        )
        return matching, stats
    return matching


def deferred_acceptance_arrays(
    arrays: PreferenceArrays, *, with_stats: bool = False
) -> Matching | tuple[Matching, DeferredAcceptanceStats]:
    """The array engine: Algorithm 1 in batched proposal rounds.

    State is three flat arrays indexed by entity position —
    ``next_choice[p]`` (cursor into the proposer's CSR segment),
    ``current_partner[r]`` (:data:`NO_PARTNER` means the dummy) and
    ``current_rank[r]``, the rank at which the reviewer accepted its
    held proposer (:data:`UNRANKED` for the dummy).  Each round, every
    free proposer with entries left proposes to its next choice at
    once; ``np.minimum.at`` folds the proposals into ``current_rank``
    so a reviewer keeps exactly the suitor it prefers over everything
    it has seen, dummy included (ranks within a reviewer's list are
    unique, so the round's winner is the proposal whose rank equals the
    reduced value).  Refused proposers and displaced holders form the
    next round's free pool.  Nothing is hashed and no rank structure is
    built at run time; per-round work is a handful of vectorized ops
    over the currently free proposers.

    By McVitie–Wilson order-independence this produces the identical
    matching and counters as the sequential dict engine (see the module
    docstring).
    """
    current_partner, proposals, refusals = gale_shapley_rounds(
        arrays.proposer_indptr,
        arrays.proposer_list,
        arrays.proposer_list_rank,
        arrays.n_reviewers,
    )

    proposer_ids = arrays.proposer_ids
    reviewer_ids = arrays.reviewer_ids
    matched_reviewers = np.flatnonzero(current_partner != NO_PARTNER)
    matched_proposers = current_partner[matched_reviewers]
    matching = Matching(
        {
            int(proposer_ids[p]): int(reviewer_ids[r])
            for p, r in zip(matched_proposers.tolist(), matched_reviewers.tolist())
        }
    )
    if with_stats:
        stats = DeferredAcceptanceStats(
            proposals=proposals, refusals=refusals, matched_pairs=matching.size
        )
        return matching, stats
    return matching


def gale_shapley_rounds(
    indptr: np.ndarray,
    pref: np.ndarray,
    pref_rank: np.ndarray,
    n_reviewers: int,
) -> tuple[np.ndarray, int, int]:
    """The batched-round Gale–Shapley core over a raw proposer CSR.

    ``indptr``/``pref`` is the proposer-side CSR (each segment in the
    proposer's preference order); ``pref_rank[e]`` is the rank of the
    edge's proposer inside the listed reviewer's own order.  Returns
    ``(current_partner, proposals, refusals)`` where
    ``current_partner[r]`` is the proposer *position* reviewer ``r``
    holds (:data:`NO_PARTNER` for the dummy).  This is the entire array
    engine minus id translation — shared between
    :func:`deferred_acceptance_arrays` and the warm frame solver in
    :mod:`repro.matching.warm_frame`, which is what makes the two
    bit-identical in matching and counters on equal CSR input.
    """
    n_prop = len(indptr) - 1
    next_choice = indptr[:-1].copy()  # each cursor starts at its CSR segment
    ends = indptr[1:]
    current_partner = np.full(n_reviewers, NO_PARTNER, dtype=np.int64)
    # The dummy's rank: any listed entry beats it.
    current_rank = np.full(n_reviewers, np.int64(UNRANKED), dtype=np.int64)

    proposals = 0
    refusals = 0

    free = np.arange(n_prop, dtype=np.int64)
    while free.size:
        # Proposers whose list is exhausted fall to their dummy and drop
        # out unserved (Proposal lines 6-7).
        active = free[next_choice[free] < ends[free]]
        if active.size == 0:
            break
        edges = next_choice[active]
        reviewers = pref[edges].astype(np.int64)
        ranks = pref_rank[edges].astype(np.int64)
        next_choice[active] += 1
        proposals += int(active.size)
        # Refusal lines 10-14, one reduction for the whole round: each
        # proposed-to reviewer's held rank drops to its best incoming
        # offer; the unique proposal achieving it is accepted.
        np.minimum.at(current_rank, reviewers, ranks)
        won = ranks == current_rank[reviewers]
        winners = active[won]
        win_reviewers = reviewers[won]
        holders = current_partner[win_reviewers]
        displaced = holders[holders != NO_PARTNER]
        current_partner[win_reviewers] = winners
        # Line 16 (immediate refusals) plus line 14 (displacements).
        refusals += int(active.size - winners.size) + int(displaced.size)
        free = np.concatenate((active[~won], displaced))

    return current_partner, proposals, refusals
