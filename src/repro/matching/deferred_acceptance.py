"""Algorithm 1: non-sharing taxi dispatch via deferred acceptance.

This is the paper's passenger-proposing Gale–Shapley variant with dummy
partners.  Each passenger request proposes down its preference order
(sub-algorithm *Proposal*); a taxi holds its best proposal so far and
refuses the rest (sub-algorithm *Refusal*); a request whose list is
exhausted falls to its dummy partner and stays unserved.

The paper presents the cascade recursively; we run it with an explicit
work stack so deep refusal chains cannot overflow Python's recursion
limit.  The result is the **passenger-optimal** stable matching
(Property 2), and by Theorem 2 its unserved requests are unserved in
every stable matching.

Complexity: O(|R|·|T|) proposals, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["deferred_acceptance", "DeferredAcceptanceStats"]


@dataclass(frozen=True, slots=True)
class DeferredAcceptanceStats:
    """Counters describing one deferred-acceptance run."""

    proposals: int
    refusals: int
    matched_pairs: int


def deferred_acceptance(
    table: PreferenceTable, *, with_stats: bool = False
) -> Matching | tuple[Matching, DeferredAcceptanceStats]:
    """Run Algorithm 1 on ``table`` and return the proposer-optimal matching.

    Parameters
    ----------
    table:
        Mutually consistent preference lists (dummies are implicit list
        ends).
    with_stats:
        When true, also return proposal/refusal counters.
    """
    # next_choice[p] = index of the next entry p will propose to.
    next_choice: dict[int, int] = {p: 0 for p in table.proposer_prefs}
    current_partner: dict[int, int] = {}  # reviewer -> proposer currently held
    engaged_to: dict[int, int] = {}  # proposer -> reviewer currently holding it

    reviewer_ranks = table._reviewer_ranks()  # cached rank maps; hot path

    proposals = 0
    refusals = 0

    # Requests propose "one by one" (Algorithm 1, lines 20-21); a refusal
    # pushes the refused request back onto the stack (line 14/16).
    stack: list[int] = sorted(table.proposer_prefs, reverse=True)
    while stack:
        proposer = stack.pop()
        prefs = table.proposer_prefs[proposer]
        while next_choice[proposer] < len(prefs):
            reviewer = prefs[next_choice[proposer]]
            next_choice[proposer] += 1
            proposals += 1
            holder = current_partner.get(reviewer)
            if holder is None:
                # Refusal lines 10-11: an undispatched taxi accepts any
                # proposer it prefers over its dummy; every entry in the
                # preference list is above the dummy by construction.
                current_partner[reviewer] = proposer
                engaged_to[proposer] = reviewer
                break
            ranks = reviewer_ranks[reviewer]
            if ranks[proposer] < ranks[holder]:
                # Refusal lines 12-14: keep the preferred proposer, push
                # the displaced one back to Proposal.
                current_partner[reviewer] = proposer
                engaged_to[proposer] = reviewer
                del engaged_to[holder]
                refusals += 1
                stack.append(holder)
                break
            refusals += 1  # line 16: proposer is refused, tries next entry
        # Falling out of the while means the proposer reached its dummy
        # (Proposal lines 6-7) and stays unserved.

    matching = Matching(engaged_to)
    if with_stats:
        stats = DeferredAcceptanceStats(
            proposals=proposals, refusals=refusals, matched_pairs=matching.size
        )
        return matching, stats
    return matching
