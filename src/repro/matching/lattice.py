"""The distributive lattice of stable matchings.

Two classic structural results the paper leans on implicitly:

* **Lattice (Conway)**: for stable matchings ``M`` and ``M'``, giving
  every proposer the better (resp. worse) of its two partners yields a
  stable matching again — the *join* (resp. *meet*).  The
  passenger-optimal and taxi-optimal matchings of Section IV are the
  lattice's top and bottom.
* **Median stable matching (Sethuraman et al., the paper's [13])**:
  assigning every proposer the median of its partners across all stable
  matchings is itself stable, and is simultaneously the median for the
  reviewers — a natural "fair compromise" the company could deploy
  instead of either extreme.

Both are implemented over explicit matching collections (Algorithm 2
provides them), so they work for any thresholded market.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import MatchingError
from repro.matching.enumeration import all_stable_matchings
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["join", "meet", "median_stable_matching", "lattice_extremes"]


def _combine(table: PreferenceTable, a: Matching, b: Matching, *, take_best: bool) -> Matching:
    if a.matched_proposers != b.matched_proposers:
        raise MatchingError(
            "lattice operations need two stable matchings of the same market "
            "(their matched sets must coincide)"
        )
    pairs: dict[int, int] = {}
    for proposer in a.matched_proposers:
        ra = a.reviewer_of(proposer)
        rb = b.reviewer_of(proposer)
        assert ra is not None and rb is not None
        if ra == rb:
            pairs[proposer] = ra
        elif table.proposer_prefers(proposer, ra, rb) == take_best:
            pairs[proposer] = ra
        else:
            pairs[proposer] = rb
    return Matching(pairs)


def join(table: PreferenceTable, a: Matching, b: Matching) -> Matching:
    """Proposer-wise best of two stable matchings (stable by the lattice
    theorem; verified in the tests rather than assumed)."""
    return _combine(table, a, b, take_best=True)


def meet(table: PreferenceTable, a: Matching, b: Matching) -> Matching:
    """Proposer-wise worst of two stable matchings."""
    return _combine(table, a, b, take_best=False)


def median_stable_matching(
    table: PreferenceTable, matchings: Sequence[Matching] | None = None
) -> Matching:
    """The (lower) median stable matching.

    For every matched proposer, sort its partners across all stable
    matchings by its own preference and take the element at index
    ``(k − 1) // 2`` (the generalized median; for odd ``k`` the unique
    median).  By Teo–Sethuraman's theorem the selection is a stable
    matching.

    ``matchings`` defaults to the full Algorithm-2 enumeration.
    """
    if matchings is None:
        matchings = all_stable_matchings(table)
    if not matchings:
        raise MatchingError("no stable matchings supplied")
    matched = matchings[0].matched_proposers
    pairs: dict[int, int] = {}
    for proposer in matched:
        partners = []
        for matching in matchings:
            reviewer = matching.reviewer_of(proposer)
            if reviewer is None:
                raise MatchingError("matchings disagree on the matched set")
            partners.append(reviewer)
        ranked = sorted(
            partners, key=lambda r: table.proposer_rank(proposer, r)  # type: ignore[arg-type]
        )
        pairs[proposer] = ranked[(len(ranked) - 1) // 2]
    return Matching(pairs)


def lattice_extremes(table: PreferenceTable) -> tuple[Matching, Matching]:
    """(proposer-optimal, proposer-pessimal) via repeated meets/joins.

    Mostly a cross-check utility: folding the enumeration with
    :func:`join` must reproduce Algorithm 1's output, and with
    :func:`meet` the taxi-optimal matching.
    """
    matchings = all_stable_matchings(table)
    top = matchings[0]
    bottom = matchings[0]
    for matching in matchings[1:]:
        top = join(table, top, matching)
        bottom = meet(table, bottom, matching)
    return top, bottom
