"""Algorithm 2: enumerating all stable matchings.

The paper obtains every stable matching by starting from the
passenger-optimal one (Algorithm 1) and repeatedly *breaking* a matched
pair (sub-algorithm ``BreakDispatch``), guided by three rules:

* **Rule 1** (correctness): a break of ``(r_j, t*)`` succeeds only when
  ``t*`` ends up dispatched to a non-dummy request it strictly prefers
  over ``r_j``.  Until then ``t*`` holds out, refusing every proposal it
  does not prefer over ``r_j``.
* **Rule 2** (no redundancy): the proposal/refusal cascade may only
  involve requests ``r_j'`` with ``j' ≥ j``; needing an earlier request
  makes the break unsuccessful.
* **Rule 3** (efficiency): breaking an unserved request is pointless —
  by Theorem 2 it is unserved in every stable matching.

This is the McVitie–Wilson breakmarriage scheme adapted to unequal sides
with dummy partners.  Two consequences of Theorem 1's dummy-completion
argument shape the cascade:

* A proposal to a taxi that is *undispatched in the source matching*
  dooms the break: the taxi is undispatched in **every** stable matching
  (the taxi-side analogue of Theorem 2), so accepting would strand a
  blocking pair and refusing-and-continuing would leave the proposer
  below a taxi that wants it.  We therefore fail the cascade immediately.
* A request whose preference list is exhausted falls to its dummy, which
  is the paper's explicit failure case (i) in the proof of Theorem 3.

Pointers restart *after the current partner*: in any stable matching a
proposal above one's partner is always refused (it would otherwise be a
blocking pair), so re-proposing there is provably futile.

Correctness is validated in the test suite against brute-force
enumeration (`repro.matching.brute_force`) on thousands of randomized
instances, including the exactly-once property of Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import EnumerationBudgetError, MatchingError
from repro.matching.deferred_acceptance import deferred_acceptance
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching
from repro.resilience.budget import FrameBudget, WorkBudget

__all__ = [
    "break_dispatch",
    "all_stable_matchings",
    "enumerate_all_stable_matchings",
    "EnumerationStats",
]


@dataclass(slots=True)
class EnumerationStats:
    """Counters describing one enumeration run."""

    break_attempts: int = 0
    break_successes: int = 0
    duplicates: int = 0
    truncated: bool = False
    stable_matchings: int = 0
    nodes: int = 0
    notes: list[str] = field(default_factory=list)


def break_dispatch(
    table: PreferenceTable,
    matching: Matching,
    request_id: int,
    *,
    budget: WorkBudget | None = None,
) -> Matching | None:
    """One ``BreakDispatch`` on stable ``matching`` and request ``request_id``.

    Returns the resulting stable matching, or ``None`` when the break is
    unsuccessful per Rules 1–3.  ``matching`` must be stable; this is not
    re-verified here for speed (the enumerator only feeds stable inputs).

    ``budget`` bounds the cascade: each displaced proposer charges one
    node, and an exhausted budget raises
    :class:`~repro.core.errors.EnumerationBudgetError` (the enumerator
    catches it and returns its anytime result).
    """
    if request_id not in table.proposer_prefs:
        raise MatchingError(f"unknown request id {request_id}")
    t_star = matching.reviewer_of(request_id)
    if t_star is None:
        return None  # Rule 3: r_j is unserved in every stable matching.

    proposer_ranks = table._proposer_ranks()
    reviewer_ranks = table._reviewer_ranks()

    working = matching.as_dict()  # proposer -> reviewer
    holder = {reviewer: proposer for proposer, reviewer in working.items()}
    del working[request_id]
    del holder[t_star]

    # Each displaced proposer resumes just below the partner it lost;
    # the broken request resumes just below t_star.
    pointer: dict[int, int] = {request_id: proposer_ranks[request_id][t_star] + 1}
    t_star_holds_out_rank = reviewer_ranks[t_star][request_id]

    chain: list[int] = [request_id]
    while chain:
        # Bounded-cascade guard: a budgeted cascade stops here rather
        # than running unbounded (and a cascade that could somehow drain
        # its chain falls out of the loop to the typed raise below).
        if budget is not None and not budget.spend():
            raise EnumerationBudgetError(
                f"break cascade for request {request_id} exhausted its work budget",
                nodes=budget.nodes,
            )
        proposer = chain.pop()
        if proposer < request_id:
            return None  # Rule 2: an earlier request would have to propose.
        prefs = table.proposer_prefs[proposer]
        index = pointer.get(proposer)
        if index is None:
            current = matching.reviewer_of(proposer)
            assert current is not None, "only matched requests are displaced"
            index = proposer_ranks[proposer][current] + 1
        while index < len(prefs):
            reviewer = prefs[index]
            index += 1
            if reviewer == t_star:
                # Rule 1: t* holds out for strictly better than r_j.
                if reviewer_ranks[t_star][proposer] < t_star_holds_out_rank:
                    working[proposer] = t_star
                    return Matching(working)
                continue
            occupant = holder.get(reviewer)
            if occupant is None:
                # Undispatched in the source matching: undispatched in every
                # stable matching, so this cascade cannot end stably.
                return None
            ranks = reviewer_ranks[reviewer]
            if ranks[proposer] < ranks[occupant]:
                working[proposer] = reviewer
                holder[reviewer] = proposer
                del working[occupant]
                pointer[proposer] = index
                chain.append(occupant)
                break
        else:
            return None  # Proposer fell to its dummy: failure case (i).
        pointer[proposer] = index
    # Unreachable for stable inputs (every cascade step re-fills the
    # chain or returns, per Theorem 3); typed so a violated invariant
    # surfaces as a budgetable enumeration failure, not a crash.
    raise EnumerationBudgetError(
        "break cascade terminated without resolution",
        nodes=budget.nodes if budget is not None else 0,
    )


def all_stable_matchings(
    table: PreferenceTable,
    *,
    limit: int | None = None,
    with_stats: bool = False,
    max_nodes: int | None = None,
    deadline: FrameBudget | None = None,
    on_budget: str = "truncate",
) -> list[Matching] | tuple[list[Matching], EnumerationStats]:
    """Every stable matching of ``table`` (Algorithm 2).

    The first element is always the passenger-optimal matching.  ``limit``
    caps the number of matchings collected (the enumeration can be
    exponential in adversarial markets); when hit, ``stats.truncated`` is
    set.

    ``max_nodes`` and/or ``deadline`` make the enumeration *anytime*:
    cascade steps and break attempts charge a shared work budget, and
    when it runs out the matchings found so far are returned with
    ``stats.truncated`` set (the prefix is identical to an unbudgeted
    run, which this degrades to when neither bound is given).  Pass
    ``on_budget="raise"`` to get an
    :class:`~repro.core.errors.EnumerationBudgetError` carrying the
    partial lattice instead.

    Theorem 4 promises each stable matching is generated exactly once;
    we still deduplicate defensively and expose the duplicate count in
    the stats so tests can assert it stays zero.
    """
    if on_budget not in ("truncate", "raise"):
        raise MatchingError(f"on_budget must be 'truncate' or 'raise', got {on_budget!r}")
    stats = EnumerationStats()
    budget: WorkBudget | None = None
    if max_nodes is not None or deadline is not None:
        budget = WorkBudget(max_nodes, deadline=deadline)
    optimal = deferred_acceptance(table)
    seen: set[Matching] = {optimal}
    ordered: list[Matching] = [optimal]
    request_ids = sorted(table.proposer_prefs)

    def explore(current: Matching, start_id: int) -> bool:
        """DFS over break operations; returns False when truncated."""
        for rid in request_ids:
            if rid < start_id:
                continue
            if current.reviewer_of(rid) is None:
                continue  # Rule 3
            if budget is not None and not budget.spend():
                stats.truncated = True
                stats.notes.append("work budget exhausted before break attempt")
                return False
            stats.break_attempts += 1
            try:
                produced = break_dispatch(table, current, rid, budget=budget)
            except EnumerationBudgetError:
                stats.truncated = True
                stats.notes.append("work budget exhausted mid-cascade")
                return False
            if produced is None:
                continue
            stats.break_successes += 1
            if produced in seen:
                stats.duplicates += 1
                continue
            seen.add(produced)
            ordered.append(produced)
            if limit is not None and len(ordered) >= limit:
                stats.truncated = True
                return False
            if not explore(produced, rid):
                return False
        return True

    explore(optimal, request_ids[0] if request_ids else 0)
    stats.stable_matchings = len(ordered)
    if budget is not None:
        stats.nodes = budget.nodes
    if stats.truncated and budget is not None and on_budget == "raise":
        raise EnumerationBudgetError(
            f"enumeration exhausted its work budget after {len(ordered)} matchings",
            matchings=ordered,
            nodes=budget.nodes,
        )
    if with_stats:
        return ordered, stats
    return ordered


#: The name the resilience layer documents for the anytime entry point;
#: identical to :func:`all_stable_matchings`.
enumerate_all_stable_matchings = all_stable_matchings
