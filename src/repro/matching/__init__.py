"""Matching core: preference tables, Algorithm 1, Algorithm 2, baselines."""

from repro.matching.arrays import NO_PARTNER, UNRANKED, PreferenceArrays
from repro.matching.bipartite import (
    matching_total_cost,
    min_cost_matching,
    minimax_matching,
)
from repro.matching.brute_force import all_matchings, all_stable_matchings_brute_force
from repro.matching.deferred_acceptance import (
    DeferredAcceptanceStats,
    deferred_acceptance,
    deferred_acceptance_arrays,
    deferred_acceptance_dict,
)
from repro.matching.enumeration import (
    EnumerationStats,
    all_stable_matchings,
    break_dispatch,
    enumerate_all_stable_matchings,
)
from repro.matching.hopcroft_karp import hopcroft_karp, maximum_matching_size
from repro.matching.incremental import (
    FrameChurn,
    IncrementalBuildStats,
    WarmDAState,
    WarmFrameState,
    classify_frame_churn,
    deferred_acceptance_resumable,
    incremental_nonsharing_arrays,
    resume_deferred_acceptance,
)
from repro.matching.lattice import (
    join,
    lattice_extremes,
    median_stable_matching,
    meet,
)
from repro.matching.optimality import (
    company_optimal,
    company_revenue,
    passenger_optimal,
    rank_profile,
    taxi_optimal,
    taxi_optimal_exact,
)
from repro.matching.preferences import (
    PreferenceTable,
    build_nonsharing_arrays,
    build_nonsharing_table,
    passenger_score,
    taxi_score,
)
from repro.matching.result import Matching
from repro.matching.rotations import (
    Rotation,
    all_stable_matchings_by_rotations,
    eliminate_rotation,
    exposed_rotations,
)
from repro.matching.shard_warm import (
    ShardedFrameState,
    ShardFrameInfo,
    sharded_state_from_cold,
    sharded_warm_frame_solve,
)
from repro.matching.sharding import (
    Shard,
    ShardDecomposition,
    acceptability_radii,
    frame_decomposition,
    shard_problems,
    sharded_nonsharing_match,
    solve_shard,
    theta_components,
)
from repro.matching.stable_marriage import (
    complete_with_dummies,
    gale_shapley,
    project_completed_matching,
)
from repro.matching.ties import (
    TiedPreferenceTable,
    build_tied_nonsharing_table,
    find_weak_blocking_pairs,
    kiraly_max_stable,
    max_weakly_stable_brute_force,
    weakly_stable,
)
from repro.matching.verification import (
    assert_stable,
    find_blocking_pairs,
    is_stable,
    is_valid_matching,
)

__all__ = [
    "PreferenceTable",
    "PreferenceArrays",
    "UNRANKED",
    "NO_PARTNER",
    "build_nonsharing_table",
    "build_nonsharing_arrays",
    "passenger_score",
    "taxi_score",
    "Matching",
    "deferred_acceptance",
    "deferred_acceptance_dict",
    "deferred_acceptance_arrays",
    "DeferredAcceptanceStats",
    "FrameChurn",
    "IncrementalBuildStats",
    "WarmFrameState",
    "WarmDAState",
    "classify_frame_churn",
    "incremental_nonsharing_arrays",
    "deferred_acceptance_resumable",
    "resume_deferred_acceptance",
    "Shard",
    "ShardDecomposition",
    "ShardedFrameState",
    "ShardFrameInfo",
    "acceptability_radii",
    "frame_decomposition",
    "shard_problems",
    "sharded_nonsharing_match",
    "sharded_state_from_cold",
    "sharded_warm_frame_solve",
    "solve_shard",
    "theta_components",
    "all_stable_matchings",
    "enumerate_all_stable_matchings",
    "break_dispatch",
    "EnumerationStats",
    "passenger_optimal",
    "taxi_optimal",
    "taxi_optimal_exact",
    "company_optimal",
    "company_revenue",
    "rank_profile",
    "find_blocking_pairs",
    "is_stable",
    "assert_stable",
    "is_valid_matching",
    "all_matchings",
    "all_stable_matchings_brute_force",
    "gale_shapley",
    "complete_with_dummies",
    "project_completed_matching",
    "hopcroft_karp",
    "maximum_matching_size",
    "join",
    "meet",
    "median_stable_matching",
    "lattice_extremes",
    "Rotation",
    "exposed_rotations",
    "eliminate_rotation",
    "all_stable_matchings_by_rotations",
    "TiedPreferenceTable",
    "build_tied_nonsharing_table",
    "kiraly_max_stable",
    "weakly_stable",
    "find_weak_blocking_pairs",
    "max_weakly_stable_brute_force",
    "min_cost_matching",
    "minimax_matching",
    "matching_total_cost",
]
